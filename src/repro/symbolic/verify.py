"""Equivalence checking and counterexample extraction.

``check_equivalence`` compares two symbolic slot vectors on a set of valid
output slots.  Equality of exact polynomials is a complete check; when it
fails, :func:`find_counterexample` extracts a concrete witness assignment
by Schwartz-Zippel sampling of the (non-zero) difference polynomial — the
probability a random point from a large range is a root is bounded by
``degree / range``, so a handful of draws succeeds in practice and the
loop is given a generous retry budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.symbolic.polynomial import Poly

_SAMPLE_RANGE = 9973  # prime, >> max polynomial degree we ever produce
_MAX_TRIES = 256


@dataclass
class VerificationResult:
    """Outcome of a program-vs-specification equivalence query."""

    equivalent: bool
    failing_slot: int | None = None
    counterexample: dict[str, int] | None = None

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    actual: list[Poly],
    expected: list[Poly],
    slots: list[int] | None = None,
    rng: np.random.Generator | None = None,
) -> VerificationResult:
    """Compare two symbolic vectors on the given slots (all by default)."""
    if len(actual) != len(expected):
        raise ValueError("symbolic vectors have different lengths")
    if slots is None:
        slots = list(range(len(actual)))
    for slot in slots:
        difference = actual[slot] - expected[slot]
        if not difference.is_zero():
            witness = find_counterexample(difference, rng=rng)
            return VerificationResult(
                equivalent=False, failing_slot=slot, counterexample=witness
            )
    return VerificationResult(equivalent=True)


def find_counterexample(
    difference: Poly, rng: np.random.Generator | None = None
) -> dict[str, int]:
    """A variable assignment on which a non-zero polynomial is non-zero."""
    if difference.is_zero():
        raise ValueError("difference polynomial is identically zero")
    variables = sorted(difference.variables())
    if not variables:
        return {}
    if rng is None:
        rng = np.random.default_rng(0)
    # Small-magnitude witnesses first: they make nicer CEGIS examples and
    # keep interpreter values well inside int64.
    for bound in (4, 16, 128, _SAMPLE_RANGE):
        for _ in range(_MAX_TRIES // 4):
            env = {
                name: int(rng.integers(-bound, bound + 1))
                for name in variables
            }
            if difference.evaluate(env) != 0:
                return env
    raise RuntimeError(
        "failed to find a counterexample by sampling; "
        "difference polynomial is non-zero so this is astronomically unlikely"
    )
