"""Exact symbolic verification substrate.

Replaces the paper's Rosette + SMT verification pipeline.  Straight-line
HE-compatible kernels compute polynomial functions of their inputs, so we
lift both the candidate Quill program and the plaintext reference
implementation to vectors of exact multivariate polynomials over the
integers and compare them slot by slot.  Polynomial identity over Z is a
*sound and complete* equivalence check for this program class — strictly
stronger than the bounded bit-vector check an SMT solver performs.

Counterexamples for CEGIS are extracted by Schwartz-Zippel sampling of the
difference polynomial.
"""

from repro.symbolic.polynomial import Poly
from repro.symbolic.symvec import (
    evaluate_symbolic,
    symbolic_vector,
    zeros_vector,
)
from repro.symbolic.verify import (
    VerificationResult,
    check_equivalence,
    find_counterexample,
)

__all__ = [
    "Poly",
    "VerificationResult",
    "check_equivalence",
    "evaluate_symbolic",
    "find_counterexample",
    "symbolic_vector",
    "zeros_vector",
]
