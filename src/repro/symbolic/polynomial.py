"""Sparse multivariate polynomials with exact integer coefficients.

The representation is a mapping from monomials to coefficients, where a
monomial is a sorted tuple of ``(variable, exponent)`` pairs (the empty
tuple is the constant term).  Instances are immutable and hashable, and
arithmetic promotes Python ints, so plaintext reference kernels written
with ordinary ``+ - *`` lift to symbolic form simply by being called on
arrays of :class:`Poly` (this substitutes for Rosette's symbolic
execution).
"""

from __future__ import annotations

from typing import Iterable, Mapping

Monomial = tuple[tuple[str, int], ...]


class Poly:
    """An immutable multivariate polynomial over the integers."""

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[Monomial, int] | None = None):
        cleaned = {}
        if terms:
            for mono, coeff in terms.items():
                if coeff:
                    cleaned[mono] = coeff
        self._terms = cleaned
        self._hash: int | None = None

    # -- constructors ---------------------------------------------------

    @staticmethod
    def const(value: int) -> "Poly":
        if value == 0:
            return _ZERO
        return Poly({(): value})

    @staticmethod
    def var(name: str) -> "Poly":
        return Poly({((name, 1),): 1})

    @staticmethod
    def zero() -> "Poly":
        return _ZERO

    # -- inspection -------------------------------------------------------

    @property
    def terms(self) -> dict[Monomial, int]:
        return dict(self._terms)

    def is_zero(self) -> bool:
        return not self._terms

    def is_constant(self) -> bool:
        return all(mono == () for mono in self._terms)

    def constant_value(self) -> int:
        if not self.is_constant():
            raise ValueError("polynomial is not constant")
        return self._terms.get((), 0)

    def degree(self) -> int:
        if not self._terms:
            return 0
        return max(
            (sum(exp for _, exp in mono) for mono in self._terms), default=0
        )

    def variables(self) -> set[str]:
        names: set[str] = set()
        for mono in self._terms:
            for name, _ in mono:
                names.add(name)
        return names

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Poly | int") -> "Poly":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        terms = dict(self._terms)
        for mono, coeff in other._terms.items():
            new = terms.get(mono, 0) + coeff
            if new:
                terms[mono] = new
            else:
                terms.pop(mono, None)
        return _wrap(terms)

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return _wrap({mono: -coeff for mono, coeff in self._terms.items()})

    def __sub__(self, other: "Poly | int") -> "Poly":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: "Poly | int") -> "Poly":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other + (-self)

    def __mul__(self, other: "Poly | int") -> "Poly":
        other = _coerce(other)
        if other is NotImplemented:
            return NotImplemented
        if not self._terms or not other._terms:
            return _ZERO
        terms: dict[Monomial, int] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                mono = _merge_monomials(m1, m2)
                new = terms.get(mono, 0) + c1 * c2
                if new:
                    terms[mono] = new
                else:
                    del terms[mono]
        return _wrap(terms)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Poly":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("only non-negative integer powers are supported")
        result = Poly.const(1)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate with every variable bound to an integer."""
        total = 0
        for mono, coeff in self._terms.items():
            value = coeff
            for name, exp in mono:
                value *= env[name] ** exp
            total += value
        return total

    def substitute(self, env: Mapping[str, "Poly | int"]) -> "Poly":
        """Replace some variables by polynomials or constants."""
        total = _ZERO
        for mono, coeff in self._terms.items():
            value = Poly.const(coeff)
            for name, exp in mono:
                replacement = env.get(name)
                if replacement is None:
                    factor = Poly({((name, exp),): 1})
                else:
                    factor = _coerce(replacement) ** exp
                value = value * factor
            total = total + value
        return total

    # -- comparison -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = Poly.const(other)
        if not isinstance(other, Poly):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._terms.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for mono, coeff in sorted(self._terms.items()):
            factors = [
                name if exp == 1 else f"{name}^{exp}" for name, exp in mono
            ]
            if not factors:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append("*".join(factors))
            elif coeff == -1:
                parts.append("-" + "*".join(factors))
            else:
                parts.append(f"{coeff}*" + "*".join(factors))
        return " + ".join(parts).replace("+ -", "- ")


def _coerce(value) -> "Poly":
    if isinstance(value, Poly):
        return value
    if isinstance(value, int):
        return Poly.const(value)
    try:
        # numpy integer scalars
        import numpy as np

        if isinstance(value, np.integer):
            return Poly.const(int(value))
    except ImportError:  # pragma: no cover
        pass
    return NotImplemented


def _merge_monomials(m1: Monomial, m2: Monomial) -> Monomial:
    if not m1:
        return m2
    if not m2:
        return m1
    exps: dict[str, int] = dict(m1)
    for name, exp in m2:
        exps[name] = exps.get(name, 0) + exp
    return tuple(sorted(exps.items()))


def _wrap(terms: dict[Monomial, int]) -> Poly:
    poly = Poly.__new__(Poly)
    poly._terms = terms
    poly._hash = None
    return poly


_ZERO = Poly()


def poly_vector(prefix: str, count: int) -> list[Poly]:
    """Fresh variables ``prefix[0] .. prefix[count-1]``."""
    return [Poly.var(f"{prefix}[{i}]") for i in range(count)]
