"""Symbolic evaluation of Quill programs over polynomial vectors."""

from __future__ import annotations

from repro.quill.ir import CtInput, Opcode, Program, PtConst, PtInput, Ref, Wire
from repro.symbolic.polynomial import Poly


def symbolic_vector(prefix: str, size: int) -> list[Poly]:
    """A vector of fresh variables named ``prefix[i]``."""
    return [Poly.var(f"{prefix}[{i}]") for i in range(size)]


def zeros_vector(size: int) -> list[Poly]:
    return [Poly.zero()] * size


def shift_symbolic(vec: list[Poly], amount: int) -> list[Poly]:
    """Shift-with-zero-fill on a polynomial vector (matches interpreter)."""
    n = len(vec)
    zero = Poly.zero()
    out = [zero] * n
    if amount >= 0:
        for i in range(n - amount):
            out[i] = vec[i + amount]
    else:
        for i in range(-amount, n):
            out[i] = vec[i + amount]
    return out


def evaluate_symbolic(
    program: Program,
    ct_env: dict[str, list[Poly]],
    pt_env: dict[str, list[Poly]] | None = None,
    all_wires: bool = False,
):
    """Run a program with polynomial slot values.

    Mirrors :func:`repro.quill.interpreter.evaluate` exactly, which is
    asserted by property tests: plugging concrete values into the symbolic
    output equals concrete evaluation.
    """
    pt_env = pt_env or {}
    n = program.vector_size

    def fetch(ref: Ref) -> list[Poly]:
        if isinstance(ref, Wire):
            return wires[ref.index]
        if isinstance(ref, CtInput):
            return _checked(ct_env[ref.name], n)
        if isinstance(ref, PtInput):
            return _checked(pt_env[ref.name], n)
        if isinstance(ref, PtConst):
            return [Poly.const(v) for v in program.constant_vector(ref.name)]
        raise TypeError(f"unknown reference {ref!r}")

    wires: list[list[Poly]] = []
    for instr in program.instructions:
        if instr.opcode is Opcode.ROTATE:
            value = shift_symbolic(fetch(instr.operands[0]), instr.amount)
        elif instr.opcode is Opcode.RELIN:
            # identity on the encrypted value (representation change only)
            value = fetch(instr.operands[0])
        else:
            a = fetch(instr.operands[0])
            b = fetch(instr.operands[1])
            if instr.opcode in (Opcode.ADD_CC, Opcode.ADD_CP):
                value = [x + y for x, y in zip(a, b)]
            elif instr.opcode in (Opcode.SUB_CC, Opcode.SUB_CP):
                value = [x - y for x, y in zip(a, b)]
            else:
                value = [x * y for x, y in zip(a, b)]
        wires.append(value)

    if all_wires:
        return wires
    if program.output is None:
        raise ValueError("program has no output")
    return fetch(program.output)


def _checked(vec: list[Poly], n: int) -> list[Poly]:
    if len(vec) != n:
        raise ValueError(f"expected a symbolic vector of {n} slots")
    return vec
