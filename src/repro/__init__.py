"""Reproduction of *Porcupine: A Synthesizing Compiler for Vectorized
Homomorphic Encryption* (Cowan et al., PLDI 2021).

The front door is the :class:`repro.api.Porcupine` session — kernel
registry, pass pipeline, compile cache, and execution backends in one
object::

    from repro.api import Porcupine

    session = Porcupine()
    compiled = session.compile("box_blur")        # synthesize (cached)
    report = session.run("box_blur", backend="he")  # execute encrypted

Subpackages:

* :mod:`repro.api` — the unified session API: kernel registry, the
  ``synthesize -> optimize -> compose -> lower -> codegen`` pass
  pipeline, the content-addressed compile cache, pluggable backends.
* :mod:`repro.core` — the Porcupine compiler: sketches, CEGIS synthesis,
  cost optimization, multi-step composition graphs, SEAL code generation.
* :mod:`repro.quill` — the Quill DSL: BFV instruction set with noise and
  latency semantics.
* :mod:`repro.spec` — kernel specifications (references + data layouts).
* :mod:`repro.symbolic` — exact polynomial verification substrate.
* :mod:`repro.solver` — the pruned backtracking search substrate.
* :mod:`repro.he` — a from-scratch BFV cryptosystem (the SEAL stand-in).
* :mod:`repro.runtime` — encrypted execution and latency profiling.
* :mod:`repro.baselines` — expert hand-written depth-minimized kernels.

Typical entry points::

    from repro.api import Porcupine          # the session API (preferred)
    from repro.runtime import HEExecutor     # low-level encrypted execution
    from repro.spec import get_spec          # raw kernel specifications

(``repro.core.compile_kernel`` still works but is a deprecated shim over
``repro.api``.)
"""

__version__ = "1.1.0"
