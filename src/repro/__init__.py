"""Reproduction of *Porcupine: A Synthesizing Compiler for Vectorized
Homomorphic Encryption* (Cowan et al., PLDI 2021).

Subpackages:

* :mod:`repro.core` — the Porcupine compiler: sketches, CEGIS synthesis,
  cost optimization, multi-step composition, SEAL code generation.
* :mod:`repro.quill` — the Quill DSL: BFV instruction set with noise and
  latency semantics.
* :mod:`repro.spec` — kernel specifications (references + data layouts).
* :mod:`repro.symbolic` — exact polynomial verification substrate.
* :mod:`repro.solver` — the pruned backtracking search substrate.
* :mod:`repro.he` — a from-scratch BFV cryptosystem (the SEAL stand-in).
* :mod:`repro.runtime` — encrypted execution and latency profiling.
* :mod:`repro.baselines` — expert hand-written depth-minimized kernels.

Typical entry points::

    from repro.core import compile_kernel
    from repro.runtime import HEExecutor
    from repro.spec import get_spec
"""

__version__ = "1.0.0"
