"""Verified rewrite passes over the Quill dataflow graph.

This is the middle-end layer EVA and HECO showed matters for HE
compilers: after synthesis/composition produces a correct program, a
pass pipeline shrinks it — common-subexpression elimination (rotation
dedup included),
dead-code elimination, rotation composition and hoisting, lazy
relinearization placement, and Galois-key-set minimization.  Every pass
that changes the program is immediately re-verified against the kernel
specification (exact symbolic equivalence), so the optimizer is provably
safe: a bad rewrite raises :class:`RewriteVerificationError` instead of
shipping a wrong kernel.

Usage::

    manager = default_pass_manager()
    result = manager.run(program, spec=spec)
    result.program          # the optimized, re-verified program
    result.summary()        # per-pass op-count deltas for reports

Rotation rewrites respect Quill's shift-with-zero-fill semantics:
``rot(rot(x, a), b) == rot(x, a+b)`` and
``rot(x, a) op rot(y, a) == rot(x op y, a)`` hold only for same-sign
(resp. equal) amounts, which is exactly what the passes require — and
the per-pass verification would catch any slip regardless.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol

from repro.quill.graph import GraphProgram, GraphRef, NodeRef
from repro.quill.ir import Opcode, Program, PtConst, PtInput
from repro.quill.latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - keeps quill imports spec-free
    from repro.spec.reference import Spec


class RewriteVerificationError(Exception):
    """A rewrite pass produced a program that no longer meets the spec."""


@dataclass
class RewriteContext:
    """Shared state handed to every pass in one pipeline run."""

    latency_model: LatencyModel | None = None
    options: dict = field(default_factory=dict)
    details: dict = field(default_factory=dict)  # pass name -> extra stats


class RewritePass(Protocol):
    """One named graph-to-graph rewrite."""

    name: str

    def run(self, graph: GraphProgram, ctx: RewriteContext) -> bool:
        """Mutate ``graph``; return whether anything changed."""
        ...  # pragma: no cover - protocol


@dataclass
class PassReport:
    """What one pass did to one program."""

    name: str
    changed: bool
    seconds: float
    verify_seconds: float
    before: dict[str, int]
    after: dict[str, int]
    details: dict = field(default_factory=dict)

    def delta(self) -> dict[str, int]:
        return {
            key: self.after[key] - self.before[key] for key in self.before
        }


@dataclass
class OptimizationResult:
    """One full pipeline run: the final program plus the audit trail."""

    program: Program
    reports: list[PassReport]
    verified: bool
    seconds: float

    @property
    def before(self) -> dict[str, int]:
        return self.reports[0].before if self.reports else {}

    @property
    def after(self) -> dict[str, int]:
        return self.reports[-1].after if self.reports else {}

    def summary(self) -> dict:
        """Machine-readable report (session metrics, CLI ``--json``)."""
        return {
            "verified": self.verified,
            "seconds": round(self.seconds, 6),
            "before": self.before,
            "after": self.after,
            "passes": [
                {
                    "name": r.name,
                    "changed": r.changed,
                    "seconds": round(r.seconds, 6),
                    "verify_seconds": round(r.verify_seconds, 6),
                    **(
                        {"delta": {
                            k: v for k, v in r.delta().items() if v
                        }}
                        if r.changed
                        else {}
                    ),
                    **({"details": r.details} if r.details else {}),
                }
                for r in self.reports
            ],
        }


# ---------------------------------------------------------------------------
# The pass suite
# ---------------------------------------------------------------------------


class CommonSubexpressionElimination:
    """Unify structurally identical nodes (rotation dedup included).

    Value numbering in topological order: operands are canonicalized
    through the replacement map before hashing, so chains of duplicates
    collapse in a single sweep.  This is where composed kernels win —
    components spliced by :func:`repro.core.multistep.compose` share
    every identical rotation and arithmetic node across component
    boundaries.
    """

    name = "cse"

    def run(self, graph: GraphProgram, ctx: RewriteContext) -> bool:
        table: dict[tuple, NodeRef] = {}
        replaced = 0
        for node in graph.topo_order():
            if node.id not in graph:
                continue
            key = graph.structural_key(node.opcode, node.operands, node.amount)
            existing = table.get(key)
            if existing is None:
                table[key] = NodeRef(node.id)
                continue
            graph.replace_all_uses(node.id, existing)
            graph.remove_node(node.id)
            replaced += 1
        if replaced:
            ctx.details.setdefault(self.name, {})["unified"] = replaced
        return replaced > 0


class DeadCodeElimination:
    """Drop nodes unreachable from any output, then unused declarations."""

    name = "dce"

    def run(self, graph: GraphProgram, ctx: RewriteContext) -> bool:
        live: set[int] = set()
        stack = [ref.id for ref in graph.outputs if isinstance(ref, NodeRef)]
        while stack:
            node_id = stack.pop()
            if node_id in live:
                continue
            live.add(node_id)
            for ref in graph.node(node_id).operands:
                if isinstance(ref, NodeRef):
                    stack.append(ref.id)
        # remove consumers before producers: reverse *topological* order
        # (insertion order stops being topological once a rewrite inserts
        # a producer after its in-place-updated consumer)
        dead = [
            node.id for node in graph.topo_order() if node.id not in live
        ]
        for node_id in reversed(dead):
            graph.remove_node(node_id)

        # prune plaintext declarations nothing references any more
        used_pt: set[str] = set()
        used_const: set[str] = set()
        for node in graph.nodes():
            for ref in node.operands:
                if isinstance(ref, PtInput):
                    used_pt.add(ref.name)
                elif isinstance(ref, PtConst):
                    used_const.add(ref.name)
        dropped_decls = len(
            [n for n in graph.pt_inputs if n not in used_pt]
        ) + len([n for n in graph.constants if n not in used_const])
        graph.pt_inputs = [n for n in graph.pt_inputs if n in used_pt]
        graph.constants = {
            name: value
            for name, value in graph.constants.items()
            if name in used_const
        }
        if dead or dropped_decls:
            ctx.details.setdefault(self.name, {}).update(
                removed=len(dead), dropped_declarations=dropped_decls
            )
        return bool(dead or dropped_decls)


class RotationComposition:
    """Fold ``rot(rot(x, a), b)`` into ``rot(x, a+b)`` (same-sign only).

    With shift-with-zero-fill semantics two same-direction shifts compose
    additively; opposite directions do not (they zero different slots),
    so those chains are left alone.
    """

    name = "rotate-compose"

    def run(self, graph: GraphProgram, ctx: RewriteContext) -> bool:
        folded = 0
        for node in graph.topo_order():
            if node.id not in graph or node.opcode is not Opcode.ROTATE:
                continue
            inner = graph.resolve(node.operands[0])
            if inner is None or inner.opcode is not Opcode.ROTATE:
                continue
            a, b = inner.amount, node.amount
            if a * b <= 0:  # opposite directions: not composable
                continue
            combined = a + b
            if abs(combined) >= graph.vector_size:
                continue  # would shift the whole window out
            graph.update_node(
                node.id, operands=inner.operands, amount=combined
            )
            folded += 1
        if folded:
            ctx.details.setdefault(self.name, {})["folded"] = folded
        return folded > 0


class RotationHoisting:
    """Rewrite ``rot(x, a) op rot(y, a)`` into ``rot(x op y, a)``.

    Shifting is linear and slot-wise, so it commutes with element-wise
    add/sub/mul when both operands moved by the same amount.  Only fires
    when each rotation has a single consumer (otherwise the original
    rotations stay live and the rewrite would add work).  One rotation
    replaces two; cascades feed further composition and CSE.

    The generalized form handles *different* same-sign amounts:
    ``rot(x, a) op rot(y, b)`` with ``|a| > |b|`` equals
    ``rot(rot(x, a-b) op y, b)``.  That is count-neutral in isolation,
    so it only fires when the residual rotation ``rot(x, a-b)`` already
    exists in the graph — then the rewrite strictly shrinks the program
    (and usually lets CSE collapse the inner op too).  This is exactly
    the factored box-blur structure the paper's synthesizer discovers:
    ``rot(src,W) + rot(src,W+1)`` becomes ``rot(src + rot(src,1), W)``
    with both pieces shared.
    """

    name = "rotate-hoist"

    _BINOPS = (Opcode.ADD_CC, Opcode.SUB_CC, Opcode.MUL_CC)

    def run(self, graph: GraphProgram, ctx: RewriteContext) -> bool:
        hoisted = 0
        for node in graph.topo_order():
            if node.id not in graph or node.opcode not in self._BINOPS:
                continue
            if (
                node.opcode is Opcode.MUL_CC
                and graph.relin_mode == "explicit"
            ):
                # hoisting a multiply puts its 3-part product under the
                # rotation; legal only while relin placement is still
                # implicit (the lazy-relin pass runs later on eager
                # graphs and will insert the fold)
                continue
            left = graph.resolve(node.operands[0])
            right = graph.resolve(node.operands[1])
            if (
                left is None
                or right is None
                or left.opcode is not Opcode.ROTATE
                or right.opcode is not Opcode.ROTATE
                or left.id == right.id
                or graph.use_count(left.id) != 1
                or graph.use_count(right.id) != 1
                or left.amount * right.amount < 0
            ):
                continue
            if left.amount == right.amount:
                inner_ref = graph.find_or_add(
                    node.opcode, (left.operands[0], right.operands[0])
                )
                outer_amount = left.amount
            else:
                # generalized: peel the shared shift off the larger side,
                # but only when the residual rotation is already computed
                big, small = (
                    (left, right)
                    if abs(left.amount) > abs(right.amount)
                    else (right, left)
                )
                diff = big.amount - small.amount
                residual = graph.find(Opcode.ROTATE, (big.operands[0],), diff)
                if residual is None or residual.id in (left.id, right.id):
                    continue
                inner_operands = (
                    (residual, small.operands[0])
                    if big is left
                    else (small.operands[0], residual)
                )
                inner_ref = graph.find_or_add(node.opcode, inner_operands)
                outer_amount = small.amount
            if inner_ref.id == node.id:
                continue
            graph.update_node(
                node.id,
                opcode=Opcode.ROTATE,
                operands=(inner_ref,),
                amount=outer_amount,
            )
            graph.remove_node(left.id)
            graph.remove_node(right.id)
            hoisted += 1
        if hoisted:
            ctx.details.setdefault(self.name, {})["hoisted"] = hoisted
        return hoisted > 0


class LazyRelinearization:
    """Convert an eager program to explicit, minimal relin placement.

    A ct-ct product stays three polynomial parts until something forces
    it back to two: a rotation, another ct-ct multiply, an add/sub whose
    other operand is two parts, or leaving the program as an output.
    Additions of two unrelinearized products and plaintext ops on them
    stay lazy — that is where composed kernels like sobel (two squares
    summed, one relin instead of two) and harris (six multiplies, four
    relins) win.

    Each three-part value is relinearized at most once; every consumer
    that needs two parts shares the same ``RELIN`` node.
    """

    name = "lazy-relin"

    def run(self, graph: GraphProgram, ctx: RewriteContext) -> bool:
        if graph.relin_mode != "eager":
            return False
        mul_count = sum(
            1 for node in graph.nodes() if node.opcode is Opcode.MUL_CC
        )
        graph.relin_mode = "explicit"
        if mul_count == 0:
            # still a mode change: the program now states its (empty)
            # relin placement explicitly
            ctx.details.setdefault(self.name, {}).update(
                relins_before=0, relins_after=0
            )
            return True

        parts: dict[int, int] = {}
        relined: dict[int, NodeRef] = {}

        def width(ref: GraphRef) -> int:
            if isinstance(ref, NodeRef):
                return parts[ref.id]
            return 2

        def relin_of(ref: NodeRef) -> NodeRef:
            cached = relined.get(ref.id)
            if cached is None:
                cached = graph.add_node(Opcode.RELIN, (ref,))
                parts[cached.id] = 2
                relined[ref.id] = cached
            return cached

        def two_part(ref: GraphRef) -> GraphRef:
            if isinstance(ref, NodeRef) and parts[ref.id] == 3:
                return relin_of(ref)
            return ref

        for node in graph.topo_order():
            if node.id in parts:  # relin node added mid-walk
                continue
            if node.opcode is Opcode.ROTATE:
                graph.update_node(
                    node.id, operands=(two_part(node.operands[0]),)
                )
                parts[node.id] = 2
            elif node.opcode is Opcode.MUL_CC:
                graph.update_node(
                    node.id,
                    operands=tuple(two_part(r) for r in node.operands),
                )
                parts[node.id] = 3
            elif node.opcode in (Opcode.ADD_CC, Opcode.SUB_CC):
                a, b = node.operands
                wa, wb = width(a), width(b)
                if wa != wb:  # relinearize the wide side to match
                    if wa == 3:
                        a = two_part(a)
                    else:
                        b = two_part(b)
                    graph.update_node(node.id, operands=(a, b))
                parts[node.id] = min(wa, wb) if wa != wb else wa
            else:  # ct-pt ops keep their ciphertext operand's width
                parts[node.id] = width(node.operands[0])
        graph.outputs = [
            two_part(ref) if isinstance(ref, NodeRef) else ref
            for ref in graph.outputs
        ]
        relins_after = sum(
            1 for node in graph.nodes() if node.opcode is Opcode.RELIN
        )
        ctx.details.setdefault(self.name, {}).update(
            relins_before=mul_count, relins_after=relins_after
        )
        return True


class GaloisKeyMinimization:
    """Shrink the Galois key set a program's rotations require.

    By default an analysis pass: records the distinct rotation amounts
    (one key each — the set the executor generates).  With the
    ``max_keys`` option set, amounts expressible as a same-sign sum of
    two retained amounts are rewritten as two chained rotations until
    the key budget is met — trading one extra rotation per rewritten
    use for a smaller key set (key generation and key storage dominate
    setup cost when serving many kernels from one context).
    """

    name = "galois-keys"

    def __init__(self, max_keys: int | None = None):
        self.max_keys = max_keys

    def run(self, graph: GraphProgram, ctx: RewriteContext) -> bool:
        max_keys = ctx.options.get("max_galois_keys", self.max_keys)
        amounts = sorted(
            {
                node.amount
                for node in graph.nodes()
                if node.opcode is Opcode.ROTATE
            }
        )
        detail = ctx.details.setdefault(self.name, {})
        detail["keys_before"] = len(amounts)
        changed = False
        if max_keys is not None:
            kept = set(amounts)
            while len(kept) > max_keys:
                rewrite = self._decomposable(kept)
                if rewrite is None:
                    break
                target, a, b = rewrite
                for node in list(graph.nodes()):
                    if (
                        node.opcode is Opcode.ROTATE
                        and node.amount == target
                    ):
                        # find_or_add shares inner rotations across every
                        # rewritten use (and reuses pre-existing ones)
                        inner = graph.find_or_add(
                            Opcode.ROTATE, (node.operands[0],), a
                        )
                        graph.update_node(
                            node.id, operands=(inner,), amount=b
                        )
                        changed = True
                kept.discard(target)
        remaining = sorted(
            {
                node.amount
                for node in graph.nodes()
                if node.opcode is Opcode.ROTATE
            }
        )
        detail["keys_after"] = len(remaining)
        detail["amounts"] = remaining
        return changed

    @staticmethod
    def _decomposable(kept: set[int]) -> tuple[int, int, int] | None:
        """A key expressible as a same-sign sum of two other kept keys.

        Prefers dropping the largest-magnitude key (most likely to be a
        rare long shift).
        """
        for target in sorted(kept, key=abs, reverse=True):
            others = kept - {target}
            for a in others:
                b = target - a
                if b in others and a * target > 0 and b * target > 0:
                    return target, a, b
        return None


# ---------------------------------------------------------------------------
# The pass manager
# ---------------------------------------------------------------------------


def default_passes() -> list[RewritePass]:
    """The standard suite, in dependency order.

    Structure first (CSE/fold/hoist feed each other, then a second CSE
    round catches what hoisting exposed), cleanup, then relin placement
    and key analysis on the settled graph.
    """
    return [
        CommonSubexpressionElimination(),
        RotationComposition(),
        RotationHoisting(),
        CommonSubexpressionElimination(),
        DeadCodeElimination(),
        LazyRelinearization(),
        GaloisKeyMinimization(),
        DeadCodeElimination(),
    ]


def _all_outputs_equivalent(before: Program, after: Program) -> bool:
    """Exact symbolic self-equivalence of *every* output, extras included.

    Specifications only describe the primary output, so multi-output
    programs additionally pin each output of the rewritten program to
    the corresponding output of its predecessor, slot by slot.
    """
    from repro.symbolic.symvec import evaluate_symbolic, symbolic_vector

    ct_env = {
        name: symbolic_vector(name, before.vector_size)
        for name in before.ct_inputs
    }
    pt_env = {
        name: symbolic_vector(f"${name}", before.vector_size)
        for name in before.pt_inputs
    }

    def outputs_of(program: Program) -> list:
        wires = evaluate_symbolic(program, ct_env, pt_env, all_wires=True)

        def fetch(ref):
            from repro.quill.ir import CtInput, PtConst, PtInput, Wire

            if isinstance(ref, Wire):
                return wires[ref.index]
            if isinstance(ref, CtInput):
                return ct_env[ref.name]
            if isinstance(ref, PtInput):
                return pt_env[ref.name]
            assert isinstance(ref, PtConst)
            from repro.symbolic.polynomial import Poly

            return [Poly.const(v) for v in program.constant_vector(ref.name)]

        return [fetch(out) for out in program.outputs]

    return outputs_of(before) == outputs_of(after)


class PassManager:
    """Runs a rewrite pipeline, re-verifying the program after each pass.

    ``spec`` enables the safety net: after any pass that changed the
    graph, the re-linearized program is checked for exact symbolic
    equivalence against the kernel specification; multi-output programs
    additionally re-check every extra output against its pre-pass value.
    Structural validation
    (:func:`~repro.quill.validate.validate_program`) runs regardless via
    :meth:`GraphProgram.to_program`.
    """

    def __init__(
        self,
        passes: list[RewritePass] | None = None,
        *,
        verify: bool = True,
        options: dict | None = None,
        latency_model: LatencyModel | None = None,
        dump: Callable[[str, Program], None] | None = None,
    ):
        self.passes = list(passes) if passes is not None else default_passes()
        self.verify = verify
        self.options = dict(options or {})
        self.latency_model = latency_model
        self.dump = dump

    def run(self, program: Program, spec: Spec | None = None) -> OptimizationResult:
        started = time.perf_counter()
        ctx = RewriteContext(
            latency_model=self.latency_model, options=dict(self.options)
        )
        graph = GraphProgram.from_program(program)
        current = program
        reports: list[PassReport] = []
        verified = False
        for rewrite in self.passes:
            # details are keyed by pass name; clear before running so a
            # repeated pass (cse, dce) reports only its own run
            ctx.details.pop(rewrite.name, None)
            before = graph.op_counts()
            t0 = time.perf_counter()
            changed = rewrite.run(graph, ctx)
            pass_seconds = time.perf_counter() - t0
            verify_seconds = 0.0
            if changed:
                candidate = graph.to_program()
                if self.verify and spec is not None:
                    t1 = time.perf_counter()
                    if current.extra_outputs:
                        # exact output-by-output equality against the
                        # (already spec-conforming) predecessor is
                        # stronger than slot equivalence, and covers the
                        # primary too — one check instead of two
                        if not _all_outputs_equivalent(current, candidate):
                            raise RewriteVerificationError(
                                f"pass {rewrite.name!r} broke "
                                f"{current.name!r}: an output no longer "
                                "matches its pre-pass value"
                            )
                    else:
                        verdict = spec.verify_program(candidate)
                        if not verdict.equivalent:
                            raise RewriteVerificationError(
                                f"pass {rewrite.name!r} broke "
                                f"{current.name!r}: optimized program "
                                "disagrees with the specification "
                                f"(counterexample {verdict.counterexample})"
                            )
                    verify_seconds = time.perf_counter() - t1
                    verified = True
                current = candidate
                if self.dump is not None:
                    self.dump(rewrite.name, current)
            reports.append(
                PassReport(
                    name=rewrite.name,
                    changed=changed,
                    seconds=pass_seconds,
                    verify_seconds=verify_seconds,
                    before=before,
                    after=graph.op_counts(),
                    details=dict(ctx.details.get(rewrite.name, {})),
                )
            )
        return OptimizationResult(
            program=current,
            reports=reports,
            verified=verified,
            seconds=time.perf_counter() - started,
        )


def default_pass_manager(**kwargs) -> PassManager:
    """The session's optimizer: the default suite with verification on."""
    return PassManager(**kwargs)


def optimize_program(
    program: Program, spec: Spec | None = None, **kwargs
) -> Program:
    """One-call convenience: run the default pipeline, return the program."""
    return default_pass_manager(**kwargs).run(program, spec=spec).program


def seed_frontier(program: Program, spec: Spec | None = None) -> list[str]:
    """Verified rewrite variants of ``program``, as printed texts.

    Runs every prefix of the default pipeline (each prefix is itself a
    valid pipeline: later passes depend on earlier ones, not vice versa)
    plus each structural pass alone, and returns the unique resulting
    programs — ``program`` itself included.  Each variant is verified by
    the pass manager's own safety net, so the set is safe to hand to
    :class:`~repro.core.cegis.SynthesisConfig` ``seed_programs`` as
    phase-2 entry bounds: the cheapest variant bounds the cost search
    from its first node.
    """
    from repro.quill.printer import format_program

    suite = default_passes()
    pipelines: list[list[RewritePass]] = [
        suite[: n + 1] for n in range(len(suite))
    ]
    pipelines += [[rewrite] for rewrite in suite[:3]]  # cse / fold / hoist
    seen: set[str] = set()
    variants: list[str] = [format_program(program)]
    seen.add(variants[0])
    for passes in pipelines:
        try:
            result = PassManager(passes, verify=spec is not None).run(
                program, spec=spec
            )
        except RewriteVerificationError:
            continue  # a broken pass must never poison the seed set
        text = format_program(result.program)
        if text not in seen:
            seen.add(text)
            variants.append(text)
    return variants
