"""Textual rendering of Quill programs (the listings style of the paper)."""

from __future__ import annotations

from repro.quill.ir import Instruction, Opcode, Program


def render_instruction(index: int, instr: Instruction) -> str:
    """One instruction as canonical Quill text (``c<index+1> = ...``).

    The single rendering used by :func:`format_program` and
    :func:`format_listing`, and the inverse of the parser's
    instruction grammar.
    """
    dest = f"c{index + 1}"
    if instr.opcode is Opcode.ROTATE:
        return f"{dest} = rot {instr.operands[0]} {instr.amount}"
    if instr.opcode is Opcode.RELIN:
        return f"{dest} = relin {instr.operands[0]}"
    a, b = instr.operands
    return f"{dest} = {instr.opcode.value} {a} {b}"


def format_program(program: Program) -> str:
    """Render a program in the round-trippable Quill text format."""
    lines = [f'quill kernel "{program.name}"', f"vec {program.vector_size}"]
    if program.is_explicit_relin:
        lines.append("relin explicit")
    for name in program.ct_inputs:
        lines.append(f"ct {name}")
    for name in program.pt_inputs:
        lines.append(f"pt {name}")
    for name, value in program.constants.items():
        if isinstance(value, int):
            lines.append(f"const {name} = {value}")
        else:
            body = " ".join(str(v) for v in value)
            lines.append(f"const {name} = [{body}]")
    for index, instr in enumerate(program.instructions):
        lines.append(render_instruction(index, instr))
    for out in program.outputs:
        lines.append(f"out {out}")
    return "\n".join(lines)


def format_listing(program: Program, indent: str = "  ") -> str:
    """Instructions only, for figures and side-by-side comparisons."""
    return "\n".join(
        indent + render_instruction(index, instr)
        for index, instr in enumerate(program.instructions)
    )
