"""Textual rendering of Quill programs (the listings style of the paper)."""

from __future__ import annotations

from repro.quill.ir import Program


def format_program(program: Program) -> str:
    """Render a program in the round-trippable Quill text format."""
    lines = [f'quill kernel "{program.name}"', f"vec {program.vector_size}"]
    for name in program.ct_inputs:
        lines.append(f"ct {name}")
    for name in program.pt_inputs:
        lines.append(f"pt {name}")
    for name, value in program.constants.items():
        if isinstance(value, int):
            lines.append(f"const {name} = {value}")
        else:
            body = " ".join(str(v) for v in value)
            lines.append(f"const {name} = [{body}]")
    for index, instr in enumerate(program.instructions):
        dest = f"c{index + 1}"
        if instr.opcode.is_rotation:
            lines.append(
                f"{dest} = rot {instr.operands[0]} {instr.amount}"
            )
        else:
            a, b = instr.operands
            lines.append(f"{dest} = {instr.opcode.value} {a} {b}")
    lines.append(f"out {program.output}")
    return "\n".join(lines)


def format_listing(program: Program, indent: str = "  ") -> str:
    """Instructions only, for figures and side-by-side comparisons."""
    body = []
    for index, instr in enumerate(program.instructions):
        dest = f"c{index + 1}"
        if instr.opcode.is_rotation:
            body.append(f"{indent}{dest} = rot {instr.operands[0]} {instr.amount}")
        else:
            a, b = instr.operands
            body.append(f"{indent}{dest} = {instr.opcode.value} {a} {b}")
    return "\n".join(body)
