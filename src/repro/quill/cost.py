"""Porcupine's program cost function.

``cost(p) = latency(p) * (1 + mdepth(p))`` — estimated latency scaled by
multiplicative depth to penalise high-noise programs, which would force
larger HE parameters and slow every instruction down (paper section 5.2).
"""

from __future__ import annotations

from repro.quill.ir import Program
from repro.quill.latency import LatencyModel, default_latency_model
from repro.quill.noise import multiplicative_depth


def program_cost(program: Program, model: LatencyModel | None = None) -> float:
    """The objective Porcupine minimizes during synthesis."""
    if model is None:
        model = default_latency_model()
    latency = model.program_latency(program)
    return latency * (1 + multiplicative_depth(program))
