"""Per-instruction latency model.

The paper associates each Quill instruction with a latency profiled from
the SEAL library (section 4.2).  We do the same against our BFV substrate:
:mod:`repro.runtime.profiler` measures every opcode on a chosen parameter
set, and the tables below are one such profile checked in so that synthesis
is deterministic and does not require re-profiling.

Only the *relative* magnitudes matter to Porcupine's cost function; they
share SEAL's structure (ciphertext multiply >> rotate >> plain multiply >>
add/sub) because the underlying algorithms are the same: multiply pays for
the integer tensor product and relinearization, rotate for an automorphism
plus key switching, while additions are coefficient-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.quill.ir import Instruction, Opcode, Program

# Microseconds per instruction, profiled on the n4096-depth1 preset.
_N4096_TABLE = {
    Opcode.ADD_CC: 310.0,
    Opcode.SUB_CC: 310.0,
    Opcode.MUL_CC: 326_000.0,
    Opcode.ADD_CP: 2_600.0,
    Opcode.SUB_CP: 2_600.0,
    Opcode.MUL_CP: 21_000.0,
    Opcode.ROTATE: 65_000.0,
}

# Microseconds per instruction, profiled on the n8192-depth3 preset.
_N8192_TABLE = {
    Opcode.ADD_CC: 800.0,
    Opcode.SUB_CC: 800.0,
    Opcode.MUL_CC: 980_000.0,
    Opcode.ADD_CP: 8_000.0,
    Opcode.SUB_CP: 8_000.0,
    Opcode.MUL_CP: 81_000.0,
    Opcode.ROTATE: 260_000.0,
}


@dataclass(frozen=True)
class LatencyModel:
    """Maps opcodes to microsecond latencies; programs sum sequentially."""

    table: dict[Opcode, float]
    name: str = "custom"

    def instruction_latency(self, instr: Instruction) -> float:
        return self.table[instr.opcode]

    def program_latency(self, program: Program) -> float:
        """Estimated microseconds for one sequential execution."""
        return sum(self.table[i.opcode] for i in program.instructions)

    def scaled(self, factor: float, name: str | None = None) -> "LatencyModel":
        scaled_table = {op: lat * factor for op, lat in self.table.items()}
        return LatencyModel(scaled_table, name or f"{self.name}-x{factor}")


_MODELS = {
    "n4096-depth1": LatencyModel(_N4096_TABLE, "n4096-depth1"),
    "n8192-depth3": LatencyModel(_N8192_TABLE, "n8192-depth3"),
    # The toy preset is test-only; reuse the n4096 ratios.
    "toy-insecure": LatencyModel(_N4096_TABLE, "toy-insecure"),
}


def default_latency_model(params_name: str = "n4096-depth1") -> LatencyModel:
    """The checked-in latency profile for a parameter preset."""
    model = _MODELS.get(params_name)
    if model is None:
        raise KeyError(
            f"no latency profile for {params_name!r}; "
            f"known: {sorted(_MODELS)} (run repro.runtime.profiler to add one)"
        )
    return model
