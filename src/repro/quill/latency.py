"""Per-instruction latency model.

The paper associates each Quill instruction with a latency profiled from
the SEAL library (section 4.2).  We do the same against our BFV substrate:
:mod:`repro.runtime.profiler` measures every opcode on a chosen parameter
set, and the tables below are one such profile checked in so that synthesis
is deterministic and does not require re-profiling.

Only the *relative* magnitudes matter to Porcupine's cost function; they
share SEAL's structure (ciphertext multiply >> rotate >> plain multiply >>
add/sub) because the underlying algorithms are the same: multiply pays for
the integer tensor product and relinearization, rotate for an automorphism
plus key switching, while additions are coefficient-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.quill.ir import Instruction, Opcode, Program

# Microseconds per instruction, profiled on the n4096-depth1 preset.
# MUL_CC is profiled *with* its eager relinearization (how the paper and
# the seed executor ran multiplies); RELIN is the key-switch share of
# that, so explicit-relin programs charge MUL_CC - RELIN per raw multiply
# plus RELIN per relin instruction.
_N4096_TABLE = {
    Opcode.ADD_CC: 310.0,
    Opcode.SUB_CC: 310.0,
    Opcode.MUL_CC: 326_000.0,
    Opcode.ADD_CP: 2_600.0,
    Opcode.SUB_CP: 2_600.0,
    Opcode.MUL_CP: 21_000.0,
    Opcode.ROTATE: 65_000.0,
    Opcode.RELIN: 55_000.0,
}

# Microseconds per instruction, profiled on the n8192-depth3 preset.
_N8192_TABLE = {
    Opcode.ADD_CC: 800.0,
    Opcode.SUB_CC: 800.0,
    Opcode.MUL_CC: 980_000.0,
    Opcode.ADD_CP: 8_000.0,
    Opcode.SUB_CP: 8_000.0,
    Opcode.MUL_CP: 81_000.0,
    Opcode.ROTATE: 260_000.0,
    Opcode.RELIN: 225_000.0,
}


@dataclass(frozen=True)
class LatencyModel:
    """Maps opcodes to microsecond latencies; programs sum sequentially.

    ``table[MUL_CC]`` is the eager multiply (tensor + relinearization);
    instruction latencies are therefore relin-mode-aware: in an
    explicit-relin program a ct-ct multiply costs only its tensor share
    (``MUL_CC - RELIN``) and relinearizations are charged where the
    ``RELIN`` instructions actually are.  Eager programs cost exactly
    what they did before relinearization became explicit.
    """

    table: dict[Opcode, float]
    name: str = "custom"

    def instruction_latency(
        self, instr: Instruction, relin_mode: str = "eager"
    ) -> float:
        # tables without a RELIN entry (older profiles) degrade to eager
        # accounting: relins are free and multiplies keep their full cost
        relin = self.table.get(Opcode.RELIN, 0.0)
        if instr.opcode is Opcode.RELIN:
            return relin
        if relin_mode == "explicit" and instr.opcode is Opcode.MUL_CC:
            return self.table[Opcode.MUL_CC] - relin
        return self.table[instr.opcode]

    def program_latency(self, program: Program) -> float:
        """Estimated microseconds for one sequential execution."""
        return sum(
            self.instruction_latency(i, program.relin_mode)
            for i in program.instructions
        )

    def scaled(self, factor: float, name: str | None = None) -> "LatencyModel":
        scaled_table = {op: lat * factor for op, lat in self.table.items()}
        return LatencyModel(scaled_table, name or f"{self.name}-x{factor}")


_MODELS = {
    "n4096-depth1": LatencyModel(_N4096_TABLE, "n4096-depth1"),
    "n8192-depth3": LatencyModel(_N8192_TABLE, "n8192-depth3"),
    # The toy preset is test-only; reuse the n4096 ratios.
    "toy-insecure": LatencyModel(_N4096_TABLE, "toy-insecure"),
}


def default_latency_model(params_name: str = "n4096-depth1") -> LatencyModel:
    """The checked-in latency profile for a parameter preset."""
    model = _MODELS.get(params_name)
    if model is None:
        raise KeyError(
            f"no latency profile for {params_name!r}; "
            f"known: {sorted(_MODELS)} (run repro.runtime.profiler to add one)"
        )
    return model
