"""Concrete evaluation of Quill programs over integer vectors.

The interpreter realises Quill's behavioural model: ciphertext operands are
plain numpy int64 vectors, manipulated only through the HE-legal
instructions.  Rotation uses the shift-with-zero-fill semantics described
in the package docstring.
"""

from __future__ import annotations

import numpy as np

from repro.quill.ir import (
    CtInput,
    Opcode,
    Program,
    PtConst,
    PtInput,
    Ref,
    Wire,
)


def shift_vector(vec: np.ndarray, amount: int) -> np.ndarray:
    """Shift ``vec`` left by ``amount`` slots (negative = right), zero fill."""
    n = len(vec)
    out = np.zeros_like(vec)
    if amount >= 0:
        if amount < n:
            out[: n - amount] = vec[amount:]
    else:
        if -amount < n:
            out[-amount:] = vec[: n + amount]
    return out


def evaluate(
    program: Program,
    ct_env: dict[str, np.ndarray],
    pt_env: dict[str, np.ndarray] | None = None,
    all_wires: bool = False,
):
    """Run ``program`` on concrete inputs.

    Args:
        program: the kernel to evaluate.
        ct_env: ciphertext input name -> int vector of ``vector_size``.
        pt_env: symbolic plaintext input name -> int vector.
        all_wires: when true, return the list of every wire value instead
            of just the output (useful for traces and debugging).

    Returns:
        The output vector, or all wire values when ``all_wires`` is set.
    """
    pt_env = pt_env or {}
    n = program.vector_size

    def fetch(ref: Ref) -> np.ndarray:
        if isinstance(ref, Wire):
            return wires[ref.index]
        if isinstance(ref, CtInput):
            return _as_vector(ct_env[ref.name], n)
        if isinstance(ref, PtInput):
            return _as_vector(pt_env[ref.name], n)
        if isinstance(ref, PtConst):
            return np.array(program.constant_vector(ref.name), dtype=np.int64)
        raise TypeError(f"unknown reference {ref!r}")

    wires: list[np.ndarray] = []
    for instr in program.instructions:
        if instr.opcode is Opcode.ROTATE:
            value = shift_vector(fetch(instr.operands[0]), instr.amount)
        elif instr.opcode is Opcode.RELIN:
            # relinearization changes the ciphertext representation, not
            # the plaintext it encrypts
            value = fetch(instr.operands[0])
        else:
            a = fetch(instr.operands[0])
            b = fetch(instr.operands[1])
            if instr.opcode in (Opcode.ADD_CC, Opcode.ADD_CP):
                value = a + b
            elif instr.opcode in (Opcode.SUB_CC, Opcode.SUB_CP):
                value = a - b
            else:
                value = a * b
        wires.append(value)

    if all_wires:
        return wires
    if program.output is None:
        raise ValueError("program has no output")
    return fetch(program.output)


def _as_vector(values, n: int) -> np.ndarray:
    vec = np.asarray(values, dtype=np.int64)
    if vec.shape != (n,):
        raise ValueError(f"expected a vector of {n} slots, got shape {vec.shape}")
    return vec
