"""Static well-formedness checks for Quill programs."""

from __future__ import annotations

import re

from repro.quill.ir import (
    CtInput,
    Opcode,
    Program,
    PtConst,
    PtInput,
    Ref,
    Wire,
)

_WIRE_NAME = re.compile(r"^c\d+$")


class QuillValidationError(Exception):
    """Raised when a Quill program violates a structural invariant."""


def validate_program(program: Program) -> None:
    """Raise :class:`QuillValidationError` on any malformed construct."""
    if program.vector_size < 1:
        raise QuillValidationError("vector_size must be positive")

    _check_names(program)
    for index, instr in enumerate(program.instructions):
        _check_instruction(program, index, instr)

    if program.output is None:
        raise QuillValidationError("program has no output")
    _check_ct_ref(program, len(program.instructions), program.output, "output")


def _check_names(program: Program) -> None:
    seen: set[str] = set()
    for kind, names in (
        ("ciphertext input", program.ct_inputs),
        ("plaintext input", program.pt_inputs),
        ("constant", list(program.constants)),
    ):
        for name in names:
            if not name:
                raise QuillValidationError(f"empty {kind} name")
            if _WIRE_NAME.match(name):
                raise QuillValidationError(
                    f"{kind} name {name!r} collides with wire naming"
                )
            if name in seen:
                raise QuillValidationError(f"duplicate name {name!r}")
            seen.add(name)
    for name, value in program.constants.items():
        if not isinstance(value, int) and len(value) != program.vector_size:
            raise QuillValidationError(
                f"constant {name!r} has length {len(value)}, "
                f"expected {program.vector_size}"
            )


def _check_instruction(program: Program, index: int, instr) -> None:
    where = f"instruction {index} ({instr.opcode.value})"
    if instr.opcode is Opcode.ROTATE:
        n = program.vector_size
        if not -n < instr.amount < n:
            raise QuillValidationError(
                f"{where}: rotation amount {instr.amount} out of range"
            )
        if instr.amount == 0:
            raise QuillValidationError(f"{where}: rotation by zero is not canonical")
        _check_ct_ref(program, index, instr.operands[0], where)
        return
    _check_ct_ref(program, index, instr.operands[0], where)
    if instr.opcode.has_plain_operand:
        second = instr.operands[1]
        if isinstance(second, PtInput):
            if second.name not in program.pt_inputs:
                raise QuillValidationError(
                    f"{where}: undeclared plaintext input {second.name!r}"
                )
        elif isinstance(second, PtConst):
            if second.name not in program.constants:
                raise QuillValidationError(
                    f"{where}: undeclared constant {second.name!r}"
                )
        else:
            raise QuillValidationError(
                f"{where}: ct-pt instruction needs a plaintext second operand"
            )
    else:
        _check_ct_ref(program, index, instr.operands[1], where)


def _check_ct_ref(program: Program, index: int, ref: Ref, where: str) -> None:
    if isinstance(ref, Wire):
        if not 0 <= ref.index < index:
            raise QuillValidationError(
                f"{where}: wire c{ref.index + 1} referenced before definition"
            )
    elif isinstance(ref, CtInput):
        if ref.name not in program.ct_inputs:
            raise QuillValidationError(
                f"{where}: undeclared ciphertext input {ref.name!r}"
            )
    else:
        raise QuillValidationError(
            f"{where}: expected a ciphertext operand, got {ref!r}"
        )
