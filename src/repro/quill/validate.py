"""Static well-formedness checks for Quill programs."""

from __future__ import annotations

import re

from repro.quill.ir import (
    CtInput,
    Opcode,
    Program,
    PtConst,
    PtInput,
    Ref,
    Wire,
    wire_part_counts,
)

_WIRE_NAME = re.compile(r"^c\d+$")


class QuillValidationError(Exception):
    """Raised when a Quill program violates a structural invariant."""


def validate_program(program: Program) -> None:
    """Raise :class:`QuillValidationError` on any malformed construct."""
    if program.vector_size < 1:
        raise QuillValidationError("vector_size must be positive")
    if program.relin_mode not in ("eager", "explicit"):
        raise QuillValidationError(
            f"unknown relin mode {program.relin_mode!r}"
        )

    _check_names(program)
    for index, instr in enumerate(program.instructions):
        _check_instruction(program, index, instr)

    if program.output is None:
        raise QuillValidationError("program has no output")
    for out in program.outputs:
        _check_ct_ref(program, len(program.instructions), out, "output")

    _check_relin_discipline(program)


def _check_names(program: Program) -> None:
    seen: set[str] = set()
    for kind, names in (
        ("ciphertext input", program.ct_inputs),
        ("plaintext input", program.pt_inputs),
        ("constant", list(program.constants)),
    ):
        for name in names:
            if not name:
                raise QuillValidationError(f"empty {kind} name")
            if _WIRE_NAME.match(name):
                raise QuillValidationError(
                    f"{kind} name {name!r} collides with wire naming"
                )
            if name in seen:
                raise QuillValidationError(f"duplicate name {name!r}")
            seen.add(name)
    for name, value in program.constants.items():
        if not isinstance(value, int) and len(value) != program.vector_size:
            raise QuillValidationError(
                f"constant {name!r} has length {len(value)}, "
                f"expected {program.vector_size}"
            )


def _check_instruction(program: Program, index: int, instr) -> None:
    where = f"instruction {index} ({instr.opcode.value})"
    if instr.opcode is Opcode.ROTATE:
        n = program.vector_size
        if not -n < instr.amount < n:
            raise QuillValidationError(
                f"{where}: rotation amount {instr.amount} out of range"
            )
        if instr.amount == 0:
            raise QuillValidationError(f"{where}: rotation by zero is not canonical")
        _check_ct_ref(program, index, instr.operands[0], where)
        return
    if instr.opcode is Opcode.RELIN:
        if not program.is_explicit_relin:
            raise QuillValidationError(
                f"{where}: relin instructions require relin_mode='explicit' "
                "(eager programs relinearize implicitly)"
            )
        ref = instr.operands[0]
        if not isinstance(ref, Wire):
            raise QuillValidationError(
                f"{where}: relin applies to a computed wire, got {ref!r}"
            )
        _check_ct_ref(program, index, ref, where)
        return
    _check_ct_ref(program, index, instr.operands[0], where)
    if instr.opcode.has_plain_operand:
        second = instr.operands[1]
        if isinstance(second, PtInput):
            if second.name not in program.pt_inputs:
                raise QuillValidationError(
                    f"{where}: undeclared plaintext input {second.name!r}"
                )
        elif isinstance(second, PtConst):
            if second.name not in program.constants:
                raise QuillValidationError(
                    f"{where}: undeclared constant {second.name!r}"
                )
        else:
            raise QuillValidationError(
                f"{where}: ct-pt instruction needs a plaintext second operand"
            )
    else:
        _check_ct_ref(program, index, instr.operands[1], where)


def _check_relin_discipline(program: Program) -> None:
    """Explicit-mode part-count invariants.

    Every backend operation has a legality constraint on ciphertext
    width: rotations and ct-ct multiplies need two-part operands,
    additions need matching widths, ``RELIN`` folds exactly a three-part
    value, and program outputs must be two parts.  Eager programs
    trivially satisfy all of these.
    """
    if not program.is_explicit_relin:
        # _check_instruction already rejected any RELIN in eager mode
        return
    parts = wire_part_counts(program)

    def of(ref: Ref) -> int:
        return parts[ref.index] if isinstance(ref, Wire) else 2

    for index, instr in enumerate(program.instructions):
        where = f"instruction {index} ({instr.opcode.value})"
        if instr.opcode is Opcode.ROTATE and of(instr.operands[0]) != 2:
            raise QuillValidationError(
                f"{where}: rotation of an unrelinearized (3-part) ciphertext"
            )
        if instr.opcode is Opcode.MUL_CC and any(
            of(ref) != 2 for ref in instr.operands
        ):
            raise QuillValidationError(
                f"{where}: ct-ct multiply needs relinearized (2-part) operands"
            )
        if instr.opcode in (Opcode.ADD_CC, Opcode.SUB_CC) and (
            of(instr.operands[0]) != of(instr.operands[1])
        ):
            raise QuillValidationError(
                f"{where}: mixed-width operands "
                f"({of(instr.operands[0])} vs {of(instr.operands[1])} parts); "
                "relinearize one side first"
            )
        if instr.opcode is Opcode.RELIN and of(instr.operands[0]) != 3:
            raise QuillValidationError(
                f"{where}: relin of an already two-part ciphertext "
                "is not canonical"
            )
    for out in program.outputs:
        if isinstance(out, Wire) and parts[out.index] != 2:
            raise QuillValidationError(
                f"output {out}: three-part result must be relinearized "
                "before leaving the program"
            )


def _check_ct_ref(program: Program, index: int, ref: Ref, where: str) -> None:
    if isinstance(ref, Wire):
        if not 0 <= ref.index < index:
            raise QuillValidationError(
                f"{where}: wire c{ref.index + 1} referenced before definition"
            )
    elif isinstance(ref, CtInput):
        if ref.name not in program.ct_inputs:
            raise QuillValidationError(
                f"{where}: undeclared ciphertext input {ref.name!r}"
            )
    else:
        raise QuillValidationError(
            f"{where}: expected a ciphertext operand, got {ref!r}"
        )
