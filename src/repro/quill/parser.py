"""Parser for the Quill text format (inverse of :mod:`repro.quill.printer`)."""

from __future__ import annotations

import re

from repro.quill.ir import (
    CtInput,
    Instruction,
    Opcode,
    Program,
    PtConst,
    PtInput,
    Ref,
    Wire,
)
from repro.quill.validate import QuillValidationError, validate_program

_HEADER = re.compile(r'^quill kernel "(?P<name>[^"]*)"$')
_ASSIGN = re.compile(r"^c(?P<dest>\d+) = (?P<rhs>.+)$")
_OPCODES = {op.value: op for op in Opcode}


class QuillParseError(Exception):
    """Raised on malformed Quill text."""


def parse_program(text: str) -> Program:
    """Parse the canonical text format produced by ``format_program``."""
    lines = [
        line.strip()
        for line in text.strip().splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    if not lines or not (header := _HEADER.match(lines[0])):
        raise QuillParseError('expected header: quill kernel "<name>"')
    if len(lines) < 2 or not lines[1].startswith("vec "):
        raise QuillParseError("expected vector size line: vec <n>")

    program = Program(
        vector_size=_parse_int(lines[1][4:], "vector size"),
        ct_inputs=[],
        name=header.group("name"),
    )
    body_start = 2
    for line in lines[2:]:
        if line.startswith("ct "):
            program.ct_inputs.append(line[3:].strip())
        elif line.startswith("pt "):
            program.pt_inputs.append(line[3:].strip())
        elif line.startswith("const "):
            name, value = _parse_const(line)
            program.constants[name] = value
        elif line.startswith("relin "):
            mode = line[6:].strip()
            if mode not in ("eager", "explicit"):
                raise QuillParseError(f"unknown relin mode: {mode!r}")
            program.relin_mode = mode
        else:
            break
        body_start += 1

    expected_dest = 1
    for line in lines[body_start:]:
        if line.startswith("out "):
            ref = _parse_ref(line[4:].strip(), program)
            if program.output is None:
                program.output = ref
            else:
                program.extra_outputs.append(ref)
            continue
        if program.output is not None:
            raise QuillParseError(
                f"instruction after output line: {line!r}"
            )
        match = _ASSIGN.match(line)
        if not match:
            raise QuillParseError(f"cannot parse instruction: {line!r}")
        if int(match.group("dest")) != expected_dest:
            raise QuillParseError(
                f"expected destination c{expected_dest}, got line {line!r}"
            )
        program.instructions.append(_parse_rhs(match.group("rhs"), program))
        expected_dest += 1
    if program.output is None:
        raise QuillParseError("missing output line: out <ref>")

    try:
        validate_program(program)
    except QuillValidationError as exc:
        raise QuillParseError(f"parsed program is invalid: {exc}") from exc
    return program


def _parse_rhs(rhs: str, program: Program) -> Instruction:
    tokens = rhs.split()
    if tokens[0] == "rot":
        if len(tokens) != 3:
            raise QuillParseError(f"rot takes two arguments: {rhs!r}")
        return Instruction(
            Opcode.ROTATE,
            (_parse_ref(tokens[1], program),),
            _parse_int(tokens[2], "rotation amount"),
        )
    if tokens[0] == "relin":
        if len(tokens) != 2:
            raise QuillParseError(f"relin takes one argument: {rhs!r}")
        return Instruction(
            Opcode.RELIN, (_parse_ref(tokens[1], program),)
        )
    opcode = _OPCODES.get(tokens[0])
    if opcode is None or len(tokens) != 3:
        raise QuillParseError(f"cannot parse instruction rhs: {rhs!r}")
    return Instruction(
        opcode,
        (_parse_ref(tokens[1], program), _parse_ref(tokens[2], program)),
    )


def _parse_ref(token: str, program: Program) -> Ref:
    if token.startswith("$"):
        return PtInput(token[1:])
    if token.startswith("%"):
        return PtConst(token[1:])
    if re.match(r"^c\d+$", token):
        return Wire(int(token[1:]) - 1)
    return CtInput(token)


def _parse_const(line: str) -> tuple[str, int | tuple[int, ...]]:
    match = re.match(r"^const (\w+) = (.+)$", line)
    if not match:
        raise QuillParseError(f"cannot parse constant: {line!r}")
    name, body = match.group(1), match.group(2).strip()
    if body.startswith("["):
        if not body.endswith("]"):
            raise QuillParseError(f"unterminated constant vector: {line!r}")
        values = tuple(
            _parse_int(tok, "constant element")
            for tok in body[1:-1].replace(",", " ").split()
        )
        return name, values
    return name, _parse_int(body, "constant")


def _parse_int(token: str, what: str) -> int:
    try:
        return int(token)
    except ValueError as exc:
        raise QuillParseError(f"bad {what}: {token!r}") from exc
