"""Noise modelling: multiplicative depth per paper Table 1.

Quill tracks each ciphertext's multiplicative depth as its noise proxy:
fresh ciphertexts (and plaintexts) start at depth 0; additions,
subtractions, and rotations propagate the maximum operand depth; every
multiplication that involves a ciphertext adds one level.  The paper uses
this to penalise high-noise kernels in the cost function without modelling
bit-exact noise growth (section 4.2, "State in Quill").
"""

from __future__ import annotations

from repro.quill.ir import Opcode, Program, Ref, Wire


def wire_depths(program: Program) -> list[int]:
    """Multiplicative depth of every instruction result."""
    depths: list[int] = []

    def depth_of(ref: Ref) -> int:
        if isinstance(ref, Wire):
            return depths[ref.index]
        return 0  # inputs (ct or pt) are fresh

    for instr in program.instructions:
        operand_depth = max(depth_of(ref) for ref in instr.operands)
        if instr.opcode.is_multiply:
            depths.append(operand_depth + 1)
        else:
            depths.append(operand_depth)
    return depths


def multiplicative_depth(program: Program) -> int:
    """Depth of the program output — the noise level Porcupine minimizes.

    Multi-output programs report the worst (deepest) output.
    """
    wire_outputs = [o for o in program.outputs if isinstance(o, Wire)]
    if not wire_outputs:
        return 0
    depths = wire_depths(program)
    return max(depths[o.index] for o in wire_outputs)
