"""Quill intermediate representation: opcodes, references, programs.

A program is a straight line of SSA instructions.  Instruction ``i``
defines wire ``c{i+1}`` (``c0``..name the ciphertext inputs in listings);
operands reference either inputs, earlier wires, or plaintext values.

Relinearization is modelled two ways, selected by ``Program.relin_mode``:

``"eager"``
    The historical behaviour: ``RELIN`` instructions are forbidden and
    every consumer (executor, code generator, cost model) assumes a
    relinearization immediately follows each ciphertext-ciphertext
    multiply.  Synthesis produces eager programs.
``"explicit"``
    ``RELIN`` instructions appear in the program text exactly where the
    ciphertext is folded back to two polynomials; multiplies leave their
    three-part product live until then.  The optimizer's lazy-relin pass
    converts eager programs into (cheaper) explicit ones.

Programs may also carry ``extra_outputs`` — additional result wires a
multi-output kernel exposes alongside the primary ``output``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Opcode(enum.Enum):
    """The BFV-level instruction set (paper Table 1, plus ``RELIN``)."""

    ADD_CC = "add-ct-ct"
    SUB_CC = "sub-ct-ct"
    MUL_CC = "mul-ct-ct"
    ADD_CP = "add-ct-pt"
    SUB_CP = "sub-ct-pt"
    MUL_CP = "mul-ct-pt"
    ROTATE = "rot"
    RELIN = "relin"

    @property
    def is_rotation(self) -> bool:
        return self is Opcode.ROTATE

    @property
    def is_relin(self) -> bool:
        return self is Opcode.RELIN

    @property
    def is_arithmetic(self) -> bool:
        return self not in (Opcode.ROTATE, Opcode.RELIN)

    @property
    def is_unary(self) -> bool:
        return self in (Opcode.ROTATE, Opcode.RELIN)

    @property
    def has_plain_operand(self) -> bool:
        return self in (Opcode.ADD_CP, Opcode.SUB_CP, Opcode.MUL_CP)

    @property
    def is_multiply(self) -> bool:
        return self in (Opcode.MUL_CC, Opcode.MUL_CP)

    @property
    def is_commutative(self) -> bool:
        return self in (Opcode.ADD_CC, Opcode.MUL_CC)


@dataclass(frozen=True)
class CtInput:
    """Reference to a named ciphertext input."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PtInput:
    """Reference to a named *symbolic* plaintext input (server-side data)."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class PtConst:
    """Reference to a named plaintext constant baked into the program."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Wire:
    """Reference to the result of instruction ``index``."""

    index: int

    def __str__(self) -> str:
        return f"c{self.index + 1}"


# Any value an instruction operand may reference.
Ref = CtInput | PtInput | PtConst | Wire


@dataclass(frozen=True)
class Instruction:
    """One SSA instruction; its destination is implicit (its position).

    ``amount`` is the signed rotation offset for ``ROTATE`` (positive =
    left shift, negative = right shift) and must be 0 otherwise.
    """

    opcode: Opcode
    operands: tuple[Ref, ...]
    amount: int = 0

    def __post_init__(self):
        expected = 1 if self.opcode.is_unary else 2
        if len(self.operands) != expected:
            raise ValueError(
                f"{self.opcode.value} takes {expected} operand(s), "
                f"got {len(self.operands)}"
            )
        if not self.opcode.is_rotation and self.amount != 0:
            raise ValueError("only rotations carry a shift amount")


@dataclass
class Program:
    """A straight-line Quill kernel.

    Attributes:
        vector_size: the model slot count every operand vector has.
        ct_inputs: ciphertext input names, in argument order.
        pt_inputs: symbolic plaintext input names (server-side operands
            the kernel must be correct for *all* values of).
        constants: named fixed plaintext vectors (masks, filter weights);
            scalars are broadcast to ``vector_size`` at evaluation time.
        instructions: the SSA instruction list.
        output: reference to the primary program result.
        name: optional kernel name for listings.
        extra_outputs: additional result references for multi-output
            kernels (listed after the primary output).
        relin_mode: ``"eager"`` (implicit relin after every ct-ct
            multiply) or ``"explicit"`` (``RELIN`` instructions appear
            in the instruction stream).
    """

    vector_size: int
    ct_inputs: list[str]
    pt_inputs: list[str] = field(default_factory=list)
    constants: dict[str, tuple[int, ...] | int] = field(default_factory=dict)
    instructions: list[Instruction] = field(default_factory=list)
    output: Ref | None = None
    name: str = "kernel"
    extra_outputs: list[Ref] = field(default_factory=list)
    relin_mode: str = "eager"

    @property
    def outputs(self) -> tuple[Ref, ...]:
        """Every program result: the primary output plus any extras."""
        primary = () if self.output is None else (self.output,)
        return primary + tuple(self.extra_outputs)

    @property
    def is_explicit_relin(self) -> bool:
        return self.relin_mode == "explicit"

    # ------------------------------------------------------------------
    # Static metrics (paper Table 2 reports these per kernel)
    # ------------------------------------------------------------------

    def instruction_count(self) -> int:
        """Total instructions, rotations included (Table 2 convention)."""
        return len(self.instructions)

    def logical_instruction_count(self) -> int:
        """Instructions excluding ``RELIN`` — the paper's accounting.

        Table 2 counts relinearization as part of the multiply, so
        explicit-relin programs are compared on this number (eager
        programs: identical to :meth:`instruction_count`).
        """
        return sum(
            1 for i in self.instructions if i.opcode is not Opcode.RELIN
        )

    def rotation_count(self) -> int:
        return sum(1 for i in self.instructions if i.opcode.is_rotation)

    def arithmetic_count(self) -> int:
        return sum(1 for i in self.instructions if i.opcode.is_arithmetic)

    def multiply_cc_count(self) -> int:
        return sum(1 for i in self.instructions if i.opcode is Opcode.MUL_CC)

    def relin_count(self) -> int:
        """Relinearizations the program *performs* when executed.

        Eager programs relinearize implicitly after every ct-ct multiply;
        explicit programs perform exactly their ``RELIN`` instructions.
        """
        if self.is_explicit_relin:
            return sum(
                1 for i in self.instructions if i.opcode is Opcode.RELIN
            )
        return self.multiply_cc_count()

    def executable_op_count(self) -> int:
        """Homomorphic operations one run performs, relins included.

        The comparable "work" metric across relin modes: eager programs
        pay one hidden relinearization per ct-ct multiply on top of their
        instruction count.
        """
        if self.is_explicit_relin:
            return len(self.instructions)
        return len(self.instructions) + self.multiply_cc_count()

    def rotation_amounts(self) -> tuple[int, ...]:
        """Distinct rotation offsets, sorted — one Galois key each."""
        return tuple(
            sorted(
                {
                    i.amount
                    for i in self.instructions
                    if i.opcode.is_rotation
                }
            )
        )

    def galois_key_count(self) -> int:
        return len(self.rotation_amounts())

    def critical_depth(self) -> int:
        """Longest instruction chain from any input to any output.

        This is the "Depth" column of Table 2: every instruction
        (rotations included) counts one level — except ``RELIN``, which
        is a ciphertext representation change, not a dataflow level, so
        eager and explicit forms of the same program report one depth.
        """
        depths: list[int] = []
        for instr in self.instructions:
            operand_depth = 0
            for ref in instr.operands:
                if isinstance(ref, Wire):
                    operand_depth = max(operand_depth, depths[ref.index])
            level = 0 if instr.opcode is Opcode.RELIN else 1
            depths.append(operand_depth + level)
        result = 0
        for out in self.outputs:
            if isinstance(out, Wire):
                result = max(result, depths[out.index])
        return result

    def wires_used(self) -> set[int]:
        """Indices of instructions whose results are consumed somewhere."""
        used: set[int] = set()
        for instr in self.instructions:
            for ref in instr.operands:
                if isinstance(ref, Wire):
                    used.add(ref.index)
        for out in self.outputs:
            if isinstance(out, Wire):
                used.add(out.index)
        return used

    def constant_vector(self, name: str) -> tuple[int, ...]:
        """The constant as a full-width tuple (scalars broadcast)."""
        value = self.constants[name]
        if isinstance(value, int):
            return (value,) * self.vector_size
        return tuple(value)

    def __str__(self) -> str:
        from repro.quill.printer import format_program

        return format_program(self)


def wire_part_counts(program: Program) -> list[int]:
    """Ciphertext part count (2 or 3) of every instruction result.

    In eager mode every wire is two parts (the implicit relinearization
    after each ct-ct multiply folds the product immediately).  In
    explicit mode a ct-ct multiply yields a three-part ciphertext that
    stays three parts through additions, subtractions, and plaintext
    operations until a ``RELIN`` folds it back.
    """
    if not program.is_explicit_relin:
        return [2] * len(program.instructions)
    parts: list[int] = []

    def of(ref: Ref) -> int:
        if isinstance(ref, Wire):
            return parts[ref.index]
        return 2  # fresh encryptions are two parts

    for instr in program.instructions:
        if instr.opcode is Opcode.MUL_CC:
            parts.append(3)
        elif instr.opcode in (Opcode.RELIN, Opcode.ROTATE):
            parts.append(2)
        else:
            # add/sub propagate the widest operand; ct-pt ops keep the
            # ciphertext operand's width
            ct_operands = (
                instr.operands[:1]
                if instr.opcode.has_plain_operand
                else instr.operands
            )
            parts.append(max(of(ref) for ref in ct_operands))
    return parts
