"""Quill intermediate representation: opcodes, references, programs.

A program is a straight line of SSA instructions.  Instruction ``i``
defines wire ``c{i+1}`` (``c0``..name the ciphertext inputs in listings);
operands reference either inputs, earlier wires, or plaintext values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Opcode(enum.Enum):
    """The BFV-level instruction set (paper Table 1)."""

    ADD_CC = "add-ct-ct"
    SUB_CC = "sub-ct-ct"
    MUL_CC = "mul-ct-ct"
    ADD_CP = "add-ct-pt"
    SUB_CP = "sub-ct-pt"
    MUL_CP = "mul-ct-pt"
    ROTATE = "rot"

    @property
    def is_rotation(self) -> bool:
        return self is Opcode.ROTATE

    @property
    def is_arithmetic(self) -> bool:
        return self is not Opcode.ROTATE

    @property
    def has_plain_operand(self) -> bool:
        return self in (Opcode.ADD_CP, Opcode.SUB_CP, Opcode.MUL_CP)

    @property
    def is_multiply(self) -> bool:
        return self in (Opcode.MUL_CC, Opcode.MUL_CP)

    @property
    def is_commutative(self) -> bool:
        return self in (Opcode.ADD_CC, Opcode.MUL_CC)


@dataclass(frozen=True)
class CtInput:
    """Reference to a named ciphertext input."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PtInput:
    """Reference to a named *symbolic* plaintext input (server-side data)."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class PtConst:
    """Reference to a named plaintext constant baked into the program."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Wire:
    """Reference to the result of instruction ``index``."""

    index: int

    def __str__(self) -> str:
        return f"c{self.index + 1}"


# Any value an instruction operand may reference.
Ref = CtInput | PtInput | PtConst | Wire


@dataclass(frozen=True)
class Instruction:
    """One SSA instruction; its destination is implicit (its position).

    ``amount`` is the signed rotation offset for ``ROTATE`` (positive =
    left shift, negative = right shift) and must be 0 otherwise.
    """

    opcode: Opcode
    operands: tuple[Ref, ...]
    amount: int = 0

    def __post_init__(self):
        expected = 1 if self.opcode.is_rotation else 2
        if len(self.operands) != expected:
            raise ValueError(
                f"{self.opcode.value} takes {expected} operand(s), "
                f"got {len(self.operands)}"
            )
        if not self.opcode.is_rotation and self.amount != 0:
            raise ValueError("only rotations carry a shift amount")


@dataclass
class Program:
    """A straight-line Quill kernel.

    Attributes:
        vector_size: the model slot count every operand vector has.
        ct_inputs: ciphertext input names, in argument order.
        pt_inputs: symbolic plaintext input names (server-side operands
            the kernel must be correct for *all* values of).
        constants: named fixed plaintext vectors (masks, filter weights);
            scalars are broadcast to ``vector_size`` at evaluation time.
        instructions: the SSA instruction list.
        output: reference to the program result (usually the last wire).
        name: optional kernel name for listings.
    """

    vector_size: int
    ct_inputs: list[str]
    pt_inputs: list[str] = field(default_factory=list)
    constants: dict[str, tuple[int, ...] | int] = field(default_factory=dict)
    instructions: list[Instruction] = field(default_factory=list)
    output: Ref | None = None
    name: str = "kernel"

    # ------------------------------------------------------------------
    # Static metrics (paper Table 2 reports these per kernel)
    # ------------------------------------------------------------------

    def instruction_count(self) -> int:
        """Total instructions, rotations included (Table 2 convention)."""
        return len(self.instructions)

    def rotation_count(self) -> int:
        return sum(1 for i in self.instructions if i.opcode.is_rotation)

    def arithmetic_count(self) -> int:
        return sum(1 for i in self.instructions if i.opcode.is_arithmetic)

    def multiply_cc_count(self) -> int:
        return sum(1 for i in self.instructions if i.opcode is Opcode.MUL_CC)

    def critical_depth(self) -> int:
        """Longest instruction chain from any input to the output.

        This is the "Depth" column of Table 2: every instruction (including
        rotations) counts one level.
        """
        depths: list[int] = []
        for instr in self.instructions:
            operand_depth = 0
            for ref in instr.operands:
                if isinstance(ref, Wire):
                    operand_depth = max(operand_depth, depths[ref.index])
            depths.append(operand_depth + 1)
        if isinstance(self.output, Wire):
            return depths[self.output.index]
        return 0

    def wires_used(self) -> set[int]:
        """Indices of instructions whose results are consumed somewhere."""
        used: set[int] = set()
        for instr in self.instructions:
            for ref in instr.operands:
                if isinstance(ref, Wire):
                    used.add(ref.index)
        if isinstance(self.output, Wire):
            used.add(self.output.index)
        return used

    def constant_vector(self, name: str) -> tuple[int, ...]:
        """The constant as a full-width tuple (scalars broadcast)."""
        value = self.constants[name]
        if isinstance(value, int):
            return (value,) * self.vector_size
        return tuple(value)

    def __str__(self) -> str:
        from repro.quill.printer import format_program

        return format_program(self)
