"""Dataflow-graph form of Quill programs: explicit wires and use-def chains.

The straight-line :class:`~repro.quill.ir.Program` is the right shape for
synthesis and execution, but a terrible one for rewriting: replacing an
instruction renumbers every later wire.  :class:`GraphProgram` is the
middle-end form — each instruction becomes a :class:`GraphNode` with a
stable identity, operands reference nodes (not positions), every node
knows its users, and programs may expose several outputs.  Rewrite
passes (:mod:`repro.quill.rewrite`) mutate the graph through a small set
of invariant-preserving primitives and :meth:`GraphProgram.to_program`
re-linearizes deterministically.

Invariants maintained by the mutators:

* operands always reference declared inputs/constants or existing nodes;
* ``_uses`` is the exact inverse of the operand relation;
* nodes are only removed once nothing (node or output) references them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

from repro.quill.ir import (
    CtInput,
    Instruction,
    Opcode,
    Program,
    PtConst,
    PtInput,
    Ref,
    Wire,
)


@dataclass(frozen=True)
class NodeRef:
    """Reference to the value produced by graph node ``id``."""

    id: int

    def __str__(self) -> str:
        return f"n{self.id}"


# Anything a graph-node operand may reference.
GraphRef = CtInput | PtInput | PtConst | NodeRef


@dataclass
class GraphNode:
    """One operation in the dataflow graph (destination = the node)."""

    id: int
    opcode: Opcode
    operands: tuple[GraphRef, ...]
    amount: int = 0

    def __str__(self) -> str:
        if self.opcode is Opcode.ROTATE:
            return f"n{self.id} = rot {self.operands[0]} {self.amount}"
        if self.opcode is Opcode.RELIN:
            return f"n{self.id} = relin {self.operands[0]}"
        a, b = self.operands
        return f"n{self.id} = {self.opcode.value} {a} {b}"


class GraphError(Exception):
    """Raised when a graph mutation would break an invariant."""


class GraphProgram:
    """A Quill kernel as a mutable dataflow graph."""

    def __init__(
        self,
        vector_size: int,
        name: str = "kernel",
        relin_mode: str = "eager",
    ):
        self.vector_size = vector_size
        self.name = name
        self.relin_mode = relin_mode
        self.ct_inputs: list[str] = []
        self.pt_inputs: list[str] = []
        self.constants: dict[str, tuple[int, ...] | int] = {}
        self.outputs: list[GraphRef] = []
        self._nodes: dict[int, GraphNode] = {}
        self._uses: dict[int, set[int]] = {}  # producer id -> consumer ids
        self._index: dict[tuple, set[int]] = {}  # structural key -> ids
        self._next_id = 0

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def ct_input(self, name: str) -> CtInput:
        if name not in self.ct_inputs:
            self.ct_inputs.append(name)
        return CtInput(name)

    def pt_input(self, name: str) -> PtInput:
        if name not in self.pt_inputs:
            self.pt_inputs.append(name)
        return PtInput(name)

    def constant(self, name: str, value: int | tuple[int, ...]) -> PtConst:
        if not isinstance(value, int):
            value = tuple(int(v) for v in value)
        existing = self.constants.get(name)
        if existing is not None and existing != value:
            raise GraphError(
                f"constant {name!r} redeclared with a different value"
            )
        self.constants[name] = value
        return PtConst(name)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def node(self, node_id: int) -> GraphNode:
        return self._nodes[node_id]

    def nodes(self) -> Iterator[GraphNode]:
        """Live nodes in creation order (a valid topological order only
        until a rewrite inserts late nodes; use :meth:`topo_order` when
        order matters)."""
        return iter(self._nodes.values())

    def users(self, node_id: int) -> frozenset[int]:
        """Ids of nodes consuming ``node_id`` (outputs tracked separately)."""
        return frozenset(self._uses.get(node_id, ()))

    def use_count(self, node_id: int) -> int:
        """Consumer count, counting output positions as uses."""
        output_uses = sum(
            1
            for ref in self.outputs
            if isinstance(ref, NodeRef) and ref.id == node_id
        )
        return len(self._uses.get(node_id, ())) + output_uses

    def is_output(self, node_id: int) -> bool:
        return any(
            isinstance(ref, NodeRef) and ref.id == node_id
            for ref in self.outputs
        )

    def resolve(self, ref: GraphRef) -> GraphNode | None:
        """The defining node of ``ref``, or ``None`` for program inputs."""
        if isinstance(ref, NodeRef):
            return self._nodes[ref.id]
        return None

    def structural_key(
        self, opcode: Opcode, operands: tuple[GraphRef, ...], amount: int = 0
    ) -> tuple:
        """Hash-cons key: identical keys compute identical values.

        Commutative opcodes canonicalize their operand order so
        ``add(a, b)`` and ``add(b, a)`` unify.
        """
        keys = tuple(
            ("n", ref.id) if isinstance(ref, NodeRef) else (type(ref).__name__, ref.name)
            for ref in operands
        )
        if opcode.is_commutative:
            keys = tuple(sorted(keys))
        return (opcode, keys, amount)

    def find(
        self, opcode: Opcode, operands: tuple[GraphRef, ...], amount: int = 0
    ) -> NodeRef | None:
        """A live node computing exactly this value, if one is indexed.

        The structural index tracks *every* structural twin through
        every mutation (``add_node``/``update_node``/
        ``replace_all_uses``/``remove_node``), so a hit is always a
        live, current node — never one whose fields were later
        rewritten in place, and never ``None`` while a twin survives.
        """
        ids = self._index.get(self.structural_key(opcode, operands, amount))
        if not ids:
            return None
        return NodeRef(min(ids))  # deterministic pick among twins

    def find_or_add(
        self, opcode: Opcode, operands: tuple[GraphRef, ...], amount: int = 0
    ) -> NodeRef:
        """Hash-consing emit: reuse a structurally identical live node."""
        found = self.find(opcode, operands, amount)
        if found is not None:
            return found
        return self.add_node(opcode, operands, amount)

    # ------------------------------------------------------------------
    # Mutation primitives
    # ------------------------------------------------------------------

    def _check_operand(self, ref: GraphRef) -> None:
        if isinstance(ref, NodeRef):
            if ref.id not in self._nodes:
                raise GraphError(f"operand references unknown node {ref.id}")
        elif isinstance(ref, CtInput):
            if ref.name not in self.ct_inputs:
                raise GraphError(f"undeclared ciphertext input {ref.name!r}")
        elif isinstance(ref, PtInput):
            if ref.name not in self.pt_inputs:
                raise GraphError(f"undeclared plaintext input {ref.name!r}")
        elif isinstance(ref, PtConst):
            if ref.name not in self.constants:
                raise GraphError(f"undeclared constant {ref.name!r}")
        else:
            raise GraphError(f"bad operand {ref!r}")

    def _reindex(self, node_id: int, old_key: tuple) -> None:
        """Move a mutated node from its old structural key to its new one."""
        ids = self._index.get(old_key)
        if ids is not None:
            ids.discard(node_id)
            if not ids:
                del self._index[old_key]
        node = self._nodes[node_id]
        self._index.setdefault(
            self.structural_key(node.opcode, node.operands, node.amount),
            set(),
        ).add(node_id)

    def add_node(
        self,
        opcode: Opcode,
        operands: tuple[GraphRef, ...],
        amount: int = 0,
    ) -> NodeRef:
        for ref in operands:
            self._check_operand(ref)
        node = GraphNode(self._next_id, opcode, tuple(operands), amount)
        self._next_id += 1
        self._nodes[node.id] = node
        self._uses[node.id] = set()
        for ref in operands:
            if isinstance(ref, NodeRef):
                self._uses[ref.id].add(node.id)
        self._index.setdefault(
            self.structural_key(opcode, node.operands, amount), set()
        ).add(node.id)
        return NodeRef(node.id)

    def update_node(
        self,
        node_id: int,
        *,
        opcode: Opcode | None = None,
        operands: tuple[GraphRef, ...] | None = None,
        amount: int | None = None,
    ) -> None:
        """Rewrite a node in place, keeping use-def chains consistent."""
        node = self._nodes[node_id]
        old_key = self.structural_key(node.opcode, node.operands, node.amount)
        if operands is not None:
            for ref in operands:
                self._check_operand(ref)
                if isinstance(ref, NodeRef) and ref.id == node_id:
                    raise GraphError("node cannot consume itself")
            old_operands = node.operands
            node.operands = tuple(operands)
            for ref in old_operands:
                if isinstance(ref, NodeRef):
                    self._drop_use(ref.id, node_id)
            for ref in node.operands:
                if isinstance(ref, NodeRef):
                    self._uses[ref.id].add(node_id)
        if opcode is not None:
            node.opcode = opcode
        if amount is not None:
            node.amount = amount
        self._reindex(node_id, old_key)

    def _drop_use(self, producer: int, consumer: int) -> None:
        # only drop when no remaining operand of `consumer` uses `producer`
        remaining = any(
            isinstance(ref, NodeRef) and ref.id == producer
            for ref in self._nodes[consumer].operands
        )
        if not remaining:
            self._uses[producer].discard(consumer)

    def replace_all_uses(self, node_id: int, new_ref: GraphRef) -> None:
        """Point every consumer (and output) of ``node_id`` at ``new_ref``."""
        self._check_operand(new_ref)
        if isinstance(new_ref, NodeRef) and new_ref.id == node_id:
            return
        for consumer_id in list(self._uses.get(node_id, ())):
            consumer = self._nodes[consumer_id]
            old_key = self.structural_key(
                consumer.opcode, consumer.operands, consumer.amount
            )
            consumer.operands = tuple(
                new_ref
                if isinstance(ref, NodeRef) and ref.id == node_id
                else ref
                for ref in consumer.operands
            )
            self._reindex(consumer_id, old_key)
            self._uses[node_id].discard(consumer_id)
            if isinstance(new_ref, NodeRef):
                self._uses[new_ref.id].add(consumer_id)
        self.outputs = [
            new_ref
            if isinstance(ref, NodeRef) and ref.id == node_id
            else ref
            for ref in self.outputs
        ]

    def remove_node(self, node_id: int) -> None:
        if self._uses.get(node_id):
            raise GraphError(
                f"node {node_id} still has users {sorted(self._uses[node_id])}"
            )
        if self.is_output(node_id):
            raise GraphError(f"node {node_id} is a program output")
        node = self._nodes.pop(node_id)
        del self._uses[node_id]
        key = self.structural_key(node.opcode, node.operands, node.amount)
        ids = self._index.get(key)
        if ids is not None:
            ids.discard(node_id)
            if not ids:
                del self._index[key]
        for ref in node.operands:
            if isinstance(ref, NodeRef):
                self._uses[ref.id].discard(node_id)

    # ------------------------------------------------------------------
    # Ordering and conversion
    # ------------------------------------------------------------------

    def topo_order(self) -> list[GraphNode]:
        """Deterministic topological order (lowest ready id first).

        Reproduces creation order for graphs that were built front to
        back, and gives a stable schedule after rewrites append nodes
        whose consumers predate them.
        """
        # count *distinct* producers, matching how completion decrements
        pending: dict[int, int] = {
            node.id: len(
                {r.id for r in node.operands if isinstance(r, NodeRef)}
            )
            for node in self._nodes.values()
        }
        ready = [nid for nid, count in pending.items() if count == 0]
        heapq.heapify(ready)
        order: list[GraphNode] = []
        while ready:
            nid = heapq.heappop(ready)
            order.append(self._nodes[nid])
            for consumer in self._uses.get(nid, ()):
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    heapq.heappush(ready, consumer)
        if len(order) != len(self._nodes):
            raise GraphError("cycle detected in dataflow graph")
        return order

    @classmethod
    def from_program(cls, program: Program) -> "GraphProgram":
        graph = cls(
            program.vector_size,
            name=program.name,
            relin_mode=program.relin_mode,
        )
        graph.ct_inputs = list(program.ct_inputs)
        graph.pt_inputs = list(program.pt_inputs)
        graph.constants = dict(program.constants)
        wire_refs: list[NodeRef] = []

        def convert(ref: Ref) -> GraphRef:
            if isinstance(ref, Wire):
                return wire_refs[ref.index]
            return ref

        for instr in program.instructions:
            wire_refs.append(
                graph.add_node(
                    instr.opcode,
                    tuple(convert(r) for r in instr.operands),
                    instr.amount,
                )
            )
        graph.outputs = [convert(out) for out in program.outputs]
        return graph

    def to_program(self, validate: bool = True) -> Program:
        """Linearize back into a straight-line SSA program."""
        if not self.outputs:
            raise GraphError("graph has no outputs")
        order = self.topo_order()
        position = {node.id: i for i, node in enumerate(order)}

        def convert(ref: GraphRef) -> Ref:
            if isinstance(ref, NodeRef):
                return Wire(position[ref.id])
            return ref

        program = Program(
            vector_size=self.vector_size,
            ct_inputs=list(self.ct_inputs),
            pt_inputs=list(self.pt_inputs),
            constants=dict(self.constants),
            instructions=[
                Instruction(
                    node.opcode,
                    tuple(convert(r) for r in node.operands),
                    node.amount,
                )
                for node in order
            ],
            output=convert(self.outputs[0]),
            extra_outputs=[convert(ref) for ref in self.outputs[1:]],
            name=self.name,
            relin_mode=self.relin_mode,
        )
        if validate:
            from repro.quill.validate import validate_program

            validate_program(program)
        return program

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def op_counts(self) -> dict[str, int]:
        """The optimizer's scoreboard for one graph state."""
        rotations = relins = mul_cc = 0
        amounts: set[int] = set()
        for node in self._nodes.values():
            if node.opcode is Opcode.ROTATE:
                rotations += 1
                amounts.add(node.amount)
            elif node.opcode is Opcode.RELIN:
                relins += 1
            elif node.opcode is Opcode.MUL_CC:
                mul_cc += 1
        implicit = mul_cc if self.relin_mode == "eager" else 0
        return {
            "instructions": len(self._nodes),
            "rotations": rotations,
            "relins": relins + implicit,
            "mul_cc": mul_cc,
            "galois_keys": len(amounts),
            "executable_ops": len(self._nodes) + implicit,
        }

    def __repr__(self) -> str:
        return (
            f"GraphProgram({self.name!r}, nodes={len(self._nodes)}, "
            f"outputs={len(self.outputs)}, relin={self.relin_mode})"
        )
