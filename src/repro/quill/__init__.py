"""Quill: the paper's DSL for vectorized homomorphic encryption kernels.

Quill describes straight-line SIMD programs over ciphertext and plaintext
vectors using the BFV instruction set (paper Table 1): element-wise add /
subtract / multiply between two ciphertexts or a ciphertext and a
plaintext, plus slot rotation.  Quill programs are *behavioural models* of
HE programs — operands are plain integer vectors manipulated only through
HE-legal instructions — which lets the synthesizer search and verify code
without paying for actual encryption (paper section 4.2).

Rotation semantics: Quill models a kernel window of ``vector_size`` slots
carved out of a much larger zero-padded ciphertext, so ``rot c k`` shifts
slots by ``k`` positions (left for positive ``k``) and fills vacated slots
with zeros.  :mod:`repro.runtime.executor` checks the layout margin that
makes this exactly equal to true cyclic rotation of the backing ciphertext.
"""

from repro.quill.builder import ProgramBuilder
from repro.quill.cost import program_cost
from repro.quill.graph import GraphNode, GraphProgram, NodeRef
from repro.quill.interpreter import evaluate
from repro.quill.ir import (
    CtInput,
    Instruction,
    Opcode,
    Program,
    PtConst,
    PtInput,
    Ref,
    Wire,
    wire_part_counts,
)
from repro.quill.latency import LatencyModel, default_latency_model
from repro.quill.noise import multiplicative_depth, wire_depths
from repro.quill.parser import parse_program
from repro.quill.printer import format_program
from repro.quill.rewrite import (
    OptimizationResult,
    PassManager,
    RewriteVerificationError,
    default_pass_manager,
    default_passes,
    optimize_program,
)
from repro.quill.validate import QuillValidationError, validate_program

__all__ = [
    "CtInput",
    "GraphNode",
    "GraphProgram",
    "Instruction",
    "LatencyModel",
    "NodeRef",
    "Opcode",
    "OptimizationResult",
    "PassManager",
    "Program",
    "ProgramBuilder",
    "PtConst",
    "PtInput",
    "QuillValidationError",
    "Ref",
    "RewriteVerificationError",
    "Wire",
    "default_latency_model",
    "default_pass_manager",
    "default_passes",
    "evaluate",
    "format_program",
    "multiplicative_depth",
    "optimize_program",
    "parse_program",
    "program_cost",
    "validate_program",
    "wire_depths",
    "wire_part_counts",
]
