"""Fluent construction of Quill programs.

The builder keeps SSA bookkeeping out of kernel definitions::

    b = ProgramBuilder(vector_size=25, name="box-blur")
    img = b.ct_input("img")
    s1 = b.add(img, b.rotate(img, 1))
    out = b.add(s1, b.rotate(s1, 5))
    program = b.build(out)

It also deduplicates identical rotations (the paper's code generator emits
each distinct rotation once even when a local-rotate sketch uses it in
several operands).
"""

from __future__ import annotations

from repro.quill.ir import (
    CtInput,
    Instruction,
    Opcode,
    Program,
    PtConst,
    PtInput,
    Ref,
    Wire,
)


class ProgramBuilder:
    """Incrementally builds a validated straight-line Quill program."""

    def __init__(
        self,
        vector_size: int,
        name: str = "kernel",
        relin_mode: str = "eager",
    ):
        self._program = Program(
            vector_size=vector_size,
            ct_inputs=[],
            name=name,
            relin_mode=relin_mode,
        )
        self._rotation_cache: dict[tuple[Ref, int], Wire] = {}

    # -- declarations ---------------------------------------------------

    def ct_input(self, name: str) -> CtInput:
        if name in self._program.ct_inputs:
            raise ValueError(f"duplicate ciphertext input {name!r}")
        self._program.ct_inputs.append(name)
        return CtInput(name)

    def pt_input(self, name: str) -> PtInput:
        if name in self._program.pt_inputs:
            raise ValueError(f"duplicate plaintext input {name!r}")
        self._program.pt_inputs.append(name)
        return PtInput(name)

    def constant(self, name: str, value: int | list[int] | tuple[int, ...]) -> PtConst:
        if name in self._program.constants:
            raise ValueError(f"duplicate constant {name!r}")
        if not isinstance(value, int):
            value = tuple(int(v) for v in value)
            if len(value) != self._program.vector_size:
                raise ValueError(
                    f"constant {name!r} has length {len(value)}, "
                    f"expected {self._program.vector_size}"
                )
        self._program.constants[name] = value
        return PtConst(name)

    # -- instructions ----------------------------------------------------

    def _emit(self, opcode: Opcode, operands: tuple[Ref, ...], amount: int = 0) -> Wire:
        self._program.instructions.append(Instruction(opcode, operands, amount))
        return Wire(len(self._program.instructions) - 1)

    def rotate(self, ct: Ref, amount: int) -> Ref:
        """Shift ``ct`` by ``amount`` slots (shared across identical uses)."""
        if amount == 0:
            return ct
        n = self._program.vector_size
        if not -n < amount < n:
            raise ValueError(f"rotation amount {amount} out of range for n={n}")
        key = (ct, amount)
        cached = self._rotation_cache.get(key)
        if cached is not None:
            return cached
        wire = self._emit(Opcode.ROTATE, (ct,), amount)
        self._rotation_cache[key] = wire
        return wire

    def add(self, a: Ref, b: Ref) -> Wire:
        return self._emit(self._cc_or_cp(Opcode.ADD_CC, Opcode.ADD_CP, b), (a, b))

    def sub(self, a: Ref, b: Ref) -> Wire:
        return self._emit(self._cc_or_cp(Opcode.SUB_CC, Opcode.SUB_CP, b), (a, b))

    def mul(self, a: Ref, b: Ref) -> Wire:
        return self._emit(self._cc_or_cp(Opcode.MUL_CC, Opcode.MUL_CP, b), (a, b))

    def relin(self, ct: Ref) -> Wire:
        """Fold a three-part product back to two parts (explicit mode)."""
        return self._emit(Opcode.RELIN, (ct,))

    @staticmethod
    def _cc_or_cp(cc: Opcode, cp: Opcode, second_operand: Ref) -> Opcode:
        if isinstance(second_operand, (PtInput, PtConst)):
            return cp
        return cc

    # -- finalization ------------------------------------------------------

    def build(
        self, output: Ref, extra_outputs: tuple[Ref, ...] = ()
    ) -> Program:
        from repro.quill.validate import validate_program

        self._program.output = output
        self._program.extra_outputs = list(extra_outputs)
        validate_program(self._program)
        return self._program
