"""Hand-written, depth-minimized baseline implementations of every kernel.

Each baseline follows the heuristic the paper evaluates against (section
7.1): perform as much computation as possible in early levels, align all
window/reduction elements with explicit rotations up front, and reduce in
balanced trees.  The paper's Figures 5(b) and 6(b) show the box-blur and
Gx baselines reproduced here.

Every function returns a validated Quill :class:`~repro.quill.ir.Program`
built on the same layout as the corresponding spec, and the test suite
verifies each one against its specification symbolically (exactly) and on
the encrypted backend.
"""

from __future__ import annotations

from functools import cache

from repro.quill.builder import ProgramBuilder
from repro.quill.ir import Program, Ref
from repro.spec.kernels import (
    GRID_WIDTH,
    box_blur_spec,
    dot_product_spec,
    gx_spec,
    gy_spec,
    hamming_spec,
    harris_spec,
    l2_spec,
    linear_regression_spec,
    polynomial_regression_spec,
    roberts_spec,
    sobel_spec,
)

_W = GRID_WIDTH  # one grid row = rotation by 5


# ---------------------------------------------------------------------------
# Reduction helper
# ---------------------------------------------------------------------------

def _tree_reduce(builder: ProgramBuilder, value: Ref, length: int) -> Ref:
    """Sum ``length`` (a power of two) adjacent slots into slot 0.

    The canonical log-depth rotate-and-add reduction: after each step the
    partial sums collapse into the lower half.
    """
    step = length // 2
    while step >= 1:
        value = builder.add(value, builder.rotate(value, step))
        step //= 2
    return value


# ---------------------------------------------------------------------------
# Image kernels
# ---------------------------------------------------------------------------

@cache
def box_blur_baseline() -> Program:
    """Figure 5(b): align all four window elements, balanced tree (6 instr)."""
    spec = box_blur_spec()
    b = ProgramBuilder(spec.layout.vector_size, name="box_blur_baseline")
    img = b.ct_input("img")
    right = b.rotate(img, 1)
    down = b.rotate(img, _W)
    diag = b.rotate(img, _W + 1)
    top = b.add(img, right)
    bottom = b.add(down, diag)
    return b.build(b.add(top, bottom))


def _emit_gx_baseline(b: ProgramBuilder, img: Ref) -> Ref:
    """Depth-minimized Gx: 6 rotations, then paired subtractions (Fig 6(b)).

    Gx(s) = img(s-6) + 2*img(s-1) + img(s+4) - img(s-4) - 2*img(s+1) - img(s+6)
    """
    outer1 = b.sub(b.rotate(img, -(_W + 1)), b.rotate(img, _W + 1))
    middle = b.sub(b.rotate(img, -1), b.rotate(img, 1))
    outer2 = b.sub(b.rotate(img, _W - 1), b.rotate(img, -(_W - 1)))
    doubled = b.add(middle, middle)
    outers = b.add(outer1, outer2)
    return b.add(outers, doubled)


def _emit_gy_baseline(b: ProgramBuilder, img: Ref) -> Ref:
    """Depth-minimized Gy (transpose of Gx): row above minus row below."""
    outer1 = b.sub(b.rotate(img, -(_W + 1)), b.rotate(img, _W + 1))
    middle = b.sub(b.rotate(img, -_W), b.rotate(img, _W))
    outer2 = b.sub(b.rotate(img, -(_W - 1)), b.rotate(img, _W - 1))
    doubled = b.add(middle, middle)
    outers = b.add(outer1, outer2)
    return b.add(outers, doubled)


@cache
def gx_baseline() -> Program:
    spec = gx_spec()
    b = ProgramBuilder(spec.layout.vector_size, name="gx_baseline")
    return b.build(_emit_gx_baseline(b, b.ct_input("img")))


@cache
def gy_baseline() -> Program:
    spec = gy_spec()
    b = ProgramBuilder(spec.layout.vector_size, name="gy_baseline")
    return b.build(_emit_gy_baseline(b, b.ct_input("img")))


@cache
def roberts_baseline() -> Program:
    """Align both diagonals, square, and sum."""
    spec = roberts_spec()
    b = ProgramBuilder(spec.layout.vector_size, name="roberts_baseline")
    img = b.ct_input("img")
    diag = b.sub(img, b.rotate(img, _W + 1))
    anti = b.sub(b.rotate(img, _W), b.rotate(img, 1))
    return b.build(b.add(b.mul(diag, diag), b.mul(anti, anti)))


@cache
def sobel_baseline() -> Program:
    """Sobel response from the Gx/Gy baselines: Gx^2 + Gy^2."""
    spec = sobel_spec()
    b = ProgramBuilder(spec.layout.vector_size, name="sobel_baseline")
    img = b.ct_input("img")
    gx = _emit_gx_baseline(b, img)
    gy = _emit_gy_baseline(b, img)
    return b.build(b.add(b.mul(gx, gx), b.mul(gy, gy)))


def _emit_box_blur_baseline(b: ProgramBuilder, src: Ref) -> Ref:
    top = b.add(src, b.rotate(src, 1))
    bottom = b.add(b.rotate(src, _W), b.rotate(src, _W + 1))
    return b.add(top, bottom)


@cache
def harris_baseline() -> Program:
    """Harris corner response from baseline sub-kernels (k = 1/16).

    response = 16 * (Sxx*Syy - Sxy^2) - (Sxx + Syy)^2 where S* are 2x2
    box blurs of the gradient products.
    """
    spec = harris_spec()
    b = ProgramBuilder(spec.layout.vector_size, name="harris_baseline")
    img = b.ct_input("img")
    sixteen = b.constant("sixteen", 16)
    gx = _emit_gx_baseline(b, img)
    gy = _emit_gy_baseline(b, img)
    sxx = _emit_box_blur_baseline(b, b.mul(gx, gx))
    syy = _emit_box_blur_baseline(b, b.mul(gy, gy))
    sxy = _emit_box_blur_baseline(b, b.mul(gx, gy))
    det = b.sub(b.mul(sxx, syy), b.mul(sxy, sxy))
    trace = b.add(sxx, syy)
    return b.build(b.sub(b.mul(det, sixteen), b.mul(trace, trace)))


# ---------------------------------------------------------------------------
# Linear-algebra / ML kernels
# ---------------------------------------------------------------------------

@cache
def dot_product_baseline() -> Program:
    """Figure 2's structure generalised to length 8: multiply, then tree."""
    spec = dot_product_spec()
    n = spec.layout.input("x").size
    b = ProgramBuilder(spec.layout.vector_size, name="dot_product_baseline")
    x = b.ct_input("x")
    w = b.pt_input("w")
    return b.build(_tree_reduce(b, b.mul(x, w), n))


@cache
def hamming_baseline() -> Program:
    spec = hamming_spec()
    n = spec.layout.input("x").size
    b = ProgramBuilder(spec.layout.vector_size, name="hamming_baseline")
    x = b.ct_input("x")
    y = b.ct_input("y")
    diff = b.sub(x, y)
    return b.build(_tree_reduce(b, b.mul(diff, diff), n))


@cache
def l2_baseline() -> Program:
    """Reduction plus an output mask so only the distance leaves the server."""
    spec = l2_spec()
    layout = spec.layout
    n = layout.input("x").size
    b = ProgramBuilder(layout.vector_size, name="l2_baseline")
    x = b.ct_input("x")
    y = b.ct_input("y")
    mask_vec = [0] * layout.vector_size
    mask_vec[layout.origin] = 1
    mask = b.constant("mask", mask_vec)
    diff = b.sub(x, y)
    total = _tree_reduce(b, b.mul(diff, diff), n)
    return b.build(b.mul(total, mask))


@cache
def linear_regression_baseline() -> Program:
    spec = linear_regression_spec()
    n = spec.layout.input("x").size
    b = ProgramBuilder(spec.layout.vector_size, name="linear_regression_baseline")
    x = b.ct_input("x")
    w = b.pt_input("w")
    bias = b.ct_input("b")
    return b.build(b.add(_tree_reduce(b, b.mul(x, w), n), bias))


@cache
def polynomial_regression_baseline() -> Program:
    """Direct evaluation a*x^2 + b*x + c (no factorization): 3 ct multiplies."""
    spec = polynomial_regression_spec()
    b = ProgramBuilder(spec.layout.vector_size, name="polynomial_regression_baseline")
    ca = b.ct_input("a")
    cb = b.ct_input("b")
    cc = b.ct_input("c")
    x = b.ct_input("x")
    x2 = b.mul(x, x)
    ax2 = b.mul(ca, x2)
    bx = b.mul(cb, x)
    return b.build(b.add(b.add(ax2, bx), cc))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

BASELINE_BUILDERS = {
    "box_blur": box_blur_baseline,
    "dot_product": dot_product_baseline,
    "hamming": hamming_baseline,
    "l2": l2_baseline,
    "linear_regression": linear_regression_baseline,
    "polynomial_regression": polynomial_regression_baseline,
    "gx": gx_baseline,
    "gy": gy_baseline,
    "roberts": roberts_baseline,
    "sobel": sobel_baseline,
    "harris": harris_baseline,
}


def baseline_for(name: str) -> Program:
    """The hand-written baseline program for a kernel name."""
    try:
        return BASELINE_BUILDERS[name]()
    except KeyError:
        raise KeyError(f"no baseline for kernel {name!r}") from None
