"""Expert hand-written baseline HE kernels.

The paper's baselines (section 7.1) are written by hand to minimize
logical depth — the state-of-the-art heuristic for optimizing HE programs
before Porcupine: align window elements with rotations first, then combine
them in balanced reduction trees, and use packed inputs throughout.
"""

from repro.baselines.handwritten import (
    BASELINE_BUILDERS,
    baseline_for,
    box_blur_baseline,
    dot_product_baseline,
    gx_baseline,
    gy_baseline,
    hamming_baseline,
    harris_baseline,
    l2_baseline,
    linear_regression_baseline,
    polynomial_regression_baseline,
    roberts_baseline,
    sobel_baseline,
)

__all__ = [
    "BASELINE_BUILDERS",
    "baseline_for",
    "box_blur_baseline",
    "dot_product_baseline",
    "gx_baseline",
    "gy_baseline",
    "hamming_baseline",
    "harris_baseline",
    "l2_baseline",
    "linear_regression_baseline",
    "polynomial_regression_baseline",
    "roberts_baseline",
    "sobel_baseline",
]
