"""Rotation restrictions (paper section 6.1).

Only a few rotation patterns are ever useful: sliding-window kernels need
rotations that align elements inside the window, and in-ciphertext
reductions need power-of-two steps so summation happens as a balanced
tree.  Restricting the rotation holes to these sets prunes the synthesis
search space dramatically without excluding real solutions.
"""

from __future__ import annotations


def sliding_window_rotations(
    grid_width: int,
    window_height: int,
    window_width: int,
    centered: bool = False,
) -> tuple[int, ...]:
    """Rotations aligning sliding-window elements to the output slot.

    Each output of a stencil kernel depends only on its neighbours inside
    the window, so the only useful rotations move a window element onto
    the output slot: ``dr * grid_width + dc`` for every in-window offset
    ``(dr, dc)``, in both directions.  ``centered`` selects a window
    centered on the output (3x3 stencils) versus anchored at its top-left
    corner (2x2 windows).

    Examples on a width-5 grid: a centered 3x3 window gives
    {±1, ±4, ±5, ±6} — the amounts in the paper's Gx kernel (Figure 6) —
    and an anchored 2x2 window gives {±1, ±5, ±6} (Figure 5).
    """
    if centered:
        rows = range(-((window_height - 1) // 2), window_height // 2 + 1)
        cols = range(-((window_width - 1) // 2), window_width // 2 + 1)
    else:
        rows = range(window_height)
        cols = range(window_width)
    offsets: set[int] = set()
    for dr in rows:
        for dc in cols:
            offset = dr * grid_width + dc
            if offset:
                offsets.add(offset)
                offsets.add(-offset)
    return tuple(sorted(offsets, key=lambda x: (abs(x), x)))


def tree_reduction_rotations(length: int) -> tuple[int, ...]:
    """Power-of-two steps for reducing ``length`` packed elements.

    Constrains synthesized reductions to balanced trees (paper 6.1): for a
    length-8 reduction the legal amounts are {1, 2, 4}.  Only left
    rotations are generated — the reduction accumulates toward slot 0,
    which doubles as the paper's left-rotation symmetry breaking.
    """
    if length < 2 or length & (length - 1) != 0:
        raise ValueError("reduction length must be a power of two >= 2")
    steps = []
    step = length // 2
    while step >= 1:
        steps.append(step)
        step //= 2
    return tuple(steps)
