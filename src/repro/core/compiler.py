"""Legacy compiler entry point — superseded by :mod:`repro.api`.

``compile_kernel`` predates the :class:`~repro.api.Porcupine` session
and is kept as a thin deprecated shim over it so old call sites keep
working (same signature, same :class:`CompileResult`).  New code should
use the session API, which adds the kernel registry, the hookable pass
pipeline, the content-addressed compile cache, and backend selection::

    from repro.api import Porcupine

    compiled = Porcupine().compile("box_blur")
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.cegis import SynthesisConfig, SynthesisResult
from repro.core.sketch import Sketch
from repro.core.sketches import KERNEL_SYNTH_SETTINGS
from repro.quill.ir import Program
from repro.spec.reference import Spec


@dataclass
class CompileResult:
    """Everything Porcupine produces for one kernel."""

    spec_name: str
    program: Program
    seal_code: str
    synthesis: SynthesisResult

    def __str__(self) -> str:
        return (
            f"CompileResult({self.spec_name}: "
            f"{self.program.instruction_count()} instructions, "
            f"initial {self.synthesis.initial_time:.2f}s, "
            f"total {self.synthesis.total_time:.2f}s)"
        )


def config_for(spec: Spec, **overrides) -> SynthesisConfig:
    """Synthesis configuration with per-kernel search-depth guidance."""
    settings = dict(KERNEL_SYNTH_SETTINGS.get(spec.name, {}))
    settings.update(overrides)
    return SynthesisConfig(**settings)


def compile_kernel(
    spec: Spec,
    sketch: Sketch | None = None,
    config: SynthesisConfig | None = None,
) -> CompileResult:
    """Synthesize, verify, optimize, and code-generate one kernel.

    .. deprecated::
        Use ``repro.api.Porcupine().compile(...)`` instead; this shim
        forwards there (without cache persistence) and will be removed.
    """
    warnings.warn(
        "repro.core.compile_kernel is deprecated; use "
        "repro.api.Porcupine().compile(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import Porcupine

    session = Porcupine()
    definition = session._resolve(spec)
    if definition.is_composed:
        if sketch is None:
            raise KeyError(
                f"no direct-synthesis sketch for {spec.name!r} "
                "(multi-step kernels compile via repro.api.Porcupine)"
            )
        # A caller-supplied sketch forces direct synthesis, as before.
        from repro.api import KernelDefinition

        definition = KernelDefinition(
            name=spec.name,
            spec=lambda s=spec: s,
            sketch=lambda _spec, s=sketch: s,
        )
    compiled = session.compile(
        definition, sketch=sketch, config=config or config_for(spec)
    )
    assert compiled.synthesis is not None
    return CompileResult(
        spec_name=spec.name,
        program=compiled.program,
        seal_code=compiled.seal_code,
        synthesis=compiled.synthesis,
    )
