"""Top-level compiler API: specification in, verified SEAL kernel out.

This is the user-facing entry point matching the paper's Figure 3
pipeline: ``compile_kernel`` picks (or accepts) a sketch, runs the CEGIS
synthesis engine, and emits SEAL C++ alongside the verified Quill program
and synthesis statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cegis import SynthesisConfig, SynthesisResult, synthesize
from repro.core.codegen import generate_seal_code
from repro.core.sketch import Sketch
from repro.core.sketches import KERNEL_SYNTH_SETTINGS, default_sketch_for
from repro.quill.ir import Program
from repro.spec.reference import Spec


@dataclass
class CompileResult:
    """Everything Porcupine produces for one kernel."""

    spec_name: str
    program: Program
    seal_code: str
    synthesis: SynthesisResult

    def __str__(self) -> str:
        return (
            f"CompileResult({self.spec_name}: "
            f"{self.program.instruction_count()} instructions, "
            f"initial {self.synthesis.initial_time:.2f}s, "
            f"total {self.synthesis.total_time:.2f}s)"
        )


def config_for(spec: Spec, **overrides) -> SynthesisConfig:
    """Synthesis configuration with per-kernel search-depth guidance."""
    settings = dict(KERNEL_SYNTH_SETTINGS.get(spec.name, {}))
    settings.update(overrides)
    return SynthesisConfig(**settings)


def compile_kernel(
    spec: Spec,
    sketch: Sketch | None = None,
    config: SynthesisConfig | None = None,
) -> CompileResult:
    """Synthesize, verify, optimize, and code-generate one kernel."""
    sketch = sketch or default_sketch_for(spec)
    config = config or config_for(spec)
    synthesis = synthesize(spec, sketch, config)
    return CompileResult(
        spec_name=spec.name,
        program=synthesis.program,
        seal_code=generate_seal_code(synthesis.program),
        synthesis=synthesis,
    )
