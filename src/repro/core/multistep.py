"""Multi-step synthesis: composing synthesized kernels (paper section 6.3).

Program synthesis stops scaling around 10-12 instructions, but image
pipelines have natural break points.  Porcupine synthesizes the core
kernels (Gx, Gy, box blur) directly and stitches them into larger
applications: the Sobel operator (``Gx^2 + Gy^2``) and the Harris corner
response.  ``inline_program`` splices one Quill program into another
builder with input remapping; identical rotations are shared across steps
by the builder's CSE, exactly like the paper's code generator.
"""

from __future__ import annotations

from repro.quill.builder import ProgramBuilder
from repro.quill.ir import (
    CtInput,
    Opcode,
    Program,
    PtConst,
    PtInput,
    Ref,
    Wire,
)


def inline_program(
    builder: ProgramBuilder, program: Program, input_map: dict[str, Ref]
) -> Ref:
    """Splice ``program`` into ``builder``, remapping its ciphertext inputs.

    Plaintext inputs and constants must already be declared on the target
    builder under the same names.  Returns the reference holding the
    spliced program's output.
    """
    wire_map: dict[int, Ref] = {}

    def resolve(ref: Ref) -> Ref:
        if isinstance(ref, Wire):
            return wire_map[ref.index]
        if isinstance(ref, CtInput):
            return input_map[ref.name]
        return ref  # plaintext refs resolve by name on the target builder

    for index, instr in enumerate(program.instructions):
        if instr.opcode is Opcode.ROTATE:
            wire_map[index] = builder.rotate(
                resolve(instr.operands[0]), instr.amount
            )
            continue
        a = resolve(instr.operands[0])
        b = resolve(instr.operands[1])
        if instr.opcode in (Opcode.ADD_CC, Opcode.ADD_CP):
            wire_map[index] = builder.add(a, b)
        elif instr.opcode in (Opcode.SUB_CC, Opcode.SUB_CP):
            wire_map[index] = builder.sub(a, b)
        else:
            wire_map[index] = builder.mul(a, b)
    return resolve(program.output)


def compose_sobel(gx: Program, gy: Program, name: str = "sobel_synth") -> Program:
    """Sobel operator from gradient kernels: ``Gx^2 + Gy^2``."""
    if gx.vector_size != gy.vector_size:
        raise ValueError("gradient kernels use different vector sizes")
    builder = ProgramBuilder(gx.vector_size, name=name)
    img = builder.ct_input("img")
    _declare_plains(builder, gx, gy)
    gx_out = inline_program(builder, gx, {"img": img})
    gy_out = inline_program(builder, gy, {"img": img})
    magnitude = builder.add(
        builder.mul(gx_out, gx_out), builder.mul(gy_out, gy_out)
    )
    return builder.build(magnitude)


def compose_harris(
    gx: Program,
    gy: Program,
    blur: Program,
    name: str = "harris_synth",
) -> Program:
    """Harris response from synthesized pieces (k = 1/16).

    ``response = 16 * (Sxx*Syy - Sxy^2) - (Sxx + Syy)^2`` where each
    ``S``-term is the box blur of a gradient product.
    """
    sizes = {gx.vector_size, gy.vector_size, blur.vector_size}
    if len(sizes) != 1:
        raise ValueError("component kernels use different vector sizes")
    builder = ProgramBuilder(gx.vector_size, name=name)
    img = builder.ct_input("img")
    _declare_plains(builder, gx, gy, blur)
    sixteen = builder.constant("sixteen", 16)
    gx_out = inline_program(builder, gx, {"img": img})
    gy_out = inline_program(builder, gy, {"img": img})
    blur_input = blur.ct_inputs[0]
    sxx = inline_program(builder, blur, {blur_input: builder.mul(gx_out, gx_out)})
    syy = inline_program(builder, blur, {blur_input: builder.mul(gy_out, gy_out)})
    sxy = inline_program(builder, blur, {blur_input: builder.mul(gx_out, gy_out)})
    det = builder.sub(builder.mul(sxx, syy), builder.mul(sxy, sxy))
    trace = builder.add(sxx, syy)
    response = builder.sub(builder.mul(det, sixteen), builder.mul(trace, trace))
    return builder.build(response)


def _declare_plains(builder: ProgramBuilder, *programs: Program) -> None:
    """Declare the union of plaintext inputs/constants on the target."""
    declared_pt: set[str] = set()
    declared_const: set[str] = set()
    for program in programs:
        for name in program.pt_inputs:
            if name not in declared_pt:
                builder.pt_input(name)
                declared_pt.add(name)
        for name, value in program.constants.items():
            if name not in declared_const:
                builder.constant(name, value)
                declared_const.add(name)
