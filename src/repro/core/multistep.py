"""Multi-step synthesis: composing synthesized kernels (paper section 6.3).

Program synthesis stops scaling around 10-12 instructions, but image
pipelines have natural break points.  Porcupine synthesizes the core
kernels (Gx, Gy, box blur) directly and stitches them into larger
applications: the Sobel operator (``Gx^2 + Gy^2``) and the Harris corner
response.  ``inline_program`` splices one Quill program into another
builder with input remapping; identical rotations are shared across steps
by the builder's CSE, exactly like the paper's code generator.

Compositions are *declarative*: a :class:`CompositionGraph` names the
ciphertext inputs, the synthesized kernels to splice in, and the glue
arithmetic between them, and :func:`compose` materializes the graph into
one Quill program.  Materialization is graph stitching: every component
is spliced into one :class:`~repro.quill.graph.GraphProgram` through a
shared hash-consing table, so structurally identical work — rotations
*and* arithmetic — is emitted once across component boundaries (the
builder's old cache shared rotations only, and only syntactically).  The
kernel registry (:mod:`repro.api.registry`) consumes these graphs to
compile multi-step kernels, and new pipelines can be registered at
runtime without touching this module.  The paper's two applications are
the built-in graphs :data:`SOBEL_GRAPH` and :data:`HARRIS_GRAPH`;
``compose_sobel``/``compose_harris`` are thin wrappers kept for
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quill.builder import ProgramBuilder
from repro.quill.graph import GraphProgram, GraphRef, NodeRef
from repro.quill.ir import (
    CtInput,
    Opcode,
    Program,
    PtConst,
    PtInput,
    Ref,
    Wire,
)


def inline_program(
    builder: ProgramBuilder, program: Program, input_map: dict[str, Ref]
) -> Ref:
    """Splice ``program`` into ``builder``, remapping its ciphertext inputs.

    Plaintext inputs and constants must already be declared on the target
    builder under the same names.  Explicit-relin programs splice with
    their ``RELIN`` instructions dropped (relin placement is re-decided
    on the composed whole, see :class:`_Stitcher`).  Returns the
    reference holding the spliced program's output.
    """
    wire_map: dict[int, Ref] = {}

    def resolve(ref: Ref) -> Ref:
        if isinstance(ref, Wire):
            return wire_map[ref.index]
        if isinstance(ref, CtInput):
            return input_map[ref.name]
        return ref  # plaintext refs resolve by name on the target builder

    for index, instr in enumerate(program.instructions):
        if instr.opcode is Opcode.ROTATE:
            wire_map[index] = builder.rotate(
                resolve(instr.operands[0]), instr.amount
            )
            continue
        if instr.opcode is Opcode.RELIN:
            wire_map[index] = resolve(instr.operands[0])
            continue
        a = resolve(instr.operands[0])
        b = resolve(instr.operands[1])
        if instr.opcode in (Opcode.ADD_CC, Opcode.ADD_CP):
            wire_map[index] = builder.add(a, b)
        elif instr.opcode in (Opcode.SUB_CC, Opcode.SUB_CP):
            wire_map[index] = builder.sub(a, b)
        else:
            wire_map[index] = builder.mul(a, b)
    return resolve(program.output)


# ---------------------------------------------------------------------------
# Declarative composition graphs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelStep:
    """Splice a synthesized kernel in, feeding its ciphertext inputs.

    ``args`` name earlier steps or graph inputs, matched positionally to
    the kernel program's ciphertext inputs.
    """

    id: str
    kernel: str
    args: tuple[str, ...]


@dataclass(frozen=True)
class OpStep:
    """Glue arithmetic between spliced kernels: add, sub, or mul."""

    id: str
    op: str  # "add" | "sub" | "mul"
    a: str
    b: str

    def __post_init__(self):
        if self.op not in ("add", "sub", "mul"):
            raise ValueError(f"unknown composition op {self.op!r}")


@dataclass(frozen=True)
class ConstStep:
    """A named plaintext constant available to later ``OpStep``s."""

    id: str
    value: int | tuple[int, ...]


CompositionStep = KernelStep | OpStep | ConstStep


@dataclass(frozen=True)
class CompositionGraph:
    """A multi-step application as data: inputs, steps, and the output.

    ``kernels`` lists the synthesized-kernel names the graph splices in
    (the keys ``compose`` expects in its ``programs`` mapping), so a
    registry can compile dependencies before materializing the graph.
    """

    name: str
    inputs: tuple[str, ...]
    steps: tuple[CompositionStep, ...]
    output: str

    @property
    def kernels(self) -> tuple[str, ...]:
        seen: list[str] = []
        for step in self.steps:
            if isinstance(step, KernelStep) and step.kernel not in seen:
                seen.append(step.kernel)
        return tuple(seen)

    def validate(self) -> None:
        """Check every step reference resolves and ids are unique."""
        known = set(self.inputs)
        for step in self.steps:
            if step.id in known:
                raise ValueError(f"{self.name}: duplicate step id {step.id!r}")
            refs = ()
            if isinstance(step, KernelStep):
                refs = step.args
            elif isinstance(step, OpStep):
                refs = (step.a, step.b)
            for ref in refs:
                if ref not in known:
                    raise ValueError(
                        f"{self.name}: step {step.id!r} references "
                        f"unknown value {ref!r}"
                    )
            known.add(step.id)
        if self.output not in known:
            raise ValueError(
                f"{self.name}: output {self.output!r} is not produced "
                "by any step"
            )


class _Stitcher:
    """Hash-consing emitter over one target :class:`GraphProgram`.

    Every instruction — spliced from a component or glue arithmetic —
    goes through :meth:`emit` (the graph's ``find_or_add``), which
    reuses an existing node whenever a structurally identical one was
    already created.  That makes CSE a property of composition itself:
    identical rotations and identical arithmetic are shared across all
    spliced components.
    """

    def __init__(self, target: GraphProgram):
        self.target = target

    def emit(
        self, opcode: Opcode, operands: tuple[GraphRef, ...], amount: int = 0
    ) -> NodeRef:
        return self.target.find_or_add(opcode, operands, amount)

    def splice(
        self, program: Program, input_map: dict[str, GraphRef]
    ) -> GraphRef:
        """Inline one component, remapping its ciphertext inputs.

        Component ``RELIN`` instructions are dropped (the value is its
        operand): relinearization placement is a whole-program decision,
        recomputed by the optimizer's lazy-relin pass after composition,
        so per-component placements would only pin stale choices.
        """
        node_map: dict[int, GraphRef] = {}

        def resolve(ref: Ref) -> GraphRef:
            if isinstance(ref, Wire):
                return node_map[ref.index]
            if isinstance(ref, CtInput):
                return input_map[ref.name]
            return ref  # plaintext refs resolve by name on the target

        for index, instr in enumerate(program.instructions):
            if instr.opcode is Opcode.RELIN:
                node_map[index] = resolve(instr.operands[0])
                continue
            node_map[index] = self.emit(
                instr.opcode,
                tuple(resolve(r) for r in instr.operands),
                instr.amount,
            )
        return resolve(program.output)


_GLUE_OPS = {"add": Opcode.ADD_CC, "sub": Opcode.SUB_CC, "mul": Opcode.MUL_CC}
_CC_TO_CP = {
    Opcode.ADD_CC: Opcode.ADD_CP,
    Opcode.SUB_CC: Opcode.SUB_CP,
    Opcode.MUL_CC: Opcode.MUL_CP,
}


def compose(
    graph: CompositionGraph,
    programs: dict[str, Program],
    name: str | None = None,
) -> Program:
    """Materialize a composition graph into a single Quill program."""
    graph.validate()
    missing = [k for k in graph.kernels if k not in programs]
    if missing:
        raise KeyError(
            f"{graph.name}: no program supplied for kernel(s) {missing}"
        )
    used = [programs[k] for k in graph.kernels]
    if len({p.vector_size for p in used}) > 1:
        raise ValueError("component kernels use different vector sizes")
    target = GraphProgram(used[0].vector_size, name=name or graph.name)
    stitcher = _Stitcher(target)
    env: dict[str, GraphRef] = {
        input_name: target.ct_input(input_name)
        for input_name in graph.inputs
    }
    _declare_plains(target, *used)
    for step in graph.steps:
        if isinstance(step, ConstStep):
            env[step.id] = target.constant(step.id, step.value)
        elif isinstance(step, KernelStep):
            program = programs[step.kernel]
            if len(step.args) != len(program.ct_inputs):
                raise ValueError(
                    f"{graph.name}: step {step.id!r} feeds "
                    f"{len(step.args)} input(s) but kernel "
                    f"{step.kernel!r} takes {len(program.ct_inputs)}"
                )
            input_map = {
                ct_name: env[arg]
                for ct_name, arg in zip(program.ct_inputs, step.args)
            }
            env[step.id] = stitcher.splice(program, input_map)
        else:
            a, b = env[step.a], env[step.b]
            cc = _GLUE_OPS[step.op]
            opcode = (
                _CC_TO_CP[cc] if isinstance(b, (PtInput, PtConst)) else cc
            )
            env[step.id] = stitcher.emit(opcode, (a, b))
    target.outputs = [env[graph.output]]
    return target.to_program()


SOBEL_GRAPH = CompositionGraph(
    name="sobel_synth",
    inputs=("img",),
    steps=(
        KernelStep("gx_out", "gx", ("img",)),
        KernelStep("gy_out", "gy", ("img",)),
        OpStep("gx2", "mul", "gx_out", "gx_out"),
        OpStep("gy2", "mul", "gy_out", "gy_out"),
        OpStep("magnitude", "add", "gx2", "gy2"),
    ),
    output="magnitude",
)

HARRIS_GRAPH = CompositionGraph(
    name="harris_synth",
    inputs=("img",),
    steps=(
        ConstStep("sixteen", 16),
        KernelStep("gx_out", "gx", ("img",)),
        KernelStep("gy_out", "gy", ("img",)),
        OpStep("gxx", "mul", "gx_out", "gx_out"),
        KernelStep("sxx", "box_blur", ("gxx",)),
        OpStep("gyy", "mul", "gy_out", "gy_out"),
        KernelStep("syy", "box_blur", ("gyy",)),
        OpStep("gxy", "mul", "gx_out", "gy_out"),
        KernelStep("sxy", "box_blur", ("gxy",)),
        OpStep("sxx_syy", "mul", "sxx", "syy"),
        OpStep("sxy2", "mul", "sxy", "sxy"),
        OpStep("det", "sub", "sxx_syy", "sxy2"),
        OpStep("trace", "add", "sxx", "syy"),
        OpStep("det16", "mul", "det", "sixteen"),
        OpStep("trace2", "mul", "trace", "trace"),
        OpStep("response", "sub", "det16", "trace2"),
    ),
    output="response",
)


def compose_sobel(gx: Program, gy: Program, name: str = "sobel_synth") -> Program:
    """Sobel operator from gradient kernels: ``Gx^2 + Gy^2``."""
    return compose(SOBEL_GRAPH, {"gx": gx, "gy": gy}, name=name)


def compose_harris(
    gx: Program,
    gy: Program,
    blur: Program,
    name: str = "harris_synth",
) -> Program:
    """Harris response from synthesized pieces (k = 1/16).

    ``response = 16 * (Sxx*Syy - Sxy^2) - (Sxx + Syy)^2`` where each
    ``S``-term is the box blur of a gradient product.
    """
    return compose(HARRIS_GRAPH, {"gx": gx, "gy": gy, "box_blur": blur}, name=name)


def _declare_plains(
    builder: ProgramBuilder | GraphProgram, *programs: Program
) -> None:
    """Declare the union of plaintext inputs/constants on the target."""
    declared_pt: set[str] = set()
    declared_const: set[str] = set()
    for program in programs:
        for name in program.pt_inputs:
            if name not in declared_pt:
                builder.pt_input(name)
                declared_pt.add(name)
        for name, value in program.constants.items():
            if name not in declared_const:
                builder.constant(name, value)
                declared_const.add(name)
