"""Persistent cross-kernel synthesis lemmas.

CEGIS rediscovers the same facts over and over: ``gy``'s search walks
the exact value space ``gx`` just exhausted (same input example, same
component menu, different goal), and a re-run of a solved kernel replays
a search whose outcome is already known.  This module gives synthesis a
content-addressed, on-disk memory — a *lemma store* — recording facts
that are sound to reuse because enumeration order is canonical and
value evaluation is goal-independent:

``finals``
    For a (sketch family, example inputs, program length) that a search
    fully exhausted, the complete set of 64-bit signatures of every
    final value (restricted to the output slots) the engine evaluated.
    A later search over the same family and inputs whose goal signature
    is absent can skip the entire length: by completeness the cold
    search would enumerate exactly this value set and match nothing.
    Collisions only suppress skips (a reachable goal's signature is
    always present), never cause one.

``instrs``
    Full evaluated value matrices of single-instruction programs over
    the base wires, keyed by example *inputs* alone — sketch-agnostic.
    A sibling kernel sharing the inputs (``roberts`` after ``gx``/
    ``gy``) consults these at length 1 to discard whole components whose
    every candidate is known not to match its goal.  Unknown
    instructions are conservatively unskippable; comparisons are exact
    (no hashing), so a skip is always sound.

``matchless``
    Proven-matchless root-rank ranges ``[start, end)`` per (family,
    example chain, length): the canonical enumeration produced no
    example match anywhere in the range.  Sound to skip for any search
    replaying the identical chain — which both a re-run of the same
    kernel and a ``--merge-shards`` replay do.

``candidates``
    The first example-matching program at a given root rank for a
    (family, chain, length).  Combined with matchless coverage of every
    rank before it, a warm round can jump straight to verification.

``phase2``
    Branch-and-bound outcomes: for a (family, chain, length) and entry
    bound, either a full-range proof (with the best accepted program,
    if any) or a range that produced zero accepts under that bound.
    Ranges recorded under bound ``b`` are reusable under any entry
    bound ``b' <= b`` — a candidate rejected under the looser bound is
    rejected under the tighter one too.

``markers``
    Solution markers per (family, seed chain): the length and cost at
    which some shard solved the kernel, so sibling shards stop instead
    of searching ever-deeper ranks that cannot win.

``shards``
    Completed shard descriptors per (family, seed chain), validated by
    ``--merge-shards`` before a merge replay trusts the store.

The store is advisory-but-sound: a *missing* record merely costs search
work, so concurrent writers (shard processes sharing one path) use
merge-on-save — each save re-reads the file and unions it into memory
before the atomic ``write-temp + os.replace``, mirroring the compile
cache's torn-write guarantee.  A lost race drops a record, never
corrupts one.  Corrupt or version-skewed files load as empty.

The store path never participates in compile-cache keys (see
``config_fingerprint``): warm, cold, sharded, and merged runs all
produce byte-identical programs, so they must share cache entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Iterable

import numpy as np

LEMMA_FORMAT = 1

#: finals sets larger than this are not recorded: the big exhausted
#: lengths of a deep search would dominate store size and load time
#: while a consumer saves at most one sweep it could mostly prune anyway
FINALS_CAP = 200_000

_SECTIONS = (
    "finals",
    "instrs",
    "matchless",
    "candidates",
    "phase2",
    "markers",
    "shards",
)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def _digest(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


def family_fingerprint(spec, sketch, options) -> str:
    """Identity of a search *family*: everything that shapes enumeration
    except the kernel's name and goal.

    Two sketches that differ only in name (``gx`` vs ``gy``) share a
    family; anything touching the candidate stream — component menu,
    rotations, constants, layout, prune options — splits it.
    """
    # lazy import: api.cache imports core.cegis, which imports this module
    from dataclasses import asdict

    from repro.api.cache import sketch_fingerprint, spec_fingerprint

    sketch_fp = sketch_fingerprint(sketch)
    sketch_fp.pop("name", None)
    spec_fp = spec_fingerprint(spec)
    return _digest(
        {
            "format": LEMMA_FORMAT,
            "sketch": sketch_fp,
            "layout": spec_fp["layout"],
            "options": asdict(options) if options is not None else None,
        }
    )


def _array_payload(value: np.ndarray) -> list:
    return [list(value.shape), value.reshape(-1).tolist()]


def inputs_fingerprint(layout, examples) -> str:
    """Identity of the example *inputs* (ciphertext and plaintext
    environments in layout order), goal-agnostic.

    Single-instruction values and reachable-value sets depend only on
    these — enumeration never looks at the goal — so records keyed here
    transfer across kernels that share inputs.
    """
    payload = []
    for example in examples:
        entry = []
        for placement in layout.inputs:
            env = example.ct_env if placement.kind == "ct" else example.pt_env
            value = np.asarray(env[placement.name])
            entry.append([placement.name, placement.kind, _array_payload(value)])
        payload.append(entry)
    return _digest(payload)


def chain_fingerprint(layout, examples) -> str:
    """Identity of the full example chain: inputs *and* goals.

    Matchless ranges and candidate records are goal-dependent, so they
    key on the chain; a counterexample round extends the chain and the
    key moves with it.
    """
    payload = [inputs_fingerprint(layout, examples)]
    for example in examples:
        payload.append(_array_payload(np.asarray(example.goal)))
    return _digest(payload)


def finals_key(family: str, inputs: str, length: int) -> str:
    return f"{family}|{inputs}|L{length}"


def chain_key(family: str, chain: str, length: int) -> str:
    return f"{family}|{chain}|L{length}"


def marker_key(family: str, seed_chain: str) -> str:
    return f"{family}|{seed_chain}"


# ---------------------------------------------------------------------------
# Range arithmetic
# ---------------------------------------------------------------------------


def _normalize_ranges(ranges: Iterable[tuple[int, int]]) -> list[list[int]]:
    """Sort, drop empties, and coalesce overlapping/adjacent ranges."""
    merged: list[list[int]] = []
    for start, end in sorted((int(s), int(e)) for s, e in ranges):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return merged


def covered_prefix(ranges: list[list[int]], start: int) -> int:
    """Largest ``r`` such that ``[start, r)`` is fully covered."""
    rank = start
    for lo, hi in ranges:
        if lo > rank:
            break
        if hi > rank:
            rank = hi
    return rank


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class LemmaStore:
    """On-disk lemma store with merge-on-save concurrency semantics.

    Counters (``hits``/``misses``/``skips``) tally consult outcomes:
    a *hit* found a usable record, a *miss* found none, and a *skip*
    counts one search action avoided (a length, a candidate range, a
    phase-2 search).  Engine-level skip volume (candidates never
    enumerated) is reported separately via ``SearchOutcome.lemma_skips``.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.RLock()
        self._data = self._load(self.path)
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self.skips = 0

    # -- persistence --------------------------------------------------------

    @staticmethod
    def _empty() -> dict:
        return {"format": LEMMA_FORMAT, "sections": {s: {} for s in _SECTIONS}}

    @classmethod
    def _load(cls, path: Path) -> dict:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            return cls._empty()
        if (
            not isinstance(payload, dict)
            or payload.get("format") != LEMMA_FORMAT
            or not isinstance(payload.get("sections"), dict)
        ):
            return cls._empty()  # version skew or foreign file: start fresh
        data = cls._empty()
        for section in _SECTIONS:
            stored = payload["sections"].get(section)
            if isinstance(stored, dict):
                data["sections"][section] = stored
        return data

    def _section(self, name: str) -> dict:
        return self._data["sections"][name]

    @classmethod
    def _merge_into(cls, ours: dict, theirs: dict) -> None:
        """Union a just-read on-disk payload into ``ours`` (ours wins on
        scalar conflicts; set-like sections take the union)."""
        for section in _SECTIONS:
            disk = theirs["sections"].get(section, {})
            mine = ours["sections"][section]
            for key, value in disk.items():
                if key not in mine:
                    mine[key] = value
                elif section == "finals":
                    sigs = set(mine[key].get("sigs", []))
                    sigs.update(value.get("sigs", []))
                    mine[key]["sigs"] = sorted(sigs)
                elif section == "matchless":
                    mine[key] = _normalize_ranges(
                        [tuple(r) for r in mine[key]] + [tuple(r) for r in value]
                    )
                elif section in ("candidates", "instrs"):
                    merged = dict(value)
                    merged.update(mine[key])
                    mine[key] = merged
                elif section == "phase2":
                    seen = {cls._phase2_identity(e) for e in mine[key]}
                    for entry in value:
                        if cls._phase2_identity(entry) not in seen:
                            mine[key].append(entry)
                elif section == "markers":
                    if value.get("length", 1 << 60) < mine[key].get(
                        "length", 1 << 60
                    ):
                        mine[key] = value
                elif section == "shards":
                    completed = dict(value.get("completed", {}))
                    completed.update(mine[key].get("completed", {}))
                    mine[key]["completed"] = completed

    @staticmethod
    def _phase2_identity(entry: dict) -> tuple:
        return (
            entry.get("bound"),
            entry.get("start"),
            entry.get("end"),
            entry.get("best_text"),
        )

    def flush(self) -> None:
        """Merge-on-save: union the current on-disk content into memory,
        then write atomically.  Mirrors the compile cache's guarantee —
        concurrent readers see a complete old or new file, never a torn
        one; a racing writer can drop (never corrupt) a record."""
        with self._lock:
            if not self._dirty:
                return
            self._merge_into(self._data, self._load(self.path))
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(
                f".tmp.{os.getpid()}.{threading.get_ident()}"
            )
            tmp.write_text(
                json.dumps(self._data, sort_keys=True, separators=(",", ":"))
            )
            os.replace(tmp, self.path)
            self._dirty = False

    # -- recording ----------------------------------------------------------

    def record_finals(self, key: str, sigs: Iterable[int]) -> None:
        with self._lock:
            existing = self._section("finals").get(key)
            sig_set = set(int(s) for s in sigs)
            if existing is not None:
                sig_set.update(existing.get("sigs", []))
            self._section("finals")[key] = {"sigs": sorted(sig_set)}
            self._dirty = True

    def record_instr(self, inputs: str, instr: str, value: np.ndarray) -> None:
        with self._lock:
            table = self._section("instrs").setdefault(inputs, {})
            if instr not in table:
                table[instr] = _array_payload(np.asarray(value))
                self._dirty = True

    def record_matchless(self, key: str, start: int, end: int) -> None:
        if end <= start:
            return
        with self._lock:
            section = self._section("matchless")
            section[key] = _normalize_ranges(
                [tuple(r) for r in section.get(key, [])] + [(start, end)]
            )
            self._dirty = True

    def record_candidate(self, key: str, rank: int, text: str) -> None:
        with self._lock:
            self._section("candidates").setdefault(key, {})[str(rank)] = text
            self._dirty = True

    def record_phase2(
        self,
        key: str,
        *,
        bound: float,
        start: int,
        end: int | None,
        best_text: str | None,
        best_cost: float | None,
    ) -> None:
        with self._lock:
            entries = self._section("phase2").setdefault(key, [])
            entry = {
                "bound": bound,
                "start": int(start),
                "end": None if end is None else int(end),
                "best_text": best_text,
                "best_cost": best_cost,
            }
            if self._phase2_identity(entry) not in {
                self._phase2_identity(e) for e in entries
            }:
                entries.append(entry)
                self._dirty = True

    def record_marker(self, key: str, length: int, cost: float) -> None:
        with self._lock:
            existing = self._section("markers").get(key)
            if existing is None or length < existing.get("length", 1 << 60):
                self._section("markers")[key] = {
                    "length": int(length),
                    "cost": cost,
                }
                self._dirty = True

    def record_shard(
        self,
        key: str,
        *,
        index: int,
        count: int,
        start: int,
        end: int,
        rank_count: int,
    ) -> None:
        with self._lock:
            section = self._section("shards")
            entry = section.setdefault(
                key, {"count": int(count), "rank_count": int(rank_count), "completed": {}}
            )
            entry["count"] = int(count)
            entry["rank_count"] = int(rank_count)
            entry["completed"][str(index)] = [int(start), int(end)]
            self._dirty = True

    # -- consulting ---------------------------------------------------------

    def has_finals(self, key: str) -> bool:
        """Whether a finals set is already recorded (no counter effects)."""
        with self._lock:
            return key in self._section("finals")

    def finals_skip(self, key: str, goal_sig: int) -> bool:
        """True when the whole length is provably matchless for this goal."""
        with self._lock:
            record = self._section("finals").get(key)
            if record is None:
                self.misses += 1
                return False
            self.hits += 1
            if int(goal_sig) in set(record.get("sigs", [])):
                return False
            self.skips += 1
            return True

    def instr_values(self, inputs: str) -> dict[str, np.ndarray]:
        """Decoded single-instruction value matrices for an input set."""
        with self._lock:
            table = self._section("instrs").get(inputs, {})
            decoded = {}
            for instr, (shape, flat) in table.items():
                decoded[instr] = np.array(flat, dtype=np.int64).reshape(shape)
            return decoded

    def matchless_ranges(self, key: str) -> list[list[int]]:
        with self._lock:
            return [list(r) for r in self._section("matchless").get(key, [])]

    def candidate_after(
        self, key: str, resume_rank: int
    ) -> tuple[int, str] | None:
        """The recorded candidate the canonical search starting at
        ``resume_rank`` would find first — valid only when every rank in
        ``[resume_rank, rank)`` is covered by matchless ranges."""
        with self._lock:
            table = self._section("candidates").get(key)
            if not table:
                self.misses += 1
                return None
            ranks = sorted(int(r) for r in table if int(r) >= resume_rank)
            if not ranks:
                self.misses += 1
                return None
            rank = ranks[0]
            ranges = self._section("matchless").get(key, [])
            if covered_prefix(ranges, resume_rank) < rank:
                self.misses += 1
                return None
            self.hits += 1
            return rank, table[str(rank)]

    def phase2_entries(self, key: str) -> list[dict]:
        with self._lock:
            return [dict(e) for e in self._section("phase2").get(key, [])]

    def phase2_full(self, key: str, bound: float) -> dict | None:
        """A full-range phase-2 proof recorded under an entry bound no
        tighter than ``bound``, if any (its final result is the cold
        result for every entry bound ``<=`` its recorded bound)."""
        with self._lock:
            for entry in self._section("phase2").get(key, []):
                if entry.get("start") == 0 and entry.get("end") is None:
                    if entry.get("bound", -1) >= bound:
                        self.hits += 1
                        return dict(entry)
            self.misses += 1
            return None

    def phase2_dead_ranges(self, key: str, bound: float) -> list[list[int]]:
        """Ranges provably accept-free under entry bound ``bound``:
        zero-accept phase-2 ranges recorded under a bound ``>= bound``,
        plus matchless ranges (no example match means no accepts under
        any bound)."""
        with self._lock:
            ranges = [tuple(r) for r in self._section("matchless").get(key, [])]
            for entry in self._section("phase2").get(key, []):
                if entry.get("best_text") is not None:
                    continue
                if entry.get("end") is None:
                    continue
                if entry.get("bound", -1) >= bound:
                    ranges.append((entry["start"], entry["end"]))
            return _normalize_ranges(ranges)

    def marker(self, key: str) -> dict | None:
        with self._lock:
            record = self._section("markers").get(key)
            return dict(record) if record is not None else None

    def shard_status(self, key: str) -> dict | None:
        with self._lock:
            record = self._section("shards").get(key)
            return json.loads(json.dumps(record)) if record is not None else None

    def counters(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "skips": self.skips}


# ---------------------------------------------------------------------------
# Engine tap
# ---------------------------------------------------------------------------


class LemmaTap:
    """Engine-side lemma recorder/consultant.

    Attached to a :class:`~repro.solver.engine.SketchSearch` as
    ``lemma_tap`` for one run.  It records slot-0 instruction values and
    (when ``collect_finals``) the signature of every final value the
    run evaluates, and answers the single engine-side consult: can a
    whole final component be skipped at length 1 because every one of
    its candidates has a recorded value that misses the goal?
    """

    def __init__(
        self,
        store: LemmaStore,
        inputs: str,
        *,
        collect_finals: bool = False,
        consult_instrs: bool = True,
    ):
        self.store = store
        self.inputs = inputs
        self.collect_finals = collect_finals
        self.consult_instrs = consult_instrs
        # signatures accumulate as raw uint64 blocks (one append per
        # evaluated batch) and are deduplicated once at recording time
        self._final_blocks: list[np.ndarray] = []
        self._final_raw = 0
        # any engine-side skip makes this run's final-value sweep
        # incomplete, so finals must not be recorded from it
        self.finals_valid = True
        # a sweep past the cap stops collecting: a multi-million-entry
        # set costs more to store and reload than it could ever skip
        self.finals_overflow = False
        self._seen_instrs: set[str] = set()
        self._known = store.instr_values(inputs) if consult_instrs else {}

    @property
    def final_sigs(self) -> list[int]:
        """Sorted, deduplicated final-value signatures collected so far."""
        if not self._final_blocks:
            return []
        return [int(s) for s in np.unique(np.concatenate(self._final_blocks))]

    @staticmethod
    def instr_id(comp, op1: int, r1: int, op2, r2) -> str:
        """Canonical single-instruction identity over base-wire indices
        and rotation *amounts* (commutative operands ordered)."""
        opcode = comp.opcode.value
        if comp.commutative and (op2, r2) < (op1, r1):
            op1, r1, op2, r2 = op2, r2, op1, r1
        return f"{opcode}|{op1}:{r1}|{op2}:{r2}"

    def record_instr(self, instr: str, value: np.ndarray) -> None:
        if instr in self._seen_instrs:
            return
        self._seen_instrs.add(instr)
        if instr not in self._known:
            self.store.record_instr(self.inputs, instr, value)

    def _push_finals(self, sigs: np.ndarray) -> None:
        self._final_blocks.append(sigs)
        self._final_raw += sigs.size
        if self._final_raw > FINALS_CAP:
            self.finals_overflow = True
            self._final_blocks.clear()

    def record_final_block(self, values: np.ndarray) -> None:
        if not self.collect_finals or self.finals_overflow:
            return
        from repro.solver.values import signature_block

        self._push_finals(signature_block(values))

    def record_final(self, out_value: np.ndarray) -> None:
        if not self.collect_finals or self.finals_overflow:
            return
        from repro.solver.values import signature_block

        self._push_finals(signature_block(out_value[np.newaxis, :, :]))

    def known_miss(self, instr: str, out_slots, goal: np.ndarray) -> bool:
        """True when ``instr`` has a recorded value that provably does
        not match ``goal`` on ``out_slots``.  Unknown instructions and
        shape skews answer False (conservative)."""
        value = self._known.get(instr)
        if value is None:
            self.store.misses += 1
            return False
        if value.shape[0] != goal.shape[0] or value.shape[1] <= max(
            out_slots, default=0
        ):
            self.store.misses += 1
            return False
        self.store.hits += 1
        return not np.array_equal(value[:, out_slots], goal)
