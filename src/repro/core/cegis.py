"""Porcupine's synthesis engine: the CEGIS loop of Algorithm 1.

Phase 1 (*synthesize an initial solution*): starting from the smallest
sketch size, complete the sketch against a set of concrete input-output
examples; verify candidates exactly against the specification; on
verification failure, extract a counterexample, add it to the example set
and retry.  Exhausting a size proves no L-component program exists for it,
so L is incremented — the first verified solution therefore uses the
minimum number of components.

Phase 2 (*cost minimization*): keep searching the same sketch size for
verified programs with strictly lower cost ``latency * (1 + mdepth)``,
with branch-and-bound pruning, until the space is exhausted (optimality
proof, like the paper's re-issued synthesis queries with cost constraints)
or a timeout fires (the paper times out after 20 minutes of no progress
and returns the best solution found).

The loop is *incremental* (``SynthesisConfig(incremental=True)``, the
default): one :class:`~repro.solver.engine.SketchSearch` persists across
rounds.  A counterexample is appended to the live value store as a single
evaluated column, a resumed round skips every root branch the failed
round exhausted without a match (example sets only grow, so a matchless
branch stays matchless), a length increment seeds the deeper search from
the exhausted frontier, and phase 2 inherits phase 1's search state
outright.  Reuse never changes the synthesized program — the resumed
enumeration visits exactly the candidates a from-scratch enumeration
would still accept — so ``incremental=False`` exists purely as the
benchmark baseline.

Both phases run the search either in-process (``workers=1``) or through
:class:`~repro.core.parallel.ParallelSynthesis` (``workers>1``), a
work-stealing pool with mid-round counterexample-frontier and cost-bound
broadcast.  The merged candidate stream is replayed in canonical
enumeration order, so the synthesized program is bit-identical either
way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.checkpoint import (
    CheckpointState,
    SynthesisCheckpoint,
    restore_rng,
    rng_state,
)
from repro.core.lemmas import (
    LemmaStore,
    LemmaTap,
    chain_fingerprint,
    chain_key,
    covered_prefix,
    family_fingerprint,
    finals_key,
    inputs_fingerprint,
    marker_key,
)
from repro.core.parallel import ParallelSynthesis
from repro.core.sketch import Sketch
from repro.quill.cost import program_cost
from repro.quill.ir import Program
from repro.quill.latency import LatencyModel, default_latency_model
from repro.quill.parser import parse_program
from repro.quill.printer import format_program
from repro.solver.engine import (
    SearchOptions,
    SearchOutcome,
    SearchStats,
    SketchSearch,
    materialize_assignment,
)
from repro.solver.values import signature_block
from repro.spec.reference import Example, Spec


class SynthesisError(Exception):
    """Raised when no verified kernel can be synthesized."""


@dataclass
class SynthesisConfig:
    """Tunables for one synthesis run (paper section 7.1 methodology)."""

    min_components: int = 1
    max_components: int = 8
    seed: int = 0
    seed_examples: int = 1
    initial_timeout: float = 900.0
    optimize_timeout: float = 120.0
    optimize: bool = True
    latency_model: LatencyModel | None = None
    workers: int = 1  # search processes; results are identical for any value
    #: pruning/evaluation toggles threaded to the engine (None = defaults)
    search_options: SearchOptions | None = None
    #: cross-round frontier reuse; False re-enumerates every round from
    #: scratch (the ablation baseline — results are bit-identical)
    incremental: bool = True
    #: crash-safe checkpoint file: search state is persisted atomically
    #: at every round boundary and a rerun with the same config resumes
    #: from it, producing a byte-identical program (None: no checkpoint)
    checkpoint_path: str | None = None
    #: persistent cross-kernel lemma store (see :mod:`repro.core.lemmas`):
    #: records proven-matchless rank ranges, reachable final-value
    #: signatures, and branch-and-bound outcomes, and consults a sibling
    #: kernel's records to skip work.  Advisory-but-sound — warm and cold
    #: runs synthesize byte-identical programs — so the path never enters
    #: compile-cache keys (None: no store)
    lemma_path: str | None = None
    #: verified Quill program texts whose best cost seeds phase 2's entry
    #: bound (typically rewrite variants of the kernel's baseline).  A
    #: seeded bound only ever tightens pruning; a zero-accept seeded
    #: search is replayed under the unseeded bound, so the synthesized
    #: program is byte-identical to an unseeded run
    seed_programs: tuple[str, ...] = ()
    #: derive ``seed_programs`` from Quill rewrite variants of the
    #: kernel's registered baseline (resolved by the compile pipeline)
    seed_rewrites: bool = False
    #: ``(index, count)``: restrict this run to shard ``index`` of
    #: ``count`` disjoint root-rank ranges (lengths >= 2; length-1
    #: searches are not rank-partitioned and run in full).  Shards force
    #: a serial engine and record their findings in the lemma store;
    #: a later ``--merge-shards`` replay assembles the serial result
    shard: tuple[int, int] | None = None


@dataclass
class SynthesisResult:
    """A synthesized kernel plus the statistics Table 3 reports."""

    program: Program
    initial_program: Program
    spec_name: str
    components: int
    examples_used: int
    initial_time: float
    total_time: float
    initial_cost: float
    final_cost: float
    proof_complete: bool
    nodes: int
    examples: list[Example] = field(repr=False, default_factory=list)
    search_stats: SearchStats | None = field(repr=False, default=None)
    #: phase 1's live search state, handed to minimize_cost for reuse
    #: (serial incremental runs only; never serialized)
    search: SketchSearch | None = field(repr=False, default=None, compare=False)


def seed_examples(
    spec: Spec,
    config: SynthesisConfig,
    rng: np.random.Generator | None = None,
) -> list[Example]:
    """The initial example set, drawn deterministically from ``config.seed``.

    Every random draw in a synthesis run — seed examples here and
    counterexample fill-in values in :meth:`Spec.example_from_witness` —
    flows from one generator seeded by ``config.seed``, so equal configs
    reproduce equal runs and compile-cache keys stay stable.
    """
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    return [spec.make_example(rng) for _ in range(config.seed_examples)]


def _validate_shard(config: SynthesisConfig) -> tuple[int, int] | None:
    shard = config.shard
    if shard is None:
        return None
    index, count = int(shard[0]), int(shard[1])
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"invalid shard descriptor {index}/{count}")
    return (index, count)


def _shard_bounds(shard: tuple[int, int], total: int) -> tuple[int, int]:
    """Disjoint, exhaustive rank range of shard ``index`` of ``count``."""
    index, count = shard
    return (index * total) // count, ((index + 1) * total) // count


def _lemma_context(spec, sketch, config, options):
    """(store, family fingerprint, seed-chain fingerprint) — or Nones.

    The seed chain (the deterministic initial example set, before any
    counterexamples) keys the cross-shard coordination records: every
    shard of a run shares it regardless of how its own chain diverges.
    """
    if config.lemma_path is None:
        return None, None, None
    store = LemmaStore(config.lemma_path)
    family = family_fingerprint(spec, sketch, options)
    seed_chain = chain_fingerprint(spec.layout, seed_examples(spec, config))
    return store, family, seed_chain


def _goal_signature(examples: list[Example]) -> int:
    goals = np.stack([np.asarray(ex.goal) for ex in examples])
    return int(signature_block(goals[None, :, :])[0])


def _fold_lemma_counters(stats: SearchStats, store: LemmaStore | None) -> None:
    if store is not None:
        stats.lemma_hits += store.hits
        stats.lemma_misses += store.misses
        stats.lemma_skips += store.skips


def _record_shard_done(store, family, seed_chain, shard, search) -> None:
    """Record this shard's completed rank range so ``--merge-shards`` can
    check that every shard of the split actually ran."""
    rank_count = search.root_choice_count() if search is not None else 0
    lo, hi = _shard_bounds(shard, rank_count)
    store.record_shard(
        marker_key(family, seed_chain),
        index=shard[0],
        count=shard[1],
        start=lo,
        end=hi,
        rank_count=rank_count,
    )
    store.flush()


def _seed_bound(spec, config, model) -> float | None:
    """Tightest verified cost among ``config.seed_programs``.

    Seed programs only ever supply a phase-2 entry bound — they never
    become the search result — so an unparsable or non-equivalent seed
    is simply ignored rather than an error.
    """
    best = None
    for text in config.seed_programs:
        try:
            program = parse_program(text)
        except Exception:
            continue
        if not spec.verify_program(program).equivalent:
            continue
        cost = program_cost(program, model)
        if best is None or cost < best:
            best = cost
    return best


def synthesize_initial(
    spec: Spec,
    sketch: Sketch,
    config: SynthesisConfig | None = None,
    *,
    driver: ParallelSynthesis | None = None,
) -> SynthesisResult:
    """Phase 1 of Algorithm 1: the smallest verified completion of the sketch.

    Returns a result whose final program *is* the initial program; run
    :func:`minimize_cost` on it for the paper's phase-2 cost search.
    ``driver`` shares one parallel worker pool across phases (created on
    demand from ``config.workers`` when omitted).
    """
    config = config or SynthesisConfig()
    model = config.latency_model or default_latency_model(spec.params_name)
    options = config.search_options or SearchOptions()
    shard = _validate_shard(config)
    if shard is not None:
        driver = None  # shard searches are serial by construction
    store, family, seed_chain = _lemma_context(spec, sketch, config, options)
    rng = np.random.default_rng(config.seed)
    examples = seed_examples(spec, config, rng)

    checkpoint: SynthesisCheckpoint | None = None
    restored: CheckpointState | None = None
    start_length = config.min_components
    restored_rank = 0  # resume rank for the restored length only
    if config.checkpoint_path is not None:
        checkpoint = SynthesisCheckpoint.for_run(
            config.checkpoint_path, spec, sketch, config
        )
        restored = checkpoint.load()
    if restored is not None and restored.phase != "initial":
        # phase 1 completed before the crash: reconstruct its result
        # (the program text is what byte-identity is measured on; the
        # wall-clock and node counters of the lost run are gone)
        program = parse_program(restored.initial_text)
        cost = float(restored.initial_cost)
        return SynthesisResult(
            program=program,
            initial_program=program,
            spec_name=spec.name,
            components=restored.components,
            examples_used=len(restored.examples),
            initial_time=0.0,
            total_time=0.0,
            initial_cost=cost,
            final_cost=cost,
            proof_complete=True,
            nodes=0,
            examples=list(restored.examples),
            search_stats=SearchStats(),
        )
    if restored is not None and restored.length is not None:
        # resume the counterexample loop at the checkpointed boundary:
        # same examples, same rng stream, same sketch size, same rank
        examples = list(restored.examples)
        if restored.rng is not None:
            restore_rng(rng, restored.rng)
        start_length = restored.length
        restored_rank = restored.resume_rank

    start = time.perf_counter()
    deadline = start + config.initial_timeout
    stats = SearchStats()
    initial_program: Program | None = None
    components_used = 0
    own_driver = driver is None and config.workers > 1 and shard is None
    if own_driver:
        driver = ParallelSynthesis(
            config.workers, options=options, incremental=config.incremental
        )

    def fail_timeout(length: int) -> SynthesisError:
        return SynthesisError(
            f"{spec.name}: initial synthesis timed out at "
            f"{length} components after "
            f"{time.perf_counter() - start:.1f}s ({stats.nodes} nodes)"
        )

    search: SketchSearch | None = None
    try:
        for length in range(start_length, config.max_components + 1):
            found_at_this_length = False
            # cross-round frontier within this length (restored for the
            # checkpointed length, 0 for every deeper one)
            resume_rank = restored_rank if length == start_length else 0
            if store is not None and shard is not None:
                marker = store.marker(marker_key(family, seed_chain))
                if marker is not None and length > marker["length"]:
                    # a sibling shard already solved at a smaller length:
                    # this shard's ranges cannot contain the canonical
                    # solution, so stop instead of searching ever deeper
                    _record_shard_done(store, family, seed_chain, shard, search)
                    raise SynthesisError(
                        f"{spec.name}: shard {shard[0]}/{shard[1]} "
                        "completed its rank ranges without the solution "
                        "(a sibling shard solved at "
                        f"{marker['length']} components); run with "
                        "--merge-shards to assemble the result"
                    )
            while True:  # counterexample loop at this sketch size
                ckey = fkey = inputs_fp = None
                if store is not None:
                    inputs_fp = inputs_fingerprint(spec.layout, examples)
                    ckey = chain_key(
                        family,
                        chain_fingerprint(spec.layout, examples),
                        length,
                    )
                    fkey = finals_key(family, inputs_fp, length)
                if checkpoint is not None:
                    # a round boundary is deterministic given (examples,
                    # length, start_rank) and the rng stream: saving
                    # here makes a kill anywhere inside the round resume
                    # to a byte-identical replay of it
                    checkpoint.save(CheckpointState(
                        phase="initial",
                        length=length,
                        resume_rank=resume_rank,
                        examples=examples,
                        rng=rng_state(rng),
                        shard_index=None if shard is None else shard[0],
                        shard_count=None if shard is None else shard[1],
                    ))
                # lemma: a complete recorded final-value set for this
                # (family, inputs, length) that misses the goal proves
                # the whole length matchless — skip it without a search
                if store is not None and store.finals_skip(
                    fkey, _goal_signature(examples)
                ):
                    break
                # lemma: a recorded candidate whose every lower rank is
                # covered by matchless ranges is exactly the program the
                # canonical search would find first — jump to verifying
                if store is not None and shard is None:
                    hit = store.candidate_after(ckey, resume_rank)
                    if hit is not None:
                        rank, text = hit
                        store.skips += 1
                        program = parse_program(text)
                        verdict = spec.verify_program(program)
                        if verdict.equivalent:
                            initial_program = program
                            components_used = length
                            found_at_this_length = True
                            break
                        example = spec.example_from_witness(
                            verdict.counterexample, rng
                        )
                        examples.append(example)
                        if config.incremental:
                            if length >= 2:
                                resume_rank = rank
                            if search is not None:
                                search.extend_examples([example])
                        continue
                if driver is not None:
                    run_start = resume_rank
                    if store is not None and length >= 2:
                        extended = covered_prefix(
                            store.matchless_ranges(ckey), run_start
                        )
                        if extended > run_start:
                            store.skips += 1
                            run_start = extended
                    outcome, text = driver.find_first(
                        sketch,
                        spec.layout,
                        examples,
                        model,
                        length,
                        deadline=deadline,
                        name=f"{spec.name}_synth",
                        start_rank=run_start,
                    )
                    stats.record(outcome)
                    if text is not None:
                        program = parse_program(text)
                        verdict = spec.verify_program(program)
                        if verdict.equivalent:
                            initial_program = program
                            components_used = length
                            found_at_this_length = True
                            break
                        if (
                            config.incremental
                            and length >= 2
                            and driver.last_match_rank >= 0
                        ):
                            # every branch below the failed match is
                            # exhausted and matchless; adding an example
                            # can only shrink the match set, so the next
                            # round resumes at the match branch
                            resume_rank = driver.last_match_rank
                        examples.append(
                            spec.example_from_witness(
                                verdict.counterexample, rng
                            )
                        )
                        continue
                    if outcome.status == "timeout":
                        raise fail_timeout(length)
                    break  # exhausted: no program of this size exists
                if search is None or not config.incremental:
                    search = SketchSearch(
                        sketch, spec.layout, examples, model, length,
                        options=options,
                    )
                elif search.length != length:
                    search.set_length(length)
                total_ranks = search.root_choice_count()
                run_start = resume_rank
                root_ranks = None
                shard_lo = shard_hi = None
                if shard is not None and length >= 2:
                    shard_lo, shard_hi = _shard_bounds(shard, total_ranks)
                    root_ranks = frozenset(range(shard_lo, shard_hi))
                if store is not None and shard is None:
                    ranges = store.matchless_ranges(ckey)
                    if length >= 2:
                        extended = covered_prefix(ranges, run_start)
                        if extended > run_start:
                            # proven-matchless prefix: resume past it
                            store.skips += 1
                            run_start = extended
                    elif covered_prefix(ranges, 0) >= total_ranks:
                        # length-1 searches are not rank-partitioned;
                        # full recorded coverage skips the whole round
                        store.skips += 1
                        break
                tap = None
                if store is not None:
                    # only a full, unrestricted sweep sees every final
                    # value, so only those runs may record a finals set
                    # (and re-collecting one already on disk is waste)
                    tap = LemmaTap(
                        store,
                        inputs_fp,
                        collect_finals=(
                            run_start == 0
                            and root_ranks is None
                            and not store.has_finals(fkey)
                        ),
                    )
                    search.lemma_tap = tap
                state: dict = {}

                def on_candidate(assignment):
                    program = materialize_assignment(
                        sketch,
                        spec.layout,
                        assignment,
                        name=f"{spec.name}_synth",
                    )
                    verdict = spec.verify_program(program)
                    if verdict.equivalent:
                        state["program"] = program
                    else:
                        state["witness"] = verdict.counterexample
                    if store is not None:
                        state["text"] = format_program(program)
                    return True, None  # stop either way: accept or add example

                try:
                    outcome = search.run(
                        on_candidate,
                        deadline=deadline,
                        start_rank=run_start,
                        root_ranks=root_ranks,
                    )
                finally:
                    search.lemma_tap = None
                stats.record(outcome)
                if store is not None and outcome.status != "timeout":
                    searched_lo = (
                        run_start if shard_lo is None
                        else max(run_start, shard_lo)
                    )
                    if "text" in state:
                        match_rank = (
                            search.current_root_rank if length >= 2 else 0
                        )
                        store.record_matchless(
                            ckey,
                            searched_lo if length >= 2 else 0,
                            match_rank,
                        )
                        store.record_candidate(ckey, match_rank, state["text"])
                    elif outcome.status == "exhausted":
                        searched_hi = (
                            total_ranks if shard_hi is None else shard_hi
                        )
                        store.record_matchless(
                            ckey,
                            searched_lo if length >= 2 else 0,
                            searched_hi,
                        )
                        if (
                            tap is not None
                            and tap.collect_finals
                            and tap.finals_valid
                            and not tap.finals_overflow
                        ):
                            store.record_finals(fkey, tap.final_sigs)
                    store.flush()
                if "program" in state:
                    initial_program = state["program"]
                    components_used = length
                    found_at_this_length = True
                    break
                if "witness" in state:
                    example = spec.example_from_witness(state["witness"], rng)
                    examples.append(example)
                    if config.incremental:
                        if length >= 2 and search.current_root_rank >= 0:
                            resume_rank = search.current_root_rank
                        search.extend_examples([example])
                    continue
                if outcome.status == "timeout":
                    raise fail_timeout(length)
                break  # exhausted: no program of this size exists
            if found_at_this_length:
                break
    finally:
        if own_driver:
            driver.close()
    if initial_program is None:
        if store is not None and shard is not None:
            _record_shard_done(store, family, seed_chain, shard, search)
        raise SynthesisError(
            f"{spec.name}: sketch has no solution with up to "
            f"{config.max_components} components"
            + (
                f" in shard {shard[0]}/{shard[1]}'s rank ranges"
                if shard is not None
                else ""
            )
        )

    initial_time = time.perf_counter() - start
    initial_cost = program_cost(initial_program, model)
    if store is not None:
        # the solve marker tells sibling shards to stop deepening, and
        # --merge-shards which shard carried the canonical solution
        store.record_marker(
            marker_key(family, seed_chain), components_used, initial_cost
        )
        if shard is not None:
            _record_shard_done(store, family, seed_chain, shard, search)
        store.flush()
    _fold_lemma_counters(stats, store)
    if checkpoint is not None:
        text = format_program(initial_program)
        checkpoint.save(CheckpointState(
            # optimize=False runs are complete here; otherwise phase 2
            # restarts its branch-and-bound from this (program, bound)
            phase="optimize" if config.optimize else "done",
            examples=examples,
            components=components_used,
            initial_text=text,
            initial_cost=initial_cost,
            best_text=text,
            best_cost=initial_cost,
            proof_complete=True,
        ))

    return SynthesisResult(
        program=initial_program,
        initial_program=initial_program,
        spec_name=spec.name,
        components=components_used,
        examples_used=len(examples),
        initial_time=initial_time,
        total_time=initial_time,
        initial_cost=initial_cost,
        final_cost=initial_cost,
        proof_complete=True,
        nodes=stats.nodes,
        examples=examples,
        search_stats=stats,
        search=search if config.incremental else None,
    )


def minimize_cost(
    spec: Spec,
    sketch: Sketch,
    initial: SynthesisResult,
    config: SynthesisConfig | None = None,
    *,
    driver: ParallelSynthesis | None = None,
) -> SynthesisResult:
    """Phase 2 of Algorithm 1: branch-and-bound cost minimization.

    Keeps searching ``initial``'s sketch size for verified programs with
    strictly lower cost, reusing its example set — and, for serial
    incremental runs, its live search state — until the space is
    exhausted (optimality proof) or ``config.optimize_timeout`` fires.
    """
    config = config or SynthesisConfig()
    model = config.latency_model or default_latency_model(spec.params_name)
    options = config.search_options or SearchOptions()
    shard = _validate_shard(config)
    if shard is not None:
        driver = None  # shard searches are serial by construction
    store, family, seed_chain = _lemma_context(spec, sketch, config, options)
    start = time.perf_counter()
    optimize_deadline = start + config.optimize_timeout
    examples = list(initial.examples)
    best_box = {"program": initial.program, "cost": initial.final_cost}
    stats = SearchStats()
    p2key = None
    if store is not None:
        p2key = chain_key(
            family,
            chain_fingerprint(spec.layout, examples),
            initial.components,
        )

    checkpoint: SynthesisCheckpoint | None = None
    if config.checkpoint_path is not None:
        checkpoint = SynthesisCheckpoint.for_run(
            config.checkpoint_path, spec, sketch, config
        )
        restored = checkpoint.load()
        if restored is not None and restored.phase == "done":
            # the whole run finished before the crash
            program = parse_program(restored.best_text)
            return SynthesisResult(
                program=program,
                initial_program=initial.initial_program,
                spec_name=initial.spec_name,
                components=initial.components,
                examples_used=len(examples),
                initial_time=initial.initial_time,
                total_time=initial.total_time,
                initial_cost=initial.initial_cost,
                final_cost=float(restored.best_cost),
                proof_complete=restored.proof_complete,
                nodes=initial.nodes,
                examples=examples,
                search_stats=initial.search_stats,
            )
        if (
            restored is not None
            and restored.phase == "optimize"
            and restored.best_text is not None
        ):
            # restart the branch-and-bound from the checkpointed best:
            # verified accepted programs form a strictly cost-decreasing
            # sequence in canonical order, so the tightened bound skips
            # exactly the candidates the lost run already rejected
            best_box = {
                "program": parse_program(restored.best_text),
                "cost": float(restored.best_cost),
            }

    def save_progress(program: Program, cost: float) -> None:
        if checkpoint is not None:
                checkpoint.save(CheckpointState(
                phase="optimize",
                examples=examples,
                components=initial.components,
                initial_text=format_program(initial.initial_program),
                initial_cost=initial.initial_cost,
                best_text=format_program(program),
                best_cost=cost,
                proof_complete=True,
                shard_index=None if shard is None else shard[0],
                shard_count=None if shard is None else shard[1],
            ))

    # a rewrite-seeded entry bound tightens branch-and-bound pruning from
    # the first node; soundness comes from the zero-accept retry below
    entry_bound = best_box["cost"]
    bound_used = entry_bound
    seed_bound = _seed_bound(spec, config, model)
    if seed_bound is not None:
        stats.seed_bounds += 1
        if seed_bound < entry_bound:
            bound_used = seed_bound

    # lemma: a recorded full-range branch-and-bound proof under a bound
    # no tighter than ours already names the cold run's result
    shortcut_outcome = None
    if store is not None and shard is None:
        rec = store.phase2_full(p2key, entry_bound)
        if rec is not None:
            usable = True
            if (
                rec.get("best_text") is not None
                and rec.get("best_cost", entry_bound) < entry_bound
            ):
                program = parse_program(rec["best_text"])
                if spec.verify_program(program).equivalent:
                    best_box["program"] = program
                    best_box["cost"] = program_cost(program, model)
                    save_progress(program, best_box["cost"])
                else:
                    usable = False  # stale record: run the real search
            if usable:
                store.skips += 1
                shortcut_outcome = SearchOutcome(
                    status="exhausted", nodes=0, candidates=0
                )

    if shortcut_outcome is not None:
        outcome = shortcut_outcome
        stats.record(outcome)
    elif config.workers > 1 and initial.components > 1 and shard is None:
        own_driver = driver is None
        if own_driver:
            driver = ParallelSynthesis(
                config.workers,
                options=options,
                incremental=config.incremental,
            )
        try:
            saved = {"cost": best_box["cost"]}

            def verify_text(text: str) -> bool:
                program = parse_program(text)
                if not spec.verify_program(program).equivalent:
                    return False
                cost = program_cost(program, model)
                if cost < saved["cost"]:
                    # parent-side verified tightening: the canonical
                    # replay hands texts in accept order, so each save
                    # is a strictly better checkpointed frontier
                    saved["cost"] = cost
                    save_progress(program, cost)
                return True

            outcome, best_text, best_cost = driver.minimize(
                sketch,
                spec.layout,
                examples,
                model,
                initial.components,
                cost_bound=bound_used,
                verify=verify_text,
                deadline=optimize_deadline,
                name=f"{spec.name}_synth",
            )
            if (
                best_text is None
                and bound_used < entry_bound
                and outcome.status == "exhausted"
            ):
                # the seed outbid every candidate: the cold result may
                # lie in [entry_bound, seed) — replay under the unseeded
                # bound so the answer is byte-identical to a cold run
                stats.record(outcome)
                stats.seed_retries += 1
                outcome, best_text, best_cost = driver.minimize(
                    sketch,
                    spec.layout,
                    examples,
                    model,
                    initial.components,
                    cost_bound=entry_bound,
                    verify=verify_text,
                    deadline=optimize_deadline,
                    name=f"{spec.name}_synth",
                )
        finally:
            if own_driver:
                driver.close()
        stats.record(outcome)
        if best_text is not None:
            best_box["program"] = parse_program(best_text)
            best_box["cost"] = best_cost
    else:
        search = None
        carried = initial.search
        if (
            config.incremental
            and carried is not None
            and carried.sketch is sketch
            and carried.length == initial.components
            and len(carried.examples) == len(examples)
            and carried.options == options
            and carried.latency_model.table == model.table
        ):
            search = carried  # phase 1's frontier, store, and caches
        if search is None:
            search = SketchSearch(
                sketch, spec.layout, examples, model, initial.components,
                options=options,
            )
        total_ranks = search.root_choice_count()

        def dead_complement(bound: float) -> frozenset[int] | None:
            # lemma: ranges proven accept-free under a bound at least as
            # tight contribute nothing — search only their complement
            dead = store.phase2_dead_ranges(p2key, bound)
            if not dead:
                return None
            allowed = set(range(total_ranks))
            for lo, hi in dead:
                allowed.difference_update(range(lo, min(hi, total_ranks)))
            removed = total_ranks - len(allowed)
            if removed == 0:
                return None
            store.skips += removed
            return frozenset(allowed)

        root_ranks = None
        shard_lo = shard_hi = None
        if shard is not None and initial.components >= 2:
            shard_lo, shard_hi = _shard_bounds(shard, total_ranks)
            root_ranks = frozenset(range(shard_lo, shard_hi))
        elif store is not None and initial.components >= 2:
            root_ranks = dead_complement(bound_used)

        accepts = {"n": 0}

        def on_better(assignment):
            program = materialize_assignment(
                sketch, spec.layout, assignment, name=f"{spec.name}_synth"
            )
            cost = program_cost(program, model)
            if cost >= best_box["cost"]:
                return False, None
            if spec.verify_program(program).equivalent:
                accepts["n"] += 1
                best_box["program"] = program
                best_box["cost"] = cost
                save_progress(program, cost)
                return False, cost
            return False, None  # matches examples but not the spec

        outcome = search.run(
            on_better,
            cost_bound=bound_used,
            deadline=optimize_deadline,
            root_ranks=root_ranks,
        )
        stats.record(outcome)
        if (
            bound_used < entry_bound
            and accepts["n"] == 0
            and outcome.status == "exhausted"
        ):
            # seed outbid the whole space: replay unseeded (see above)
            stats.seed_retries += 1
            if shard is None and store is not None and initial.components >= 2:
                root_ranks = dead_complement(entry_bound)
            outcome = search.run(
                on_better,
                cost_bound=entry_bound,
                deadline=optimize_deadline,
                root_ranks=root_ranks,
            )
            stats.record(outcome)
            bound_used = entry_bound
        if store is not None and outcome.status == "exhausted":
            best_text = (
                format_program(best_box["program"])
                if accepts["n"] > 0
                else None
            )
            store.record_phase2(
                p2key,
                # an accepted result is the cold answer for any entry
                # bound above its cost, so record the loosest bound it
                # proves; a zero-accept range only proves its own bound
                bound=entry_bound if accepts["n"] > 0 else bound_used,
                start=0 if shard_lo is None else shard_lo,
                end=None if shard_lo is None else shard_hi,
                best_text=best_text,
                best_cost=None if best_text is None else best_box["cost"],
            )
            store.flush()
    _fold_lemma_counters(stats, store)
    if checkpoint is not None:
        checkpoint.save(CheckpointState(
            phase="done",
            examples=examples,
            components=initial.components,
            initial_text=format_program(initial.initial_program),
            initial_cost=initial.initial_cost,
            best_text=format_program(best_box["program"]),
            best_cost=best_box["cost"],
            proof_complete=outcome.status == "exhausted",
        ))
    return SynthesisResult(
        program=best_box["program"],
        initial_program=initial.initial_program,
        spec_name=initial.spec_name,
        components=initial.components,
        examples_used=len(examples),
        initial_time=initial.initial_time,
        total_time=initial.total_time + (time.perf_counter() - start),
        initial_cost=initial.initial_cost,
        final_cost=best_box["cost"],
        proof_complete=outcome.status == "exhausted",
        nodes=initial.nodes + outcome.nodes,
        examples=examples,
        search_stats=stats.merge(initial.search_stats),
    )


def synthesize(
    spec: Spec, sketch: Sketch, config: SynthesisConfig | None = None
) -> SynthesisResult:
    """Compile a specification to a verified, optimized Quill kernel.

    With ``workers > 1`` one parallel driver (and its forked worker pool)
    serves both phases.
    """
    config = config or SynthesisConfig()
    driver = None
    if config.workers > 1 and config.shard is None:
        driver = ParallelSynthesis(
            config.workers,
            options=config.search_options or SearchOptions(),
            incremental=config.incremental,
        )
    try:
        result = synthesize_initial(spec, sketch, config, driver=driver)
        if config.optimize:
            result = minimize_cost(spec, sketch, result, config, driver=driver)
    finally:
        if driver is not None:
            driver.close()
    return result
