"""Porcupine's synthesis engine: the CEGIS loop of Algorithm 1.

Phase 1 (*synthesize an initial solution*): starting from the smallest
sketch size, complete the sketch against a set of concrete input-output
examples; verify candidates exactly against the specification; on
verification failure, extract a counterexample, add it to the example set
and retry.  Exhausting a size proves no L-component program exists for it,
so L is incremented — the first verified solution therefore uses the
minimum number of components.

Phase 2 (*cost minimization*): keep searching the same sketch size for
verified programs with strictly lower cost ``latency * (1 + mdepth)``,
with branch-and-bound pruning, until the space is exhausted (optimality
proof, like the paper's re-issued synthesis queries with cost constraints)
or a timeout fires (the paper times out after 20 minutes of no progress
and returns the best solution found).

The loop is *incremental* (``SynthesisConfig(incremental=True)``, the
default): one :class:`~repro.solver.engine.SketchSearch` persists across
rounds.  A counterexample is appended to the live value store as a single
evaluated column, a resumed round skips every root branch the failed
round exhausted without a match (example sets only grow, so a matchless
branch stays matchless), a length increment seeds the deeper search from
the exhausted frontier, and phase 2 inherits phase 1's search state
outright.  Reuse never changes the synthesized program — the resumed
enumeration visits exactly the candidates a from-scratch enumeration
would still accept — so ``incremental=False`` exists purely as the
benchmark baseline.

Both phases run the search either in-process (``workers=1``) or through
:class:`~repro.core.parallel.ParallelSynthesis` (``workers>1``), a
work-stealing pool with mid-round counterexample-frontier and cost-bound
broadcast.  The merged candidate stream is replayed in canonical
enumeration order, so the synthesized program is bit-identical either
way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.parallel import ParallelSynthesis
from repro.core.sketch import Sketch
from repro.quill.cost import program_cost
from repro.quill.ir import Program
from repro.quill.latency import LatencyModel, default_latency_model
from repro.quill.parser import parse_program
from repro.solver.engine import (
    SearchOptions,
    SearchStats,
    SketchSearch,
    materialize_assignment,
)
from repro.spec.reference import Example, Spec


class SynthesisError(Exception):
    """Raised when no verified kernel can be synthesized."""


@dataclass
class SynthesisConfig:
    """Tunables for one synthesis run (paper section 7.1 methodology)."""

    min_components: int = 1
    max_components: int = 8
    seed: int = 0
    seed_examples: int = 1
    initial_timeout: float = 900.0
    optimize_timeout: float = 120.0
    optimize: bool = True
    latency_model: LatencyModel | None = None
    workers: int = 1  # search processes; results are identical for any value
    #: pruning/evaluation toggles threaded to the engine (None = defaults)
    search_options: SearchOptions | None = None
    #: cross-round frontier reuse; False re-enumerates every round from
    #: scratch (the ablation baseline — results are bit-identical)
    incremental: bool = True


@dataclass
class SynthesisResult:
    """A synthesized kernel plus the statistics Table 3 reports."""

    program: Program
    initial_program: Program
    spec_name: str
    components: int
    examples_used: int
    initial_time: float
    total_time: float
    initial_cost: float
    final_cost: float
    proof_complete: bool
    nodes: int
    examples: list[Example] = field(repr=False, default_factory=list)
    search_stats: SearchStats | None = field(repr=False, default=None)
    #: phase 1's live search state, handed to minimize_cost for reuse
    #: (serial incremental runs only; never serialized)
    search: SketchSearch | None = field(repr=False, default=None, compare=False)


def seed_examples(
    spec: Spec,
    config: SynthesisConfig,
    rng: np.random.Generator | None = None,
) -> list[Example]:
    """The initial example set, drawn deterministically from ``config.seed``.

    Every random draw in a synthesis run — seed examples here and
    counterexample fill-in values in :meth:`Spec.example_from_witness` —
    flows from one generator seeded by ``config.seed``, so equal configs
    reproduce equal runs and compile-cache keys stay stable.
    """
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    return [spec.make_example(rng) for _ in range(config.seed_examples)]


def synthesize_initial(
    spec: Spec,
    sketch: Sketch,
    config: SynthesisConfig | None = None,
    *,
    driver: ParallelSynthesis | None = None,
) -> SynthesisResult:
    """Phase 1 of Algorithm 1: the smallest verified completion of the sketch.

    Returns a result whose final program *is* the initial program; run
    :func:`minimize_cost` on it for the paper's phase-2 cost search.
    ``driver`` shares one parallel worker pool across phases (created on
    demand from ``config.workers`` when omitted).
    """
    config = config or SynthesisConfig()
    model = config.latency_model or default_latency_model(spec.params_name)
    options = config.search_options or SearchOptions()
    rng = np.random.default_rng(config.seed)
    examples = seed_examples(spec, config, rng)

    start = time.perf_counter()
    deadline = start + config.initial_timeout
    stats = SearchStats()
    initial_program: Program | None = None
    components_used = 0
    own_driver = driver is None and config.workers > 1
    if own_driver:
        driver = ParallelSynthesis(
            config.workers, options=options, incremental=config.incremental
        )

    def fail_timeout(length: int) -> SynthesisError:
        return SynthesisError(
            f"{spec.name}: initial synthesis timed out at "
            f"{length} components after "
            f"{time.perf_counter() - start:.1f}s ({stats.nodes} nodes)"
        )

    search: SketchSearch | None = None
    try:
        for length in range(config.min_components, config.max_components + 1):
            found_at_this_length = False
            resume_rank = 0  # cross-round frontier within this length
            while True:  # counterexample loop at this sketch size
                if driver is not None:
                    outcome, text = driver.find_first(
                        sketch,
                        spec.layout,
                        examples,
                        model,
                        length,
                        deadline=deadline,
                        name=f"{spec.name}_synth",
                        start_rank=resume_rank,
                    )
                    stats.record(outcome)
                    if text is not None:
                        program = parse_program(text)
                        verdict = spec.verify_program(program)
                        if verdict.equivalent:
                            initial_program = program
                            components_used = length
                            found_at_this_length = True
                            break
                        if (
                            config.incremental
                            and length >= 2
                            and driver.last_match_rank >= 0
                        ):
                            # every branch below the failed match is
                            # exhausted and matchless; adding an example
                            # can only shrink the match set, so the next
                            # round resumes at the match branch
                            resume_rank = driver.last_match_rank
                        examples.append(
                            spec.example_from_witness(
                                verdict.counterexample, rng
                            )
                        )
                        continue
                    if outcome.status == "timeout":
                        raise fail_timeout(length)
                    break  # exhausted: no program of this size exists
                if search is None or not config.incremental:
                    search = SketchSearch(
                        sketch, spec.layout, examples, model, length,
                        options=options,
                    )
                elif search.length != length:
                    search.set_length(length)
                state: dict = {}

                def on_candidate(assignment):
                    program = materialize_assignment(
                        sketch,
                        spec.layout,
                        assignment,
                        name=f"{spec.name}_synth",
                    )
                    verdict = spec.verify_program(program)
                    if verdict.equivalent:
                        state["program"] = program
                    else:
                        state["witness"] = verdict.counterexample
                    return True, None  # stop either way: accept or add example

                outcome = search.run(
                    on_candidate, deadline=deadline, start_rank=resume_rank
                )
                stats.record(outcome)
                if "program" in state:
                    initial_program = state["program"]
                    components_used = length
                    found_at_this_length = True
                    break
                if "witness" in state:
                    example = spec.example_from_witness(state["witness"], rng)
                    examples.append(example)
                    if config.incremental:
                        if length >= 2 and search.current_root_rank >= 0:
                            resume_rank = search.current_root_rank
                        search.extend_examples([example])
                    continue
                if outcome.status == "timeout":
                    raise fail_timeout(length)
                break  # exhausted: no program of this size exists
            if found_at_this_length:
                break
    finally:
        if own_driver:
            driver.close()
    if initial_program is None:
        raise SynthesisError(
            f"{spec.name}: sketch has no solution with up to "
            f"{config.max_components} components"
        )

    initial_time = time.perf_counter() - start
    initial_cost = program_cost(initial_program, model)

    return SynthesisResult(
        program=initial_program,
        initial_program=initial_program,
        spec_name=spec.name,
        components=components_used,
        examples_used=len(examples),
        initial_time=initial_time,
        total_time=initial_time,
        initial_cost=initial_cost,
        final_cost=initial_cost,
        proof_complete=True,
        nodes=stats.nodes,
        examples=examples,
        search_stats=stats,
        search=search if config.incremental else None,
    )


def minimize_cost(
    spec: Spec,
    sketch: Sketch,
    initial: SynthesisResult,
    config: SynthesisConfig | None = None,
    *,
    driver: ParallelSynthesis | None = None,
) -> SynthesisResult:
    """Phase 2 of Algorithm 1: branch-and-bound cost minimization.

    Keeps searching ``initial``'s sketch size for verified programs with
    strictly lower cost, reusing its example set — and, for serial
    incremental runs, its live search state — until the space is
    exhausted (optimality proof) or ``config.optimize_timeout`` fires.
    """
    config = config or SynthesisConfig()
    model = config.latency_model or default_latency_model(spec.params_name)
    options = config.search_options or SearchOptions()
    start = time.perf_counter()
    optimize_deadline = start + config.optimize_timeout
    examples = list(initial.examples)
    best_box = {"program": initial.program, "cost": initial.final_cost}
    stats = SearchStats()

    if config.workers > 1 and initial.components > 1:
        own_driver = driver is None
        if own_driver:
            driver = ParallelSynthesis(
                config.workers,
                options=options,
                incremental=config.incremental,
            )
        try:
            outcome, best_text, best_cost = driver.minimize(
                sketch,
                spec.layout,
                examples,
                model,
                initial.components,
                cost_bound=best_box["cost"],
                verify=lambda text: spec.verify_program(
                    parse_program(text)
                ).equivalent,
                deadline=optimize_deadline,
                name=f"{spec.name}_synth",
            )
        finally:
            if own_driver:
                driver.close()
        stats.record(outcome)
        if best_text is not None:
            best_box["program"] = parse_program(best_text)
            best_box["cost"] = best_cost
    else:
        search = None
        carried = initial.search
        if (
            config.incremental
            and carried is not None
            and carried.sketch is sketch
            and carried.length == initial.components
            and len(carried.examples) == len(examples)
            and carried.options == options
            and carried.latency_model.table == model.table
        ):
            search = carried  # phase 1's frontier, store, and caches
        if search is None:
            search = SketchSearch(
                sketch, spec.layout, examples, model, initial.components,
                options=options,
            )

        def on_better(assignment):
            program = materialize_assignment(
                sketch, spec.layout, assignment, name=f"{spec.name}_synth"
            )
            cost = program_cost(program, model)
            if cost >= best_box["cost"]:
                return False, None
            if spec.verify_program(program).equivalent:
                best_box["program"] = program
                best_box["cost"] = cost
                return False, cost
            return False, None  # matches examples but not the spec

        outcome = search.run(
            on_better, cost_bound=best_box["cost"], deadline=optimize_deadline
        )
        stats.record(outcome)
    return SynthesisResult(
        program=best_box["program"],
        initial_program=initial.initial_program,
        spec_name=initial.spec_name,
        components=initial.components,
        examples_used=len(examples),
        initial_time=initial.initial_time,
        total_time=initial.total_time + (time.perf_counter() - start),
        initial_cost=initial.initial_cost,
        final_cost=best_box["cost"],
        proof_complete=outcome.status == "exhausted",
        nodes=initial.nodes + outcome.nodes,
        examples=examples,
        search_stats=stats.merge(initial.search_stats),
    )


def synthesize(
    spec: Spec, sketch: Sketch, config: SynthesisConfig | None = None
) -> SynthesisResult:
    """Compile a specification to a verified, optimized Quill kernel.

    With ``workers > 1`` one parallel driver (and its forked worker pool)
    serves both phases.
    """
    config = config or SynthesisConfig()
    driver = None
    if config.workers > 1:
        driver = ParallelSynthesis(
            config.workers,
            options=config.search_options or SearchOptions(),
            incremental=config.incremental,
        )
    try:
        result = synthesize_initial(spec, sketch, config, driver=driver)
        if config.optimize:
            result = minimize_cost(spec, sketch, result, config, driver=driver)
    finally:
        if driver is not None:
            driver.close()
    return result
