"""Automatic sketch extraction from a reference implementation.

The paper notes that "the arithmetic instructions can be extracted from
the specification" (section 4.4): the component menu of a sketch is the
multiset of arithmetic operations the plaintext reference performs.  This
module automates that step by *tracing* the reference — executing it on
proxy values whose operator overloads record every ``+ - *`` together
with the HE kind of each operand (ciphertext data, symbolic plaintext
input, or compile-time constant).

Extraction rules mirror how a Porcupine user writes sketches:

* ct (op) ct            -> ciphertext-ciphertext component
* ct (op) plaintext     -> ciphertext-plaintext component (``$input``)
* ct * (+/-k)           -> |k| == 1 folds away (negation becomes a
  subtract component); |k| > 1 becomes ``mul-ct-pt`` with a broadcast
  constant — tracing Gx recovers exactly the paper's example sketch
  (add, subtract, multiply-by-2)
* const (op) const      -> folded at compile time, no component

The user still supplies the rotation restriction (section 6.1) — layouts
do not determine window shapes.  Output hygiene, e.g. L2's masked output,
is invisible to tracing (it is a property of the layout, not of the
arithmetic), so extracted sketches are a *starting point* the user may
refine, which is the paper's workflow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sketch import ComponentChoice, CtHole, CtRotHole, Sketch
from repro.quill.ir import Opcode, PtConst, PtInput
from repro.spec.reference import Spec


class ExtractionError(Exception):
    """Raised when the reference performs HE-inexpressible arithmetic."""


@dataclass
class _Recorder:
    """Shared log of traced operations."""

    cc_ops: set[Opcode]
    constants: set[int]  # |k| > 1 multiplier constants
    pt_ops: set[tuple[Opcode, str]]  # ciphertext-plaintext ops by input name
    additive_constants: set[tuple[Opcode, int]]  # ct +/- k components
    needs_sub: bool = False


class _Traced:
    """A proxy value whose arithmetic is recorded instead of computed."""

    __slots__ = ("kind", "name", "const", "recorder")

    def __init__(self, kind, recorder, name=None, const=None):
        self.kind = kind  # "ct" | "pt" | "const"
        self.recorder = recorder
        self.name = name  # plaintext input name, when kind == "pt"
        self.const = const  # value, when kind == "const"

    # -- helpers -----------------------------------------------------------

    def _coerce(self, other) -> "_Traced":
        if isinstance(other, _Traced):
            return other
        if isinstance(other, (int, np.integer)):
            return _Traced("const", self.recorder, const=int(other))
        raise ExtractionError(f"cannot trace operand {other!r}")

    def _record_mul_const(self, value: int) -> None:
        if value < 0:
            self.recorder.needs_sub = True
            value = -value
        if value > 1:
            self.recorder.constants.add(value)
            self.recorder.cc_ops.add(Opcode.MUL_CP)

    def _combine(self, other, op: str, reverse=False) -> "_Traced":
        other = self._coerce(other)
        left, right = (other, self) if reverse else (self, other)
        rec = self.recorder
        kinds = (left.kind, right.kind)
        if kinds == ("const", "const"):
            value = {
                "add": left.const + right.const,
                "sub": left.const - right.const,
                "mul": left.const * right.const,
            }[op]
            return _Traced("const", rec, const=value)
        if "ct" in kinds:
            other_kind = kinds[1] if kinds[0] == "ct" else kinds[0]
            if other_kind == "ct":
                rec.cc_ops.add(
                    {"add": Opcode.ADD_CC, "sub": Opcode.SUB_CC,
                     "mul": Opcode.MUL_CC}[op]
                )
            elif other_kind == "pt":
                pt = left if left.kind == "pt" else right
                rec.pt_ops.add(
                    ({"add": Opcode.ADD_CP, "sub": Opcode.SUB_CP,
                      "mul": Opcode.MUL_CP}[op], pt.name)
                )
            else:  # constant operand
                const = left if left.kind == "const" else right
                if op == "mul":
                    self._record_mul_const(const.const)
                elif const.const != 0:
                    # additive constants become add/sub-plain components
                    rec.additive_constants.add(
                        (
                            Opcode.ADD_CP if op == "add" else Opcode.SUB_CP,
                            const.const,
                        )
                    )
                if op == "sub" and left.kind == "const":
                    rec.needs_sub = True
            return _Traced("ct", rec)
        # plaintext-only arithmetic cannot be named as an HE operand
        if "pt" in kinds:
            raise ExtractionError(
                "reference derives new plaintext values from plaintext "
                "inputs; precompute them as separate inputs instead"
            )
        raise ExtractionError(f"untraceable combination {kinds}")

    # -- operator protocol ---------------------------------------------------

    def __add__(self, other):
        return self._combine(other, "add")

    def __radd__(self, other):
        return self._combine(other, "add", reverse=True)

    def __sub__(self, other):
        return self._combine(other, "sub")

    def __rsub__(self, other):
        return self._combine(other, "sub", reverse=True)

    def __mul__(self, other):
        return self._combine(other, "mul")

    def __rmul__(self, other):
        return self._combine(other, "mul", reverse=True)

    def __pow__(self, exponent):
        if not isinstance(exponent, int) or exponent < 1:
            raise ExtractionError("only positive integer powers trace")
        result = self
        for _ in range(exponent - 1):
            result = result * self
        return result

    def __neg__(self):
        self.recorder.needs_sub = True
        return _Traced(self.kind, self.recorder, self.name, self.const)


_CONSTANT_NAMES = {2: "two", 3: "three", 4: "four", 16: "sixteen"}


def extract_sketch(
    spec: Spec,
    rotations: tuple[int, ...],
    rotate_operands: bool = True,
) -> Sketch:
    """Trace the reference implementation and build its sketch.

    Args:
        spec: the kernel specification to trace.
        rotations: the rotation restriction (user-supplied, section 6.1).
        rotate_operands: when true, ciphertext-ciphertext additions and
            subtractions get ``??ct-r`` operand holes; multiplications
            keep plain holes (squares never need realignment in the
            paper's kernels).
    """
    recorder = _Recorder(
        cc_ops=set(), constants=set(), pt_ops=set(), additive_constants=set()
    )
    env = {}
    for packed in spec.layout.inputs:
        kind = "ct" if packed.kind == "ct" else "pt"
        flat = [
            _Traced(kind, recorder, name=packed.name)
            for _ in range(packed.size)
        ]
        env[packed.name] = np.array(flat, dtype=object).reshape(packed.shape)
    spec.reference(**env)

    if recorder.needs_sub:
        recorder.cc_ops.add(Opcode.SUB_CC)

    hole = CtRotHole() if (rotate_operands and rotations) else CtHole()
    choices: list[ComponentChoice] = []
    for opcode in (Opcode.ADD_CC, Opcode.SUB_CC, Opcode.MUL_CC):
        if opcode in recorder.cc_ops:
            operand = CtHole() if opcode is Opcode.MUL_CC else hole
            choices.append(ComponentChoice(opcode, operand, operand))
    constants: dict[str, int] = {}
    for value in sorted(recorder.constants):
        name = _CONSTANT_NAMES.get(value, f"k{value}")
        constants[name] = value
        choices.append(
            ComponentChoice(Opcode.MUL_CP, CtHole(), PtConst(name))
        )
    for opcode, value in sorted(
        recorder.additive_constants, key=lambda p: (p[0].value, p[1])
    ):
        name = _CONSTANT_NAMES.get(value, f"k{value}")
        if name not in constants:
            constants[name] = value
        choices.append(ComponentChoice(opcode, CtHole(), PtConst(name)))
    for opcode, input_name in sorted(
        recorder.pt_ops, key=lambda p: (p[0].value, p[1])
    ):
        choices.append(
            ComponentChoice(opcode, CtHole(), PtInput(input_name))
        )
    if not choices:
        raise ExtractionError("reference performs no traceable arithmetic")
    return Sketch(
        name=f"{spec.name}-extracted",
        choices=tuple(choices),
        rotations=tuple(rotations),
        constants=constants,
    )
