"""Crash-safe CEGIS checkpoints: kill a synthesis run, resume it, get
the byte-identical program.

A long synthesis run (minutes of phase-1 search plus a phase-2
optimality proof) holds all of its progress in memory; a crash loses
hours.  This module serializes the run's *logical* state — the example
set, the counterexample rng stream, the current sketch size, the
cross-round resume rank, and the best verified program so far — to an
atomic on-disk JSON file at every round boundary, so a killed run
restarts from its last boundary instead of from scratch.

Byte-identical resume
---------------------

The checkpoint intentionally does **not** serialize engine internals
(value stores, frontiers, caches).  It relies on the incremental-search
contract established in earlier work: a fresh
:class:`~repro.solver.engine.SketchSearch` built from the full example
set, run with ``start_rank=resume_rank``, accepts exactly the candidates
the interrupted incremental search would still have accepted.  Round
boundaries are deterministic given ``(examples, length, start_rank)``
and every random draw flows from the checkpointed generator state, so a
resumed phase 1 replays the interrupted run candidate-for-candidate.
Phase 2 needs even less: verified accepted programs form a strictly
cost-decreasing sequence in canonical enumeration order, so restarting
the branch-and-bound from the checkpointed ``(best program, bound)``
yields the same final program as an uninterrupted proof.

Staleness
---------

A checkpoint is only resumable for the *same* search: the file carries a
content key over the spec, sketch, and synthesis config fingerprints
(the compile cache's own identity functions, minus fields that cannot
change results).  A key mismatch means the checkpoint is stale and is
silently ignored — resuming against edited specs must never replay the
wrong search.

The ``PORCUPINE_CHECKPOINT_CRASH_AFTER`` environment variable (set to
``n``) hard-kills the process (``os._exit(137)``) immediately after the
``n``-th successful checkpoint write — the deterministic "power cut" the
kill-and-resume regression tests are built on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.spec.reference import Example

#: bump when the checkpoint layout changes (old files become stale)
CHECKPOINT_FORMAT = 2  # 2: shard descriptors (shard_index/shard_count)


# -- example / rng (de)serialization ----------------------------------------


def example_to_json(example: Example) -> dict:
    """One example as JSON-safe nested integer lists."""

    def env(mapping: dict) -> dict:
        return {
            name: {
                "shape": list(np.asarray(value).shape),
                "data": np.asarray(value).ravel().tolist(),
            }
            for name, value in mapping.items()
        }

    goal = np.asarray(example.goal)
    return {
        "ct_env": env(example.ct_env),
        "pt_env": env(example.pt_env),
        "goal": {"shape": list(goal.shape), "data": goal.ravel().tolist()},
    }


def example_from_json(payload: dict) -> Example:
    def env(mapping: dict) -> dict:
        return {
            name: np.asarray(value["data"], dtype=np.int64).reshape(
                value["shape"]
            )
            for name, value in mapping.items()
        }

    goal = payload["goal"]
    return Example(
        ct_env=env(payload["ct_env"]),
        pt_env=env(payload["pt_env"]),
        goal=np.asarray(goal["data"], dtype=np.int64).reshape(goal["shape"]),
    )


def rng_state(rng: np.random.Generator) -> dict:
    """The generator's full state (JSON-safe: plain ints and strings)."""
    return rng.bit_generator.state


def restore_rng(rng: np.random.Generator, state: dict) -> None:
    rng.bit_generator.state = state


# -- the checkpoint itself ---------------------------------------------------


@dataclass
class CheckpointState:
    """Everything a resumed run needs, one phase tag at a time.

    ``phase`` progresses ``initial`` → ``optimize`` → ``done``; each
    phase reads only the fields its resume path needs.
    """

    phase: str = "initial"
    # phase-1 frontier: resume the counterexample loop here
    length: int | None = None
    resume_rank: int = 0
    examples: list[Example] = field(default_factory=list)
    rng: dict | None = None
    # phase-1 outcome (set once phase >= optimize)
    components: int = 0
    initial_text: str | None = None
    initial_cost: float | None = None
    # phase-2 frontier / outcome
    best_text: str | None = None
    best_cost: float | None = None
    proof_complete: bool = False
    # the shard descriptor of the run that wrote this checkpoint (None
    # for non-shard runs); also part of the content key, so a shard
    # never resumes from a sibling's file
    shard_index: int | None = None
    shard_count: int | None = None

    def to_json(self) -> dict:
        return {
            "phase": self.phase,
            "length": self.length,
            "resume_rank": self.resume_rank,
            "examples": [example_to_json(e) for e in self.examples],
            "rng": self.rng,
            "components": self.components,
            "initial_text": self.initial_text,
            "initial_cost": self.initial_cost,
            "best_text": self.best_text,
            "best_cost": self.best_cost,
            "proof_complete": self.proof_complete,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CheckpointState":
        return cls(
            phase=str(payload["phase"]),
            length=payload.get("length"),
            resume_rank=int(payload.get("resume_rank", 0)),
            examples=[
                example_from_json(e) for e in payload.get("examples", [])
            ],
            rng=payload.get("rng"),
            components=int(payload.get("components", 0)),
            initial_text=payload.get("initial_text"),
            initial_cost=payload.get("initial_cost"),
            best_text=payload.get("best_text"),
            best_cost=payload.get("best_cost"),
            proof_complete=bool(payload.get("proof_complete", False)),
            shard_index=payload.get("shard_index"),
            shard_count=payload.get("shard_count"),
        )


def checkpoint_key(spec, sketch, config) -> str:
    """Content identity of one synthesis run (spec + sketch + config).

    Reuses the compile cache's fingerprint functions (imported lazily:
    :mod:`repro.api.cache` imports this package's CEGIS loop, so a
    module-level import would be circular).
    """
    import hashlib

    from repro.api.cache import (
        config_fingerprint,
        sketch_fingerprint,
        spec_fingerprint,
    )

    payload = {
        "format": CHECKPOINT_FORMAT,
        "spec": spec_fingerprint(spec),
        "sketch": sketch_fingerprint(sketch),
        "config": config_fingerprint(config),
        # the shard descriptor is excluded from the compile-cache
        # fingerprint (it cannot change the merged result) but is part
        # of *checkpoint* identity: shard 1 of 4 must never resume from
        # shard 0's file
        "shard": list(config.shard) if getattr(config, "shard", None) else None,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class SynthesisCheckpoint:
    """Atomic on-disk checkpoint for one (spec, sketch, config) run."""

    def __init__(self, path: str | Path, key: str):
        self.path = Path(path)
        self.key = key
        self.saves = 0  # successful writes this process

    @classmethod
    def for_run(
        cls, path: str | Path, spec, sketch, config
    ) -> "SynthesisCheckpoint":
        return cls(path, checkpoint_key(spec, sketch, config))

    def load(self) -> CheckpointState | None:
        """The resumable state, or None (missing, stale, or corrupt).

        A half-written file cannot occur (writes are atomic), but a
        *foreign* or truncated-by-the-operator file can; any parse
        problem degrades to a from-scratch run rather than an error.
        """
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("key") != self.key:
            return None  # stale: different spec/sketch/config
        try:
            return CheckpointState.from_json(payload.get("state", {}))
        except (KeyError, TypeError, ValueError):
            return None

    def save(self, state: CheckpointState) -> None:
        """Atomically persist ``state`` (temp file + ``os.replace``)."""
        payload = {
            "format": CHECKPOINT_FORMAT,
            "key": self.key,
            "state": state.to_json(),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, separators=(",", ":")))
        os.replace(tmp, self.path)
        self.saves += 1
        crash_after = os.environ.get("PORCUPINE_CHECKPOINT_CRASH_AFTER")
        if crash_after is not None and self.saves == int(crash_after):
            # the deterministic power cut: no cleanup, no atexit, no
            # flushing — exactly what SIGKILL at this instant looks like
            os._exit(137)

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass
