"""Sketches: HE-kernel templates with holes (paper section 4.4).

A sketch lists the *components* (arithmetic instructions with operand
holes) that the synthesizer may instantiate, plus the set of legal
rotation amounts.  Porcupine's signature design is the *local rotate*:
rotation is an operand modifier of arithmetic instructions (``??ct-r``
holes) rather than a free-standing component, which shrinks the program
space without losing solutions (rotations are only useful when an
arithmetic instruction needs realigned operands).

The ``explicit`` style (rotations as standalone components with their own
amount holes) is also implemented for the paper's section 7.4 ablation.

Hole kinds:

* ``CtHole``        — any already-available ciphertext (``??ct``).
* ``CtRotHole``     — an available ciphertext, optionally rotated by one
  of the sketch's legal amounts (``??ct-r``; includes "not rotated").
* plaintext operand — a *named* plaintext input or constant; plaintext
  operands are never holes in the paper's sketches and are fixed here too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.quill.ir import Opcode, PtConst, PtInput


@dataclass(frozen=True)
class CtHole:
    """``??ct``: choose any previously available ciphertext."""

    def __str__(self) -> str:
        return "??ct"


@dataclass(frozen=True)
class CtRotHole:
    """``??ct-r``: choose a ciphertext and a rotation (or none)."""

    def __str__(self) -> str:
        return "??ct-r"


OperandHole = CtHole | CtRotHole


@dataclass(frozen=True)
class ComponentChoice:
    """One entry of the sketch's component menu.

    For ciphertext-ciphertext opcodes both operands are holes.  For
    ciphertext-plaintext opcodes the second operand names a plaintext
    input (``PtInput``) or constant (``PtConst``).  ``max_uses`` bounds
    how many slots may pick this choice (the paper treats the component
    list as a multiset extracted from the reference implementation).
    """

    opcode: Opcode
    operand1: OperandHole
    operand2: OperandHole | PtInput | PtConst
    max_uses: int | None = None

    def __post_init__(self):
        if self.opcode is Opcode.ROTATE:
            raise ValueError(
                "rotations are not sketch components in local-rotate "
                "sketches; use CtRotHole operands (or RotationChoice for "
                "explicit sketches)"
            )
        if self.opcode.has_plain_operand:
            if not isinstance(self.operand2, (PtInput, PtConst)):
                raise ValueError(
                    f"{self.opcode.value} needs a named plaintext operand"
                )
        elif not isinstance(self.operand2, (CtHole, CtRotHole)):
            raise ValueError(
                f"{self.opcode.value} needs a ciphertext operand hole"
            )

    def __str__(self) -> str:
        return f"{self.opcode.value} ({self.operand1}) ({self.operand2})"


@dataclass(frozen=True)
class RotationChoice:
    """Explicit-rotation-sketch component: ``rot (??ct) ??r``."""

    max_uses: int | None = None

    def __str__(self) -> str:
        return "rot (??ct) ??r"


@dataclass(frozen=True)
class Sketch:
    """A kernel template: component menu + rotation restriction.

    Attributes:
        name: sketch identifier (usually the kernel name).
        choices: the component menu; each program slot picks one choice
            (subject to ``max_uses``) and the engine fills its holes.
        rotations: legal nonzero rotation amounts (signed; the "no
            rotation" option is always available for ``??ct-r`` holes).
        constants: named plaintext constant vectors/scalars used by
            ciphertext-plaintext components.
        style: ``"local-rotate"`` (default) or ``"explicit"`` (rotations
            as standalone components, for the section 7.4 comparison).
    """

    name: str
    choices: tuple[ComponentChoice | RotationChoice, ...]
    rotations: tuple[int, ...]
    constants: dict[str, tuple[int, ...] | int] = field(default_factory=dict)
    style: str = "local-rotate"

    def __post_init__(self):
        if self.style not in ("local-rotate", "explicit"):
            raise ValueError(f"unknown sketch style {self.style!r}")
        if 0 in self.rotations:
            raise ValueError("rotation sets list nonzero amounts only")
        if len(set(self.rotations)) != len(self.rotations):
            raise ValueError("duplicate rotation amounts")
        for choice in self.choices:
            if isinstance(choice, RotationChoice):
                if self.style != "explicit":
                    raise ValueError(
                        "RotationChoice requires the explicit sketch style"
                    )
            elif self.style == "explicit":
                if isinstance(choice.operand1, CtRotHole) or isinstance(
                    choice.operand2, CtRotHole
                ):
                    raise ValueError(
                        "explicit sketches use plain ??ct operand holes"
                    )
            if isinstance(choice, ComponentChoice) and isinstance(
                choice.operand2, PtConst
            ):
                if choice.operand2.name not in self.constants:
                    raise ValueError(
                        f"sketch constant {choice.operand2.name!r} undefined"
                    )

    def describe(self) -> str:
        lines = [f"sketch {self.name} ({self.style})"]
        lines.append(
            "rotations: {" + ", ".join(str(r) for r in self.rotations) + "}"
        )
        for choice in self.choices:
            uses = (
                ""
                if getattr(choice, "max_uses", None) is None
                else f"  (max {choice.max_uses})"
            )
            lines.append(f"  {choice}{uses}")
        return "\n".join(lines)
