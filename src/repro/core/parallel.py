"""Work-stealing process-parallel sketch search.

The engine's enumeration tree fans out at the root slot into independent
``(component, operand1, rotation1)`` branches ("root ranks", numbered in
canonical enumeration order by :class:`~repro.solver.engine.SketchSearch`).
:class:`ParallelSynthesis` groups those ranks into fine-grained
*contiguous chunks* on a shared queue: each worker loops, atomically
claiming the next unclaimed chunk — work stealing, so a worker that drew
a cheap subtree immediately takes more instead of idling behind a
straggler the way a static partition would.  Three pieces of shared state
are broadcast *mid-round*, not just between rounds:

* the **cost bound** (phase 2): the parent re-verifies candidates in
  canonical order and publishes every tightened verified bound to a
  shared value that running engines poll each batch
  (``run(bound_poll=...)``), so a cheap program found in an early rank
  prunes the subtrees workers are *currently* searching;
* the **match frontier** (phase 1): the lowest example-matching rank seen
  so far; workers skip whole chunks above it, since the round's result is
  decided at or below that rank;
* the **cancel event**: cooperative abandonment of in-flight subtrees
  when the round is decided (``Future.cancel()`` cannot stop a running
  task).

Determinism is preserved exactly as before: the parent consumes chunk
results strictly in chunk order and replays each chunk's candidate
stream with serial semantics, so ``workers=N`` stays bit-identical to
serial.  Mid-round bounds only ever come from parent-verified programs in
already-replayed (lower) chunks — a worker sees a bound no tighter than
the one a serial search would hold at the same point, so workers emit a
superset of the serial candidate stream and the ordered replay filters
it.  The match frontier can only discard chunks strictly above the
deciding rank.  Under deadline pressure the driver reports a timeout
whenever a chunk times out before a decisive lower-rank result (a serial
search would still be inside that subtree at the deadline), so it never
returns a *different* program than serial.

Workers also carry the **cross-round frontier**: each worker process
caches its :class:`SketchSearch` between rounds and, when the next
round's example list extends the cached one (the CEGIS loop only ever
appends counterexamples), appends the new example columns to the live
value store instead of rebuilding and re-evaluating everything
(``extend_examples`` / ``set_length``).  The parent's ``start_rank``
drops chunks for root branches already proven matchless in earlier
rounds.

Workers never tighten bounds on unverified candidates — a cheap
example-matching program can still fail verification, and pruning on its
cost could hide the true optimum.  Verification stays in the parent: a
:class:`~repro.spec.reference.Spec` holds an arbitrary Python reference
implementation (often a lambda) and does not cross process boundaries,
while sketches, layouts, examples, and latency tables are all plain
picklable data; candidates come back as Quill program text.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import queue as queue_lib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.quill.cost import program_cost
from repro.quill.latency import LatencyModel
from repro.quill.printer import format_program
from repro.solver.engine import (
    SearchOptions,
    SearchOutcome,
    SketchSearch,
    materialize_assignment,
)
from repro.spec.layout import Layout
from repro.spec.reference import Example

#: found_rank sentinel: no example match reported yet this round.
_NO_RANK = 2**62

#: target chunks per worker; smaller chunks steal better, larger chunks
#: amortize the per-chunk root-scan overhead
_CHUNKS_PER_WORKER = 8

# Worker-process shared state, installed once by the pool initializer:
# the cancel event, the shared bound/frontier values, the chunk cursor,
# and the result queue (inherited through process creation, the only way
# multiprocessing queues cross the boundary).
_SHARED: dict = {}

# One cached search per driver series, reused across rounds (the CEGIS
# cross-round frontier, worker side).
_SEARCH_CACHE: dict = {}


def _init_worker(cancel, bound, found_rank, chunk_next, results) -> None:
    _SHARED.update(
        cancel=cancel,
        bound=bound,
        found_rank=found_rank,
        chunk_next=chunk_next,
        results=results,
    )


@dataclass(frozen=True)
class ShardTask:
    """One in-process search over a slice of the root slot.

    Retained for the driver's serial fallback (tiny rank universes,
    ``workers=1``) and as the minimal engine-driving harness in tests;
    pool workers run :class:`ChunkTask` rounds instead.
    """

    sketch: object
    layout: Layout
    examples: tuple[Example, ...]
    model: LatencyModel
    length: int
    options: SearchOptions
    ranks: tuple[int, ...] | None  # None = the whole root slot
    mode: str  # "first" | "collect"
    cost_bound: float
    deadline: float | None  # absolute time.perf_counter() deadline
    name: str
    start_rank: int = 0  # cross-round frontier: skip ranks below this


@dataclass(frozen=True)
class ChunkTask:
    """One worker's view of a whole work-stealing round."""

    sketch: object
    layout: Layout
    examples: tuple[Example, ...]
    model: LatencyModel
    length: int
    options: SearchOptions
    mode: str  # "first" | "collect"
    cost_bound: float
    deadline: float | None
    name: str
    chunks: tuple[tuple[int, int], ...]  # contiguous [lo, hi) rank ranges
    generation: int  # round id, echoed on every message
    series: int  # worker-side search-cache key (sketch identity)
    incremental: bool  # cross-round worker search reuse


def _run_shard(task: ShardTask) -> tuple[SearchOutcome, list[tuple]]:
    """Serial entry point: search one rank slice, return candidates as text.

    ``first`` mode stops at the slice's first example-matching candidate
    and reports ``(root_rank, program_text)``.  ``collect`` mode
    enumerates every candidate cheaper than ``cost_bound`` and reports
    ``(root_rank, sequence, cost, program_text)``; the sequence number
    preserves the within-branch enumeration order.
    """
    search = SketchSearch(
        task.sketch,
        task.layout,
        list(task.examples),
        task.model,
        task.length,
        options=task.options,
    )
    found: list[tuple] = []
    if task.mode == "first":

        def on_candidate(assignment):
            program = materialize_assignment(
                task.sketch, task.layout, assignment, name=task.name
            )
            found.append((search.current_root_rank, format_program(program)))
            return True, None

    else:
        sequence = 0

        def on_candidate(assignment):
            nonlocal sequence
            program = materialize_assignment(
                task.sketch, task.layout, assignment, name=task.name
            )
            cost = program_cost(program, task.model)
            if cost < task.cost_bound:
                found.append(
                    (
                        search.current_root_rank,
                        sequence,
                        cost,
                        format_program(program),
                    )
                )
            sequence += 1
            return False, None

    outcome = search.run(
        on_candidate,
        cost_bound=task.cost_bound,
        deadline=task.deadline,
        root_ranks=frozenset(task.ranks) if task.ranks is not None else None,
        should_stop=(
            _SHARED["cancel"].is_set if _SHARED.get("cancel") is not None
            else None
        ),
        start_rank=task.start_rank,
    )
    return outcome, found


def _examples_extend(search: SketchSearch, examples: tuple) -> bool:
    """True when ``examples`` is a content-equal extension of the search's."""
    if len(search.examples) > len(examples):
        return False
    for mine, theirs in zip(search.examples, examples):
        if not np.array_equal(mine.goal, theirs.goal):
            return False
        for attr in ("ct_env", "pt_env"):
            a, b = getattr(mine, attr), getattr(theirs, attr)
            if a.keys() != b.keys():
                return False
            for key in a:
                if not np.array_equal(a[key], b[key]):
                    return False
    return True


def _obtain_search(task: ChunkTask) -> SketchSearch:
    """The worker's search for this round: cached + extended, or fresh."""
    if task.incremental:
        cached = _SEARCH_CACHE.get(task.series)
        if (
            cached is not None
            and cached.options == task.options
            and cached.sketch == task.sketch
            and cached.latency_model.table == task.model.table
            and _examples_extend(cached, task.examples)
        ):
            if cached.length != task.length:
                cached.set_length(task.length)
            if len(cached.examples) < len(task.examples):
                cached.extend_examples(
                    list(task.examples[len(cached.examples):])
                )
            return cached
    search = SketchSearch(
        task.sketch,
        task.layout,
        list(task.examples),
        task.model,
        task.length,
        options=task.options,
    )
    if task.incremental:
        _SEARCH_CACHE.clear()  # one live series per worker
        _SEARCH_CACHE[task.series] = search
    return search


def _worker_round(task: ChunkTask) -> dict:
    """Pool entry point: steal chunks until the queue (or round) is done."""
    shared = _SHARED
    search = _obtain_search(task)
    grabbed = 0
    while True:
        if shared["cancel"].is_set():
            break
        with shared["chunk_next"].get_lock():
            index = shared["chunk_next"].value
            shared["chunk_next"].value = index + 1
        if index >= len(task.chunks):
            break
        grabbed += 1
        lo, hi = task.chunks[index]
        if task.mode == "first" and lo > shared["found_rank"].value:
            # mid-round frontier broadcast: the round is decided at or
            # below found_rank, so this whole chunk is moot
            shared["results"].put((task.generation, index, os.getpid(), None, []))
            continue
        found: list[tuple] = []
        if task.mode == "first":

            def on_candidate(assignment, search=search, found=found):
                program = materialize_assignment(
                    task.sketch, task.layout, assignment, name=task.name
                )
                found.append(
                    (search.current_root_rank, format_program(program))
                )
                return True, None

            cost_bound = float("inf")
            bound_poll = None
        else:
            sequence = 0

            def on_candidate(assignment, search=search, found=found):
                nonlocal sequence
                program = materialize_assignment(
                    task.sketch, task.layout, assignment, name=task.name
                )
                cost = program_cost(program, task.model)
                # the shared bound only ever holds parent-verified costs
                # from fully-replayed lower chunks, so this filter is a
                # subset of what the ordered replay would drop anyway
                if cost < shared["bound"].value:
                    found.append(
                        (
                            search.current_root_rank,
                            sequence,
                            cost,
                            format_program(program),
                        )
                    )
                sequence += 1
                return False, None

            cost_bound = shared["bound"].value
            bound_poll = lambda: shared["bound"].value  # noqa: E731

        outcome = search.run(
            on_candidate,
            cost_bound=cost_bound,
            deadline=task.deadline,
            root_ranks=frozenset(range(lo, hi)),
            should_stop=shared["cancel"].is_set,
            bound_poll=bound_poll,
        )
        if task.mode == "first" and found:
            rank = found[0][0]
            with shared["found_rank"].get_lock():
                if rank < shared["found_rank"].value:
                    shared["found_rank"].value = rank
        shared["results"].put(
            (task.generation, index, os.getpid(), outcome, found)
        )
    return {"worker": os.getpid(), "chunks": grabbed}


class ParallelSynthesis:
    """A reusable work-stealing pool of search workers with deterministic
    merging.

    One driver serves every round of a CEGIS run (both phases): the pool
    forks once, worker processes keep their search state between rounds,
    and each :meth:`find_first`/:meth:`minimize` call streams chunk
    results in canonical order.  Use as a context manager (or call
    :meth:`close`) to release the pool.
    """

    def __init__(
        self,
        workers: int | None = None,
        options: SearchOptions | None = None,
        incremental: bool = True,
    ):
        self.workers = max(1, workers or os.cpu_count() or 1)
        self.options = options or SearchOptions()
        self.incremental = incremental
        self._pool: ProcessPoolExecutor | None = None
        self._cancel = multiprocessing.Event()
        self._bound = multiprocessing.Value("d", float("inf"))
        self._found_rank = multiprocessing.Value("q", _NO_RANK)
        self._chunk_next = multiprocessing.Value("q", 0)
        self._results: multiprocessing.Queue = multiprocessing.Queue()
        self._generation = 0
        self._rank_counts: dict[tuple[int, int], int] = {}
        self._series_tokens: dict[int, int] = {}
        self._series_next = 0
        self._round_summaries: list[dict] = []
        #: rank of the last find_first example match (cross-round frontier)
        self.last_match_rank = -1

    # -- lifecycle --------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(
                    self._cancel,
                    self._bound,
                    self._found_rank,
                    self._chunk_next,
                    self._results,
                ),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._cancel.set()  # reap in-flight stragglers cooperatively
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelSynthesis":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- rank streaming ---------------------------------------------------

    def rank_count(
        self,
        sketch,
        layout: Layout,
        examples: list[Example],
        model: LatencyModel,
        length: int,
    ) -> int:
        """The root-rank universe size (cached: invariant across rounds)."""
        key = (id(sketch), length)
        total = self._rank_counts.get(key)
        if total is None:
            probe = SketchSearch(
                sketch, layout, examples, model, length, options=self.options
            )
            total = self._rank_counts[key] = probe.root_choice_count()
        return total

    def _series_for(self, sketch) -> int:
        token = self._series_tokens.get(id(sketch))
        if token is None:
            token = self._series_tokens[id(sketch)] = self._series_next
            self._series_next += 1
        return token

    def _chunk_ranges(
        self, start_rank: int, total: int
    ) -> tuple[tuple[int, int], ...]:
        span = total - start_rank
        size = max(1, math.ceil(span / (self.workers * _CHUNKS_PER_WORKER)))
        return tuple(
            (lo, min(lo + size, total))
            for lo in range(start_rank, total, size)
        )

    def _stream_chunks(self, task: ChunkTask):
        """Yield ``(chunk_index, outcome, found)`` strictly in chunk order.

        ``outcome`` is ``None`` for a chunk skipped via the match
        frontier (only ever above the deciding rank).  Closing the
        generator cancels the round: queued chunks are never claimed,
        in-flight engines bail at their next poll, and the result queue
        is drained so the next round starts clean.
        """
        pool = self._ensure_pool()
        self._cancel.clear()
        with self._chunk_next.get_lock():
            self._chunk_next.value = 0
        with self._found_rank.get_lock():
            self._found_rank.value = _NO_RANK
        with self._bound.get_lock():
            self._bound.value = task.cost_bound
        futures = [
            pool.submit(_worker_round, task)
            for _ in range(min(self.workers, len(task.chunks)))
        ]
        buffered: dict[int, tuple] = {}
        next_index = 0
        try:
            while next_index < len(task.chunks):
                try:
                    message = self._results.get(timeout=0.25)
                except queue_lib.Empty:
                    for future in futures:
                        if future.done() and future.exception() is not None:
                            raise future.exception()
                    continue
                generation, index, _worker, outcome, found = message
                if generation != task.generation:
                    continue  # straggler from a cancelled round
                buffered[index] = (outcome, found)
                while next_index in buffered:
                    outcome, found = buffered.pop(next_index)
                    yield next_index, outcome, found
                    next_index += 1
        finally:
            self._cancel.set()
            summaries = []
            straggler = False
            for future in futures:
                try:
                    summaries.append(future.result(timeout=60))
                except Exception:
                    # a worker that raised is done and harmless (stats are
                    # best-effort); one that is *still running* past the
                    # cancel window would share the chunk cursor and the
                    # result queue with the next round — rebuild the pool
                    # so every future round starts from clean workers
                    straggler = straggler or not future.done()
            if straggler and self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            while True:
                try:
                    self._results.get_nowait()
                except queue_lib.Empty:
                    break
            self._round_summaries = summaries

    def _steal_stats(self) -> tuple[int, int]:
        """(chunks grabbed, grabs beyond an even share) for the last round."""
        counts = [s["chunks"] for s in self._round_summaries]
        total = sum(counts)
        if not counts or total == 0:
            return 0, 0
        fair = math.ceil(total / len(counts))
        return total, sum(max(0, count - fair) for count in counts)

    def _merge(
        self,
        outcomes: list[SearchOutcome],
        status: str,
        wall_seconds: float,
        ranks_skipped: int = 0,
    ) -> SearchOutcome:
        chunks, steals = self._steal_stats()
        pruned: dict[str, int] = {}
        for outcome in outcomes:
            for rule, count in outcome.pruned.items():
                pruned[rule] = pruned.get(rule, 0) + count
        return SearchOutcome(
            status=status,
            nodes=sum(o.nodes for o in outcomes),
            candidates=sum(o.candidates for o in outcomes),
            seconds=wall_seconds,
            batches=sum(o.batches for o in outcomes),
            dedup_hits=sum(o.dedup_hits for o in outcomes),
            pruned=pruned,
            reused_values=sum(o.reused_values for o in outcomes),
            appended_columns=sum(o.appended_columns for o in outcomes),
            ranks_skipped=ranks_skipped
            + sum(o.ranks_skipped for o in outcomes),
            shift_cache_peak=max(
                (o.shift_cache_peak for o in outcomes), default=0
            ),
            bound_updates=sum(o.bound_updates for o in outcomes),
            steals=steals,
            chunks=chunks,
            lemma_skips=sum(o.lemma_skips for o in outcomes),
        )

    def _serial_task(
        self, sketch, layout, examples, model, length, mode, bound, deadline,
        name, start_rank,
    ) -> ShardTask:
        return ShardTask(
            sketch=sketch,
            layout=layout,
            examples=tuple(examples),
            model=model,
            length=length,
            options=self.options,
            ranks=None,
            mode=mode,
            cost_bound=bound,
            deadline=deadline,
            name=name,
            start_rank=start_rank,
        )

    def _chunk_task(
        self, sketch, layout, examples, model, length, mode, bound, deadline,
        name, start_rank, total,
    ) -> ChunkTask:
        self._generation += 1
        return ChunkTask(
            sketch=sketch,
            layout=layout,
            examples=tuple(examples),
            model=model,
            length=length,
            options=self.options,
            mode=mode,
            cost_bound=bound,
            deadline=deadline,
            name=name,
            chunks=self._chunk_ranges(start_rank, total),
            generation=self._generation,
            series=self._series_for(sketch),
            incremental=self.incremental,
        )

    # -- search rounds ----------------------------------------------------

    def find_first(
        self,
        sketch,
        layout: Layout,
        examples: list[Example],
        model: LatencyModel,
        length: int,
        *,
        deadline: float | None = None,
        name: str = "synthesized",
        start_rank: int = 0,
    ) -> tuple[SearchOutcome, str | None]:
        """One phase-1 round: the globally-first example-matching program.

        Chunks are consumed in order, so the first chunk that reports a
        match — with every lower chunk already exhausted and match-free —
        holds exactly the candidate a single-process search reaches
        first; chunks above the match frontier are skipped mid-round and
        in-flight subtrees abandoned.  ``start_rank`` resumes a
        counterexample round at the previous match's branch (lower
        branches are proven matchless forever).  Returns the merged
        outcome and the winning program's text (``None`` when the space
        is exhausted, or on timeout); ``self.last_match_rank`` records
        the match branch for the caller's next resume.
        """
        started = time.perf_counter()
        total = self.rank_count(sketch, layout, examples, model, length)
        self.last_match_rank = -1
        # a length-1 search is pure goal-directed final-slot enumeration
        # (no root ranks to split); tiny rank universes aren't worth forks
        if length < 2 or total - start_rank < 2 or self.workers < 2:
            outcome, found = _run_shard(
                self._serial_task(
                    sketch, layout, examples, model, length, "first",
                    float("inf"), deadline, name, start_rank,
                )
            )
            text = found[0][1] if found else None
            if found:
                self.last_match_rank = found[0][0]
            status = "stopped" if text is not None else outcome.status
            self._round_summaries = []
            return (
                self._merge([outcome], status, time.perf_counter() - started),
                text,
            )

        task = self._chunk_task(
            sketch, layout, examples, model, length, "first", float("inf"),
            deadline, name, start_rank, total,
        )
        outcomes: list[SearchOutcome] = []
        best_text: str | None = None
        status = "exhausted"
        stream = self._stream_chunks(task)
        try:
            for _, outcome, found in stream:
                if outcome is not None:
                    outcomes.append(outcome)
                    if outcome.status == "timeout":
                        # a serial search would still be inside this
                        # subtree at the deadline; never report a
                        # later-rank match
                        status = "timeout"
                        break
                if found:
                    self.last_match_rank, best_text = found[0]
                    status = "stopped"
                    break
        finally:
            stream.close()
        return (
            self._merge(
                outcomes, status, time.perf_counter() - started,
                ranks_skipped=start_rank,
            ),
            best_text,
        )

    def minimize(
        self,
        sketch,
        layout: Layout,
        examples: list[Example],
        model: LatencyModel,
        length: int,
        *,
        cost_bound: float,
        verify: Callable[[str], bool],
        deadline: float | None = None,
        name: str = "synthesized",
    ) -> tuple[SearchOutcome, str | None, float]:
        """One phase-2 round: the cheapest verified program under the bound.

        Chunk results are replayed in canonical order with serial
        branch-and-bound semantics; every *verified* tightening is
        broadcast to the shared bound that running engines poll mid-round
        (``bound_poll``), so a cheap program verified in an early chunk
        prunes every subtree still being searched.  Returns the merged
        outcome, the best program's text (``None`` when nothing beat
        ``cost_bound``), and its cost.
        """
        started = time.perf_counter()
        total = self.rank_count(sketch, layout, examples, model, length)
        bound_box = {"bound": cost_bound}
        best_text: str | None = None
        status = "exhausted"

        def replay(found: list[tuple]) -> None:
            nonlocal best_text
            for _, _, cost, text in found:
                if cost >= bound_box["bound"]:
                    continue
                if verify(text):
                    bound_box["bound"] = cost
                    best_text = text
                    # mid-round broadcast: parent-verified bounds only
                    with self._bound.get_lock():
                        if cost < self._bound.value:
                            self._bound.value = cost

        if length < 2 or total < 2 or self.workers < 2:
            outcome, found = _run_shard(
                self._serial_task(
                    sketch, layout, examples, model, length, "collect",
                    cost_bound, deadline, name, 0,
                )
            )
            replay(found)
            self._round_summaries = []
            return (
                self._merge(
                    [outcome], outcome.status, time.perf_counter() - started
                ),
                best_text,
                bound_box["bound"],
            )

        task = self._chunk_task(
            sketch, layout, examples, model, length, "collect", cost_bound,
            deadline, name, 0, total,
        )
        outcomes: list[SearchOutcome] = []
        stream = self._stream_chunks(task)
        try:
            for _, outcome, found in stream:
                if outcome is None:
                    continue
                outcomes.append(outcome)
                # candidates this chunk emitted before any deadline are
                # exactly the ones a serial search would have reached
                replay(found)
                if outcome.status == "timeout":
                    status = "timeout"
                    break
        finally:
            stream.close()
        return (
            self._merge(outcomes, status, time.perf_counter() - started),
            best_text,
            bound_box["bound"],
        )
