"""Process-parallel sketch search: stream the root slot across workers.

The engine's enumeration tree fans out at the root slot into independent
``(component, operand1, rotation1)`` branches ("root ranks", numbered in
canonical enumeration order by :class:`~repro.solver.engine.SketchSearch`).
:class:`ParallelSynthesis` submits **one task per rank** to a
``ProcessPoolExecutor``, keeps at most ``workers`` tasks in flight, and
consumes results strictly in rank order.  That streaming shape is what
makes the driver both fast and exact:

* *Phase 1* (:meth:`find_first`) accepts a match the moment every lower
  rank has completed without one — precisely the candidate a
  single-process search reaches first — without waiting for higher
  ranks to exhaust their (possibly enormous) subtrees.
* *Phase 2* (:meth:`minimize`) re-reads the best *verified* cost bound
  at every task submission, so a cheap program verified early prunes all
  later ranks, like serial branch-and-bound.  In-flight tasks run under
  a slightly stale (looser) bound, which only over-approximates the
  candidate stream; the parent replays it in canonical order with serial
  semantics, so the result is bit-identical to ``workers=1``.

Workers never tighten bounds on unverified candidates — a cheap
example-matching program can still fail verification, and pruning on its
cost could hide the true optimum.  Verification stays in the parent: a
:class:`~repro.spec.reference.Spec` holds an arbitrary Python reference
implementation (often a lambda) and does not cross process boundaries,
while sketches, layouts, examples, and latency tables are all plain
picklable data; candidates come back as Quill program text.

Under deadline pressure the driver reports a timeout whenever a rank
times out before a lower-or-equal-rank match emerged (a serial search
would still be inside that subtree at the deadline), so it never returns
a *different* program than serial — at worst it times out where an
unfinished serial run might have gotten lucky later.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.quill.cost import program_cost
from repro.quill.latency import LatencyModel
from repro.quill.printer import format_program
from repro.solver.engine import (
    SearchOptions,
    SearchOutcome,
    SketchSearch,
    materialize_assignment,
)
from repro.spec.layout import Layout
from repro.spec.reference import Example


# Set once per worker process (pool initializer): a shared event the
# parent raises to abandon in-flight tasks.  Future.cancel() cannot stop
# a task that already started; without this, a straggler rank would keep
# exhausting its subtree against a stale example set, clogging pool
# slots for the next CEGIS round.
_CANCEL_EVENT = None


def _init_worker(cancel_event) -> None:
    global _CANCEL_EVENT
    _CANCEL_EVENT = cancel_event


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to search a slice of the root slot."""

    sketch: object
    layout: Layout
    examples: tuple[Example, ...]
    model: LatencyModel
    length: int
    options: SearchOptions
    ranks: tuple[int, ...] | None  # None = the whole root slot
    mode: str  # "first" | "collect"
    cost_bound: float
    deadline: float | None  # absolute time.monotonic() deadline
    name: str


def _run_shard(task: ShardTask) -> tuple[SearchOutcome, list[tuple]]:
    """Worker entry point: search one rank slice, return candidates as text.

    ``first`` mode stops at the slice's first example-matching candidate
    and reports ``(root_rank, program_text)``.  ``collect`` mode
    enumerates every candidate cheaper than ``cost_bound`` and reports
    ``(root_rank, sequence, cost, program_text)``; the sequence number
    preserves the within-branch enumeration order.
    """
    search = SketchSearch(
        task.sketch,
        task.layout,
        list(task.examples),
        task.model,
        task.length,
        options=task.options,
    )
    found: list[tuple] = []
    if task.mode == "first":

        def on_candidate(assignment):
            program = materialize_assignment(
                task.sketch, task.layout, assignment, name=task.name
            )
            found.append((search.current_root_rank, format_program(program)))
            return True, None

    else:
        sequence = 0

        def on_candidate(assignment):
            nonlocal sequence
            program = materialize_assignment(
                task.sketch, task.layout, assignment, name=task.name
            )
            cost = program_cost(program, task.model)
            if cost < task.cost_bound:
                found.append(
                    (
                        search.current_root_rank,
                        sequence,
                        cost,
                        format_program(program),
                    )
                )
            sequence += 1
            return False, None

    outcome = search.run(
        on_candidate,
        cost_bound=task.cost_bound,
        deadline=task.deadline,
        root_ranks=frozenset(task.ranks) if task.ranks is not None else None,
        should_stop=_CANCEL_EVENT.is_set if _CANCEL_EVENT is not None else None,
    )
    return outcome, found


class ParallelSynthesis:
    """A reusable pool of search workers with deterministic merging.

    One driver serves every round of a CEGIS phase: the pool forks once
    and each :meth:`find_first`/:meth:`minimize` call re-streams the
    root ranks with the current examples and bound.  Use as a context
    manager (or call :meth:`close`) to release the pool.
    """

    def __init__(
        self,
        workers: int | None = None,
        options: SearchOptions | None = None,
    ):
        self.workers = max(1, workers or os.cpu_count() or 1)
        self.options = options or SearchOptions()
        self._pool: ProcessPoolExecutor | None = None
        self._cancel = multiprocessing.Event()
        self._rank_counts: dict[tuple[int, int], int] = {}

    # -- lifecycle --------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self._cancel,),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._cancel.set()  # reap in-flight stragglers cooperatively
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelSynthesis":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- rank streaming ---------------------------------------------------

    def rank_count(
        self,
        sketch,
        layout: Layout,
        examples: list[Example],
        model: LatencyModel,
        length: int,
    ) -> int:
        """The root-rank universe size (cached: invariant across rounds)."""
        key = (id(sketch), length)
        total = self._rank_counts.get(key)
        if total is None:
            probe = SketchSearch(
                sketch, layout, examples, model, length, options=self.options
            )
            total = self._rank_counts[key] = probe.root_choice_count()
        return total

    def _stream_ranks(
        self,
        total: int,
        make_task: Callable[[int], ShardTask],
    ) -> Iterator[tuple[int, SearchOutcome, list[tuple]]]:
        """Yield per-rank results in rank order, at most ``workers`` in
        flight, submitting lazily so ``make_task`` sees current state
        (the tightened cost bound).  Closing the generator cancels every
        queued task and signals in-flight ones to abandon their subtrees
        (engines poll the shared event and bail with a discarded
        "timeout"), so the pool is clean for the next round."""
        pool = self._ensure_pool()
        # stragglers poll every batch, so the set->clear window between
        # rounds (parent-side verification) is ample for them to bail
        self._cancel.clear()
        pending: dict[int, Future] = {}
        next_rank = 0
        try:
            for emit_rank in range(total):
                while next_rank < total and (
                    sum(1 for f in pending.values() if not f.done())
                    < self.workers
                ):
                    pending[next_rank] = pool.submit(
                        _run_shard, make_task(next_rank)
                    )
                    next_rank += 1
                outcome, found = pending.pop(emit_rank).result()
                yield emit_rank, outcome, found
        finally:
            if pending:
                self._cancel.set()
            for future in pending.values():
                future.cancel()

    @staticmethod
    def _merge(
        outcomes: list[SearchOutcome], status: str, wall_seconds: float
    ) -> SearchOutcome:
        return SearchOutcome(
            status=status,
            nodes=sum(o.nodes for o in outcomes),
            candidates=sum(o.candidates for o in outcomes),
            seconds=wall_seconds,
            batches=sum(o.batches for o in outcomes),
            dedup_hits=sum(o.dedup_hits for o in outcomes),
        )

    def _task(
        self, sketch, layout, examples, model, length, rank, mode, bound,
        deadline, name,
    ) -> ShardTask:
        return ShardTask(
            sketch=sketch,
            layout=layout,
            examples=tuple(examples),
            model=model,
            length=length,
            options=self.options,
            ranks=None if rank is None else (rank,),
            mode=mode,
            cost_bound=bound,
            deadline=deadline,
            name=name,
        )

    # -- search rounds ----------------------------------------------------

    def find_first(
        self,
        sketch,
        layout: Layout,
        examples: list[Example],
        model: LatencyModel,
        length: int,
        *,
        deadline: float | None = None,
        name: str = "synthesized",
    ) -> tuple[SearchOutcome, str | None]:
        """One phase-1 round: the globally-first example-matching program.

        Ranks are consumed in order, so the first rank that reports a
        match — with every lower rank already exhausted and match-free —
        is exactly the candidate a single-process search reaches first;
        higher in-flight ranks are abandoned immediately.  Returns the
        merged outcome and the winning program's text (``None`` when the
        space is exhausted, or on timeout).
        """
        started = time.perf_counter()
        total = self.rank_count(sketch, layout, examples, model, length)
        # a length-1 search is pure goal-directed final-slot enumeration
        # (no root ranks to split); tiny rank universes aren't worth forks
        if length < 2 or total < 2 or self.workers < 2:
            outcome, found = _run_shard(
                self._task(
                    sketch, layout, examples, model, length, None, "first",
                    float("inf"), deadline, name,
                )
            )
            text = found[0][1] if found else None
            status = "stopped" if text is not None else outcome.status
            return (
                self._merge([outcome], status, time.perf_counter() - started),
                text,
            )

        outcomes: list[SearchOutcome] = []
        best_text: str | None = None
        status = "exhausted"
        stream = self._stream_ranks(
            total,
            lambda rank: self._task(
                sketch, layout, examples, model, length, rank, "first",
                float("inf"), deadline, name,
            ),
        )
        try:
            for _, outcome, found in stream:
                outcomes.append(outcome)
                if outcome.status == "timeout":
                    # a serial search would still be inside this subtree
                    # at the deadline; never report a later-rank match
                    status = "timeout"
                    break
                if found:
                    best_text = found[0][1]
                    status = "stopped"
                    break
        finally:
            stream.close()
        return (
            self._merge(outcomes, status, time.perf_counter() - started),
            best_text,
        )

    def minimize(
        self,
        sketch,
        layout: Layout,
        examples: list[Example],
        model: LatencyModel,
        length: int,
        *,
        cost_bound: float,
        verify: Callable[[str], bool],
        deadline: float | None = None,
        name: str = "synthesized",
    ) -> tuple[SearchOutcome, str | None, float]:
        """One phase-2 round: the cheapest verified program under the bound.

        Streams rank tasks under the *current* verified bound (tightened
        as soon as ``verify`` accepts a cheaper candidate, pruning every
        later rank) and replays each rank's candidates in canonical
        order with serial branch-and-bound semantics.  Returns the
        merged outcome, the best program's text (``None`` when nothing
        beat ``cost_bound``), and its cost.
        """
        started = time.perf_counter()
        total = self.rank_count(sketch, layout, examples, model, length)
        bound_box = {"bound": cost_bound}
        best_text: str | None = None
        status = "exhausted"

        def replay(found: list[tuple]) -> None:
            nonlocal best_text
            for _, _, cost, text in found:
                if cost >= bound_box["bound"]:
                    continue
                if verify(text):
                    bound_box["bound"] = cost
                    best_text = text

        if length < 2 or total < 2 or self.workers < 2:
            outcome, found = _run_shard(
                self._task(
                    sketch, layout, examples, model, length, None, "collect",
                    cost_bound, deadline, name,
                )
            )
            replay(found)
            return (
                self._merge(
                    [outcome], outcome.status, time.perf_counter() - started
                ),
                best_text,
                bound_box["bound"],
            )

        outcomes: list[SearchOutcome] = []
        stream = self._stream_ranks(
            total,
            lambda rank: self._task(
                sketch, layout, examples, model, length, rank, "collect",
                bound_box["bound"], deadline, name,
            ),
        )
        try:
            for _, outcome, found in stream:
                outcomes.append(outcome)
                # candidates this rank emitted before any deadline are
                # exactly the ones a serial search would have reached
                replay(found)
                if outcome.status == "timeout":
                    status = "timeout"
                    break
        finally:
            stream.close()
        return (
            self._merge(outcomes, status, time.perf_counter() - started),
            best_text,
            bound_box["bound"],
        )
