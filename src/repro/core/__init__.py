"""Porcupine: the synthesizing compiler (the paper's primary contribution).

Pipeline (paper Figure 3): a kernel *specification* (reference program +
data layout, :mod:`repro.spec`) and a *sketch* (HE kernel template with
holes) go into a CEGIS synthesis engine that completes the sketch into a
verified Quill program, minimizes its cost, and emits SEAL code.

Exports resolve lazily (PEP 562).  This is load-bearing, not cosmetic:
:mod:`repro.solver.engine` imports :mod:`repro.core.sketch`, which
executes this package ``__init__`` — if it eagerly imported
:mod:`repro.core.cegis` (which imports the engine back), any
solver-first import would crash on the half-initialized module.
"""

from importlib import import_module

_EXPORTS = {
    "ComponentChoice": "repro.core.sketch",
    "CompileResult": "repro.core.compiler",
    "CompositionGraph": "repro.core.multistep",
    "ConstStep": "repro.core.multistep",
    "CtHole": "repro.core.sketch",
    "CtRotHole": "repro.core.sketch",
    "HARRIS_GRAPH": "repro.core.multistep",
    "KernelStep": "repro.core.multistep",
    "OpStep": "repro.core.multistep",
    "ParallelSynthesis": "repro.core.parallel",
    "SOBEL_GRAPH": "repro.core.multistep",
    "Sketch": "repro.core.sketch",
    "SynthesisConfig": "repro.core.cegis",
    "SynthesisError": "repro.core.cegis",
    "SynthesisResult": "repro.core.cegis",
    "compile_kernel": "repro.core.compiler",
    "compose": "repro.core.multistep",
    "compose_harris": "repro.core.multistep",
    "compose_sobel": "repro.core.multistep",
    "default_sketch_for": "repro.core.sketches",
    "explicit_rotation_variant": "repro.core.sketches",
    "generate_seal_code": "repro.core.codegen",
    "inline_program": "repro.core.multistep",
    "sliding_window_rotations": "repro.core.restrictions",
    "synthesize": "repro.core.cegis",
    "tree_reduction_rotations": "repro.core.restrictions",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: resolve each name once
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
