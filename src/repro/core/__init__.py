"""Porcupine: the synthesizing compiler (the paper's primary contribution).

Pipeline (paper Figure 3): a kernel *specification* (reference program +
data layout, :mod:`repro.spec`) and a *sketch* (HE kernel template with
holes) go into a CEGIS synthesis engine that completes the sketch into a
verified Quill program, minimizes its cost, and emits SEAL code.
"""

from repro.core.cegis import (
    SynthesisConfig,
    SynthesisError,
    SynthesisResult,
    synthesize,
)
from repro.core.compiler import CompileResult, compile_kernel
from repro.core.codegen import generate_seal_code
from repro.core.multistep import (
    HARRIS_GRAPH,
    SOBEL_GRAPH,
    CompositionGraph,
    ConstStep,
    KernelStep,
    OpStep,
    compose,
    compose_harris,
    compose_sobel,
    inline_program,
)
from repro.core.restrictions import (
    sliding_window_rotations,
    tree_reduction_rotations,
)
from repro.core.sketch import (
    ComponentChoice,
    CtHole,
    CtRotHole,
    Sketch,
)
from repro.core.sketches import default_sketch_for, explicit_rotation_variant

__all__ = [
    "ComponentChoice",
    "CompileResult",
    "CompositionGraph",
    "ConstStep",
    "CtHole",
    "CtRotHole",
    "HARRIS_GRAPH",
    "KernelStep",
    "OpStep",
    "SOBEL_GRAPH",
    "Sketch",
    "SynthesisConfig",
    "SynthesisError",
    "SynthesisResult",
    "compile_kernel",
    "compose",
    "compose_harris",
    "compose_sobel",
    "default_sketch_for",
    "explicit_rotation_variant",
    "generate_seal_code",
    "inline_program",
    "sliding_window_rotations",
    "synthesize",
    "tree_reduction_rotations",
]
