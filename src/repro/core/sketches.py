"""Per-kernel sketches: the artifact a Porcupine user writes (section 4.4).

Each sketch lists the arithmetic components extracted from the reference
implementation (as a multiset — the synthesizer may use fewer), marks
which operands are plain ciphertext holes versus ciphertext-rotation
holes, and picks a rotation restriction (section 6.1): sliding-window
amounts for stencils, power-of-two amounts for in-ciphertext reductions.

``explicit_rotation_variant`` converts a local-rotate sketch into the
paper's section-7.4 comparison point, where rotations are free-standing
components with their own amount holes.
"""

from __future__ import annotations

from repro.core.restrictions import (
    sliding_window_rotations,
    tree_reduction_rotations,
)
from repro.core.sketch import (
    ComponentChoice,
    CtHole,
    CtRotHole,
    RotationChoice,
    Sketch,
)
from repro.quill.ir import Opcode, PtConst, PtInput
from repro.spec.kernels import GRID_WIDTH
from repro.spec.reference import Spec


def _cc(opcode, rot1=False, rot2=False, max_uses=None):
    return ComponentChoice(
        opcode,
        CtRotHole() if rot1 else CtHole(),
        CtRotHole() if rot2 else CtHole(),
        max_uses=max_uses,
    )


def _cp(opcode, operand2, max_uses=None):
    return ComponentChoice(opcode, CtHole(), operand2, max_uses=max_uses)


def default_sketch_for(spec: Spec) -> Sketch:
    """The local-rotate sketch a user would write for each paper kernel."""
    builders = {
        "box_blur": _box_blur_sketch,
        "gx": _gx_sketch,
        "gy": _gy_sketch,
        "roberts": _roberts_sketch,
        "dot_product": _dot_product_sketch,
        "hamming": _hamming_sketch,
        "l2": _l2_sketch,
        "linear_regression": _linear_regression_sketch,
        "polynomial_regression": _polynomial_regression_sketch,
    }
    try:
        return builders[spec.name](spec)
    except KeyError:
        raise KeyError(
            f"no direct-synthesis sketch for {spec.name!r} "
            "(Sobel and Harris are multi-step kernels, see core.multistep)"
        ) from None


def _box_blur_sketch(spec: Spec) -> Sketch:
    return Sketch(
        name="box_blur",
        choices=(_cc(Opcode.ADD_CC, rot1=True, rot2=True),),
        rotations=sliding_window_rotations(GRID_WIDTH, 2, 2),
    )


def _gx_sketch(spec: Spec) -> Sketch:
    # Components mirror the paper's Gx sketch: add, subtract, multiply-by-2.
    return Sketch(
        name="gx",
        choices=(
            _cc(Opcode.ADD_CC, rot1=True, rot2=True),
            _cc(Opcode.SUB_CC, rot1=True, rot2=True),
            _cp(Opcode.MUL_CP, PtConst("two")),
        ),
        rotations=sliding_window_rotations(GRID_WIDTH, 3, 3, centered=True),
        constants={"two": 2},
    )


def _gy_sketch(spec: Spec) -> Sketch:
    return Sketch(
        name="gy",
        choices=(
            _cc(Opcode.ADD_CC, rot1=True, rot2=True),
            _cc(Opcode.SUB_CC, rot1=True, rot2=True),
            _cp(Opcode.MUL_CP, PtConst("two")),
        ),
        rotations=sliding_window_rotations(GRID_WIDTH, 3, 3, centered=True),
        constants={"two": 2},
    )


def _roberts_sketch(spec: Spec) -> Sketch:
    # Multiset from the reference: two differences, two squares, one sum.
    return Sketch(
        name="roberts",
        choices=(
            _cc(Opcode.SUB_CC, rot1=True, rot2=True, max_uses=2),
            _cc(Opcode.MUL_CC, max_uses=2),
            _cc(Opcode.ADD_CC, max_uses=1),
        ),
        rotations=sliding_window_rotations(GRID_WIDTH, 2, 2),
    )


def _dot_product_sketch(spec: Spec) -> Sketch:
    n = spec.layout.input("x").size
    return Sketch(
        name="dot_product",
        choices=(
            _cp(Opcode.MUL_CP, PtInput("w"), max_uses=1),
            _cc(Opcode.ADD_CC, rot2=True),
        ),
        rotations=tree_reduction_rotations(n),
    )


def _hamming_sketch(spec: Spec) -> Sketch:
    n = spec.layout.input("x").size
    return Sketch(
        name="hamming",
        choices=(
            _cc(Opcode.SUB_CC, max_uses=1),
            _cc(Opcode.MUL_CC, max_uses=1),
            _cc(Opcode.ADD_CC, rot2=True),
        ),
        rotations=tree_reduction_rotations(n),
    )


def _l2_sketch(spec: Spec) -> Sketch:
    n = spec.layout.input("x").size
    mask = [0] * spec.layout.vector_size
    mask[spec.layout.origin] = 1
    return Sketch(
        name="l2",
        choices=(
            _cc(Opcode.SUB_CC, max_uses=1),
            _cc(Opcode.MUL_CC, max_uses=1),
            _cc(Opcode.ADD_CC, rot2=True),
            _cp(Opcode.MUL_CP, PtConst("mask"), max_uses=1),
        ),
        rotations=tree_reduction_rotations(n),
        constants={"mask": tuple(mask)},
    )


def _linear_regression_sketch(spec: Spec) -> Sketch:
    n = spec.layout.input("x").size
    return Sketch(
        name="linear_regression",
        choices=(
            _cp(Opcode.MUL_CP, PtInput("w"), max_uses=1),
            _cc(Opcode.ADD_CC, rot2=True),
        ),
        rotations=tree_reduction_rotations(n),
    )


def _polynomial_regression_sketch(spec: Spec) -> Sketch:
    # Element-wise kernel: no rotations at all, multiplies and adds only.
    return Sketch(
        name="polynomial_regression",
        choices=(
            _cc(Opcode.MUL_CC, max_uses=3),
            _cc(Opcode.ADD_CC, max_uses=2),
        ),
        rotations=(),
    )


def explicit_rotation_variant(sketch: Sketch) -> Sketch:
    """Rewrite a local-rotate sketch in the explicit-rotation style (7.4).

    Every ``??ct-r`` hole becomes a plain ``??ct`` hole and rotations move
    into a free-standing ``rot (??ct) ??r`` component, enlarging the space
    of candidate programs the solver must cover.
    """
    new_choices: list = [RotationChoice()]
    for choice in sketch.choices:
        if isinstance(choice, RotationChoice):
            continue
        operand2 = (
            CtHole()
            if isinstance(choice.operand2, CtRotHole)
            else choice.operand2
        )
        new_choices.append(
            ComponentChoice(
                choice.opcode, CtHole(), operand2, max_uses=choice.max_uses
            )
        )
    return Sketch(
        name=f"{sketch.name}-explicit",
        choices=tuple(new_choices),
        rotations=sketch.rotations,
        constants=dict(sketch.constants),
        style="explicit",
    )


# Search-depth and timeout guidance per kernel: the smallest known solution
# size plus one (so exhaustion proofs stay affordable), mirroring how a
# user sizes a sketch from the reference implementation's operation count.
KERNEL_SYNTH_SETTINGS: dict[str, dict] = {
    "box_blur": {"max_components": 3},
    "gx": {"max_components": 4},
    "gy": {"max_components": 4},
    "roberts": {"max_components": 5},
    "dot_product": {"max_components": 5},
    "hamming": {"max_components": 5},
    "l2": {"max_components": 6},
    "linear_regression": {"max_components": 4},
    "polynomial_regression": {"max_components": 5},
}
