"""Constraint-search substrate: the synthesis engine's "solver".

This package stands in for the SMT solver (Boolector via Rosette) in the
paper's toolchain.  A synthesis query — *complete this sketch so the
program maps the example inputs to the example outputs* — is solved by
backtracking search over the sketch's holes with aggressive pruning:

* observational-equivalence deduplication (a candidate whose value on all
  examples duplicates an existing value cannot appear in a minimal
  program),
* dead-value bounds (every component must eventually feed the output),
* the paper's symmetry breaking (canonical operand order for commutative
  instructions, canonical order for adjacent independent instructions —
  section 6.2),
* component-multiset accounting (section 4.4),
* cost-bounded branch-and-bound for the optimization phase, using the
  same cost function Porcupine minimizes,
* goal-directed enumeration of the final instruction.

The engine is exact for the queries it answers: "exhausted" means no
completion of the sketch at that size matches the examples.

Evaluation is batched (stacked numpy over all operand fills of a prefix,
vectorized hash dedup, single-comparison goal checks); the scalar path
survives behind ``SearchOptions(batched=False)`` for ablations, and
root-slot partitioning (``run(root_ranks=...)``) supports the
process-parallel driver in :mod:`repro.core.parallel`.
"""

from repro.solver.engine import (
    SearchOptions,
    SearchOutcome,
    SearchStats,
    SketchSearch,
    materialize_assignment,
)
from repro.solver.values import ValueStore, shift_matrix

__all__ = [
    "SearchOptions",
    "SearchOutcome",
    "SearchStats",
    "SketchSearch",
    "ValueStore",
    "materialize_assignment",
    "shift_matrix",
]
