"""Constraint-search substrate: the synthesis engine's "solver".

This package stands in for the SMT solver (Boolector via Rosette) in the
paper's toolchain.  A synthesis query — *complete this sketch so the
program maps the example inputs to the example outputs* — is solved by
backtracking search over the sketch's holes with aggressive pruning.

Pruning is a declarative rule table (:data:`repro.solver.PRUNE_RULES`);
each rule is a toggle on :class:`SearchOptions` and a counter in
``SearchOutcome.pruned``, so the ablation benchmark can attribute node
reductions per rule.  The catalog, with soundness arguments:

``dedup`` — observational-equivalence deduplication.  A candidate whose
  value on all examples duplicates a live store value cannot appear in a
  minimal program: every later consumer can point at the existing wire
  instead (equal values have equal rotations), and dropping the duplicate
  shortens the program.  Sound for any fixed-length query.

``commutative`` — canonical operand order for commutative components
  (paper section 6.2).  The mirrored fill computes the identical value in
  the same slot at the same cost and is enumerated under the canonical
  encoding, so nothing is lost.  Sound for any fixed-length query; in the
  final slot the skip is gated on the mirror actually being generated.

``adjacent`` — canonical order for adjacent independent slots (paper
  section 6.2).  Two adjacent slots that do not consume each other's
  wires commute as instructions; requiring non-decreasing encodings keeps
  exactly one interleaving of each unordered program.  Sound for any
  fixed-length query.

``dead_value`` — every pushed value must still be able to reach the
  output: ``r`` remaining slots can retire at most ``r + 1`` unconsumed
  wires.  A violating completion has a dead component, so an equivalent
  strictly shorter program exists — sound under the CEGIS discipline of
  searching lengths in increasing order (the shorter program was found,
  or refuted, first).

``rotation_collapse`` — skip rotating a rotation wire when both amounts
  share a sign and their sum is itself a legal amount: ``rot(rot(x, a),
  b) == rot(x, a+b)`` exactly under zero-fill shift semantics, and the
  direct rotation of ``x`` (still available, as an ancestor) is
  enumerated in the same slot at the same cost.  If the inner rotation
  wire had no other consumer, the collapsed program has a dead wire and a
  strictly shorter equivalent exists — sound under the CEGIS discipline,
  like ``dead_value``.  (Local-rotate sketches never chain rotations, so
  the rule only fires for explicit-style sketches.)

``zero_elide`` — skip candidates whose all-zero or identity operand
  makes the result a value the store already holds, without evaluating
  it: ``x ⊕ 0`` and ``x * 1`` reproduce an existing wire, ``x * 0``
  reproduces a live zero value (the elision requires one), and an
  over-rotation that shifts a value's entire nonzero support off the
  vector is the zero value again.  Decided in O(1) from cached
  nonzero-support bounds; a pure fast-path for ``dedup`` (the skipped
  push would be rejected), so the candidate stream is unchanged.

``cost_bound`` — branch-and-bound: abandon a prefix when its latency ×
  (1 + depth) lower bound already meets the best verified cost.  Only
  candidates at least as expensive as a known verified program are
  skipped, so the cost minimum is preserved.

Component-multiset accounting (section 4.4) and goal-directed
enumeration of the final instruction are structural, not toggleable.
The engine is exact for the queries it answers under the CEGIS
discipline: "exhausted" means no completion of the sketch at that size
matches the examples, modulo programs the rules above prove redundant.

Searches persist across CEGIS rounds: counterexamples are appended as
single columns to the live value store (``extend_examples``), exhausted
length-``L`` searches seed length ``L+1`` (``set_length``), and resumed
rounds skip root branches already exhausted without a match
(``run(start_rank=...)``).

Evaluation is batched (stacked numpy over all operand fills of a prefix,
vectorized hash dedup, single-comparison goal checks); the scalar path
survives behind ``SearchOptions(batched=False)`` for ablations, and
root-slot partitioning (``run(root_ranks=...)``) plus mid-run bound
polling (``run(bound_poll=...)``) support the work-stealing
process-parallel driver in :mod:`repro.core.parallel`.
"""

from repro.solver.engine import (
    PRUNE_RULES,
    SearchOptions,
    SearchOutcome,
    SearchStats,
    SketchSearch,
    materialize_assignment,
)
from repro.solver.values import ValueStore, shift_matrix

__all__ = [
    "PRUNE_RULES",
    "SearchOptions",
    "SearchOutcome",
    "SearchStats",
    "SketchSearch",
    "ValueStore",
    "materialize_assignment",
    "shift_matrix",
]
