"""Concrete value tracking for the synthesis search.

Every available ciphertext (packed inputs, then one per chosen component)
is an ``(E, n)`` int64 matrix: one row per CEGIS example.  The store keeps

* a byte-level index for observational-equivalence deduplication,
* a per-value cache of rotated (shifted) variants, since the same operand
  rotation is probed many times across the search tree,
* the multiplicative depth of each value for cost lower bounds.
"""

from __future__ import annotations

import numpy as np


def shift_matrix(matrix: np.ndarray, amount: int) -> np.ndarray:
    """Row-wise shift with zero fill (Quill rotation semantics, per example)."""
    _, n = matrix.shape
    out = np.zeros_like(matrix)
    if amount >= 0:
        if amount < n:
            out[:, : n - amount] = matrix[:, amount:]
    else:
        if -amount < n:
            out[:, -amount:] = matrix[:, : n + amount]
    return out


class ValueStore:
    """Stack of available ciphertext values with dedup and shift caching."""

    def __init__(self, base_vectors: list[np.ndarray]):
        self.vectors: list[np.ndarray] = []
        self.depths: list[int] = []
        self._index: dict[bytes, int] = {}
        self._shift_cache: list[dict[int, np.ndarray]] = []
        self._keys: list[bytes] = []
        self._serial = 0
        for vec in base_vectors:
            added = self.try_push(np.ascontiguousarray(vec, dtype=np.int64), 0)
            if not added:
                raise ValueError(
                    "duplicate input values; inputs must be distinguishable "
                    "on the example set"
                )
        self.base_count = len(self.vectors)

    def __len__(self) -> int:
        return len(self.vectors)

    def try_push(self, vec: np.ndarray, depth: int, force: bool = False) -> bool:
        """Add a value unless it duplicates an existing one.

        Returns False (and adds nothing) on duplicates: any minimal program
        computing the same value twice could drop the second computation,
        so such candidates cannot be part of a minimum-size solution.
        ``force`` admits duplicates under a unique key (used only by the
        deduplication-ablation benchmark).
        """
        key: bytes = vec.tobytes()
        if key in self._index:
            if not force:
                return False
            self._serial += 1
            key = key + self._serial.to_bytes(8, "little")
        self._index[key] = len(self.vectors)
        self.vectors.append(vec)
        self.depths.append(depth)
        self._shift_cache.append({})
        self._keys.append(key)
        return True

    def pop(self) -> None:
        """Remove the most recent value (backtracking)."""
        if len(self.vectors) <= self.base_count:
            raise IndexError("cannot pop base input values")
        self.vectors.pop()
        self.depths.pop()
        self._shift_cache.pop()
        del self._index[self._keys.pop()]

    def shifted(self, index: int, amount: int) -> np.ndarray:
        """The value at ``index`` rotated by ``amount`` (cached)."""
        if amount == 0:
            return self.vectors[index]
        cache = self._shift_cache[index]
        hit = cache.get(amount)
        if hit is None:
            hit = shift_matrix(self.vectors[index], amount)
            cache[amount] = hit
        return hit
