"""Concrete value tracking for the synthesis search.

Every available ciphertext (packed inputs, then one per chosen component)
is an ``(E, n)`` int64 matrix: one row per CEGIS example.  The store keeps

* a hash index for observational-equivalence deduplication — a cheap
  64-bit multiplicative hash over the int64 view, with an exact
  element-wise comparison only on hash collision (full ``tobytes()``
  keys, hashed by the dict on every probe, dominated the old profile),
* a per-value cache of rotated (shifted) variants, since the same operand
  rotation is probed many times across the search tree; cached rotations
  are handed out as read-only views and the cache is hard-bounded at
  ``shift_cache_limit`` entries (cleared wholesale before the insert that
  would overflow it),
* the multiplicative depth of each value for cost lower bounds,
* the nonzero-column support of each value, so the ``zero_elide`` pruning
  rule can decide "this rotation is the all-zero vector" in O(1) without
  materializing it.

Stores are *persistent across CEGIS rounds*: when a counterexample
arrives, :meth:`ValueStore.append_example` extends every live value with
the new example's column in place — copying the already-evaluated
``(K, E)`` rotation blocks and computing only the new column's rotations
— instead of rebuilding the store and re-rotating all ``E`` examples
from scratch.  The reuse counters (``appended_examples``,
``reused_values``) feed the engine's :class:`SearchOutcome`.
"""

from __future__ import annotations

import numpy as np

#: Seed for the hash weight vector.  Fixed so hashes are reproducible
#: across runs and across the processes of a parallel search.
_HASH_SEED = 0x9E3779B97F4A7C15

#: Default cap on live shift-cache entries before a wholesale clear.
DEFAULT_SHIFT_CACHE_LIMIT = 4096


def shift_matrix(matrix: np.ndarray, amount: int) -> np.ndarray:
    """Row-wise shift with zero fill (Quill rotation semantics, per example)."""
    _, n = matrix.shape
    out = np.zeros_like(matrix)
    if amount >= 0:
        if amount < n:
            out[:, : n - amount] = matrix[:, amount:]
    else:
        if -amount < n:
            out[:, -amount:] = matrix[:, : n + amount]
    return out


def _hash_weights(count: int) -> np.ndarray:
    """Odd uint64 multipliers, deterministic in the element count."""
    rng = np.random.default_rng(_HASH_SEED + count)
    weights = rng.integers(0, 2**64, size=count, dtype=np.uint64)
    return weights | np.uint64(1)


_SIGNATURE_WEIGHTS: dict[int, np.ndarray] = {}


def signature_block(values: np.ndarray) -> np.ndarray:
    """Store-independent 64-bit signatures for a ``(K, E, S)`` value stack.

    The same multiplicative hash as :meth:`ValueStore.hash_block`, but
    computed from the deterministic weight vector alone — no store
    instance — so two searches in different processes (or for different
    kernels) assign identical signatures to identical value matrices.
    This is what the lemma store records as a length's reachable
    final-value set; determinism across runs is what makes the recorded
    set consultable at all.
    """
    k = values.shape[0]
    flat = np.ascontiguousarray(values).view(np.uint64).reshape(k, -1)
    weights = _SIGNATURE_WEIGHTS.get(flat.shape[1])
    if weights is None:
        weights = _hash_weights(flat.shape[1])
        _SIGNATURE_WEIGHTS[flat.shape[1]] = weights
    return (flat * weights).sum(axis=1, dtype=np.uint64)


class ValueStore:
    """Stack of available ciphertext values with dedup and shift caching.

    With ``amounts`` given, the store additionally keeps a *rotation
    block*: a ``(capacity, len(amounts), E, n)`` tensor holding every
    legal rotation of every live value, filled once per push.  Batched
    enumeration then materializes a whole candidate operand stack with a
    single fancy-index :meth:`gather` instead of one ``np.stack`` over K
    cached views; ``out_slots`` adds a companion block restricted to the
    output columns for the final slot's vectorized goal check.
    """

    def __init__(
        self,
        base_vectors: list[np.ndarray],
        shift_cache_limit: int = DEFAULT_SHIFT_CACHE_LIMIT,
        amounts: tuple[int, ...] | None = None,
        out_slots: list[int] | tuple[int, ...] | None = None,
        capacity: int | None = None,
    ):
        self.vectors: list[np.ndarray] = []
        self.depths: list[int] = []
        # hash key (or serial key under force) -> ascending store indices
        self._buckets: dict[object, list[int]] = {}
        self._keys: list[object] = []  # per value, its bucket key
        self._shift_cache: list[dict[int, np.ndarray]] = []
        self._shift_entries = 0
        self._shift_entries_peak = 0
        self.shift_cache_limit = shift_cache_limit
        self._serial = 0
        self._weights: np.ndarray | None = None
        self.dedup_hits = 0
        # nonzero-column support [lo, hi) per value; lo == hi means all-zero
        self.supports: list[tuple[int, int]] = []
        self._zero_live = 0
        # cross-round reuse counters (see append_example)
        self.appended_examples = 0
        self.reused_values = 0
        self._amounts = tuple(amounts) if amounts is not None else None
        self.rot_pos = (
            {amount: j for j, amount in enumerate(self._amounts)}
            if self._amounts is not None
            else {}
        )
        self._out_idx = (
            np.asarray(out_slots, dtype=np.intp)
            if out_slots is not None
            else None
        )
        self._capacity = capacity or max(len(base_vectors) * 2, 8)
        self._block: np.ndarray | None = None
        self._block_out: np.ndarray | None = None
        for vec in base_vectors:
            contiguous = np.ascontiguousarray(vec, dtype=np.int64)
            if contiguous is vec:
                # don't freeze the caller's own array (try_push marks
                # stored values read-only)
                contiguous = contiguous.copy()
            added = self.try_push(contiguous, 0)
            if not added:
                raise ValueError(
                    "duplicate input values; inputs must be distinguishable "
                    "on the example set"
                )
        self.base_count = len(self.vectors)

    def __len__(self) -> int:
        return len(self.vectors)

    # -- hashing -----------------------------------------------------------

    def _weights_for(self, count: int) -> np.ndarray:
        if self._weights is None or self._weights.size != count:
            self._weights = _hash_weights(count)
        return self._weights

    def value_hash(self, vec: np.ndarray) -> int:
        """The 64-bit content hash of one ``(E, n)`` value."""
        flat = np.ascontiguousarray(vec).view(np.uint64).ravel()
        weights = self._weights_for(flat.size)
        return int((flat * weights).sum(dtype=np.uint64))

    def hash_block(self, values: np.ndarray) -> np.ndarray:
        """Content hashes for a ``(K, E, n)`` stack of candidate values.

        One vectorized pass replaces K separate ``tobytes()`` walks; the
        result feeds :meth:`try_push` via ``key_hash`` so dedup never
        rehashes a batched candidate.
        """
        k = values.shape[0]
        flat = np.ascontiguousarray(values).view(np.uint64).reshape(k, -1)
        weights = self._weights_for(flat.shape[1])
        return (flat * weights).sum(axis=1, dtype=np.uint64)

    # -- stack operations --------------------------------------------------

    def try_push(
        self,
        vec: np.ndarray,
        depth: int,
        force: bool = False,
        key_hash: int | None = None,
    ) -> bool:
        """Add a value unless it duplicates an existing one.

        Returns False (and adds nothing) on duplicates: any minimal program
        computing the same value twice could drop the second computation,
        so such candidates cannot be part of a minimum-size solution.
        ``force`` admits duplicates under a unique serial key (used only by
        the deduplication-ablation benchmark).  ``key_hash`` supplies a
        precomputed :meth:`value_hash`/:meth:`hash_block` result.
        """
        key: object = (
            key_hash if key_hash is not None else self.value_hash(vec)
        )
        bucket = self._buckets.get(key)
        if bucket is not None:
            raw = vec.tobytes()
            for index in bucket:
                # exact check: only reached on a hash hit, so the byte
                # comparison runs on true duplicates and rare collisions
                if raw == self.vectors[index].tobytes():
                    if not force:
                        self.dedup_hits += 1
                        return False
                    self._serial += 1
                    key = ("serial", self._serial)
                    bucket = None
                    break
        if bucket is None:
            bucket = self._buckets.setdefault(key, [])
        if vec.base is not None:
            # batched candidates arrive as views into a whole (K, E, n)
            # evaluation stack; storing the view would pin that stack in
            # memory for the lifetime of the branch — keep only our rows
            vec = vec.copy()
        # stored values are frozen: shifted(index, 0) hands them out, and
        # an in-place mutation would silently diverge from the hash index
        # and the rotation block filled below
        vec.flags.writeable = False
        index = len(self.vectors)
        bucket.append(index)
        self._keys.append(key)
        self.vectors.append(vec)
        self.depths.append(depth)
        self._shift_cache.append({})
        support = self._support(vec)
        self.supports.append(support)
        if support[0] == support[1]:
            self._zero_live += 1
        if self._amounts is not None:
            self._fill_block(index, vec)
        return True

    @staticmethod
    def _support(vec: np.ndarray) -> tuple[int, int]:
        """Smallest ``[lo, hi)`` column range containing every nonzero."""
        nonzero = np.flatnonzero(vec.any(axis=0))
        if nonzero.size == 0:
            return (0, 0)
        return (int(nonzero[0]), int(nonzero[-1]) + 1)

    def is_zero_rotated(self, index: int, amount: int) -> bool:
        """True when ``rotated(index, amount)`` is the all-zero vector.

        Decided from the cached support bounds: a zero-fill shift erases
        the value exactly when it pushes the whole support off the edge.
        """
        lo, hi = self.supports[index]
        if lo == hi:
            return True
        if amount >= 0:
            return amount >= hi
        return -amount >= self.vectors[index].shape[1] - lo

    def has_zero(self) -> bool:
        """True when some live value is the all-zero vector."""
        return self._zero_live > 0

    def _fill_block(self, index: int, vec: np.ndarray) -> None:
        if self._block is None:
            rows, n = vec.shape
            shape = (self._capacity, len(self._amounts), rows, n)
            self._block = np.empty(shape, dtype=np.int64)
            if self._out_idx is not None:
                self._block_out = np.empty(
                    shape[:3] + (self._out_idx.size,), dtype=np.int64
                )
        elif index >= self._block.shape[0]:
            grow = (self._block.shape[0],) + self._block.shape[1:]
            self._block = np.concatenate(
                [self._block, np.empty(grow, dtype=np.int64)]
            )
            if self._block_out is not None:
                grow_out = (self._block_out.shape[0],) + self._block_out.shape[1:]
                self._block_out = np.concatenate(
                    [self._block_out, np.empty(grow_out, dtype=np.int64)]
                )
        row = self._block[index]
        for j, amount in enumerate(self._amounts):
            if amount == 0:
                row[j] = vec
            else:
                row[j] = shift_matrix(vec, amount)
        if self._block_out is not None:
            self._block_out[index] = row[:, :, self._out_idx]

    def gather(self, indices: np.ndarray, rot_positions: np.ndarray) -> np.ndarray:
        """Stack ``rotated(indices[k], amounts[rot_positions[k]])`` as (K, E, n)."""
        return self._block[indices, rot_positions]

    def gather_out(
        self, indices: np.ndarray, rot_positions: np.ndarray
    ) -> np.ndarray:
        """Like :meth:`gather`, restricted to the output-slot columns."""
        return self._block_out[indices, rot_positions]

    def rotated(self, index: int, amount: int) -> np.ndarray:
        """The value at ``index`` rotated by ``amount`` (read-only).

        Served from the rotation block when one is maintained (no cache
        churn), else from the per-value shift cache.  Like
        :meth:`shifted`, the view is read-only: writing through it would
        corrupt the block entry for every later :meth:`gather`.
        (:meth:`gather`/:meth:`gather_out` return fancy-indexed copies,
        so those are safe to hand out writable.)
        """
        if self._block is not None and amount in self.rot_pos:
            view = self._block[index, self.rot_pos[amount]]
            view.flags.writeable = False
            return view
        return self.shifted(index, amount)

    def pop(self) -> None:
        """Remove the most recent value (backtracking)."""
        if len(self.vectors) <= self.base_count:
            raise IndexError("cannot pop base input values")
        self.vectors.pop()
        self.depths.pop()
        lo, hi = self.supports.pop()
        if lo == hi:
            self._zero_live -= 1
        self._shift_entries -= len(self._shift_cache.pop())
        key = self._keys.pop()
        bucket = self._buckets[key]
        bucket.pop()  # indices are ascending, so ours is last
        if not bucket:
            del self._buckets[key]

    def clear_shift_cache(self) -> None:
        """Drop every cached rotation (they are rebuilt on demand)."""
        for cache in self._shift_cache:
            cache.clear()
        self._shift_entries = 0

    @property
    def shift_cache_size(self) -> int:
        return self._shift_entries

    @property
    def shift_cache_peak(self) -> int:
        """High-water mark of live shift-cache entries (bound telemetry)."""
        return self._shift_entries_peak

    def shifted(self, index: int, amount: int) -> np.ndarray:
        """The value at ``index`` rotated by ``amount`` (cached, read-only)."""
        if amount == 0:
            return self.vectors[index]
        cache = self._shift_cache[index]
        hit = cache.get(amount)
        if hit is None:
            if self._shift_entries >= self.shift_cache_limit:
                # hard bound: the cache is shared across CEGIS rounds now
                # that stores persist, so it must never outgrow its limit
                self.clear_shift_cache()
                cache = self._shift_cache[index]
            hit = shift_matrix(self.vectors[index], amount)
            hit.flags.writeable = False
            cache[amount] = hit
            self._shift_entries += 1
            if self._shift_entries > self._shift_entries_peak:
                self._shift_entries_peak = self._shift_entries
        return hit

    # -- cross-round persistence -------------------------------------------

    def append_example(self, rows: list[np.ndarray]) -> None:
        """Extend every live value with one new example column (CEGIS reuse).

        ``rows[i]`` is the new example's vector for base value ``i``.  The
        store must be fully backtracked (only base values live), which is
        exactly the state a search leaves it in between CEGIS rounds.  The
        already-evaluated rotation blocks are *copied*, not recomputed:
        only the new column's rotations are evaluated, then every live
        value is re-hashed for the new element count.  The shift cache is
        dropped wholesale (its entries have the old row count).
        """
        if len(self.vectors) != self.base_count:
            raise ValueError(
                "append_example requires a fully backtracked store "
                f"({len(self.vectors)} live, {self.base_count} base)"
            )
        if len(rows) != self.base_count:
            raise ValueError(
                f"expected {self.base_count} rows, got {len(rows)}"
            )
        grown_vectors: list[np.ndarray] = []
        for vec, row in zip(self.vectors, rows):
            row = np.ascontiguousarray(row, dtype=np.int64).reshape(1, -1)
            if row.shape[1] != vec.shape[1]:
                raise ValueError("new example row has the wrong width")
            grown = np.concatenate([vec, row])
            grown.flags.writeable = False
            grown_vectors.append(grown)
        self.vectors = grown_vectors
        # re-hash under the new element count (distinct values stay
        # distinct when extended, so base uniqueness is preserved)
        self._buckets.clear()
        self._keys = []
        for index, vec in enumerate(self.vectors):
            key = self.value_hash(vec)
            self._buckets.setdefault(key, []).append(index)
            self._keys.append(key)
        self._zero_live = 0
        self.supports = []
        for vec in self.vectors:
            support = self._support(vec)
            self.supports.append(support)
            if support[0] == support[1]:
                self._zero_live += 1
        self.clear_shift_cache()
        if self._block is not None:
            examples = self._block.shape[2]
            shape = self._block.shape
            block = np.empty(
                (shape[0], shape[1], examples + 1, shape[3]), dtype=np.int64
            )
            # carry the evaluated (K, E) columns forward untouched ...
            block[:, :, :examples, :] = self._block
            # ... and evaluate only the new column's rotations
            for index, vec in enumerate(self.vectors):
                row = vec[-1:]
                for j, amount in enumerate(self._amounts):
                    block[index, j, examples] = (
                        row[0] if amount == 0 else shift_matrix(row, amount)[0]
                    )
            self._block = block
            if self._block_out is not None:
                out_shape = self._block_out.shape
                block_out = np.empty(
                    (out_shape[0], out_shape[1], examples + 1, out_shape[3]),
                    dtype=np.int64,
                )
                block_out[:, :, :examples, :] = self._block_out
                block_out[:, :, examples, :] = block[
                    :, :, examples, :
                ][:, :, self._out_idx]
                self._block_out = block_out
        self.appended_examples += 1
        self.reused_values += len(self.vectors)
