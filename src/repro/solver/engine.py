"""Backtracking search over sketch holes (the synthesis "solve" query).

Given a sketch, a program length ``L``, and a set of input-output
examples, the engine enumerates hole assignments — one component choice
plus operand/rotation fills per slot — and reports every assignment whose
program maps each example input to its expected output.  Pruning rules are
documented in the package docstring; all of them are *sound*: an exhausted
search proves no L-component completion of the sketch matches the
examples.

The hot loop is *batched*: for a fixed ``(component, operand1, rotation1)``
prefix, every ``(operand2, rotation2)`` fill is evaluated in one stacked
numpy operation, deduplicated through one vectorized 64-bit hash pass
(:meth:`ValueStore.hash_block`), and — on the final slot — goal-checked
with a single ``(K, E, |out_slots|)`` comparison.  The pre-batching
scalar path is kept behind ``SearchOptions(batched=False)`` for the
optimization-ablation benchmark; both paths enumerate candidates in the
same canonical order and visit the same node count (timeout cutoffs,
which interrupt a batch mid-flight, aside).

The caller (the CEGIS loop in :mod:`repro.core.cegis`) owns verification,
counterexamples, and cost accounting; the engine calls back on every
goal-matching assignment and honours the returned directive (stop, or
continue with a tightened cost bound).

Searches are *incremental across CEGIS rounds*: one :class:`SketchSearch`
survives the whole loop.  :meth:`SketchSearch.extend_examples` appends a
counterexample column to the persistent :class:`ValueStore` (evaluating
only the new column, see :meth:`ValueStore.append_example`) and
:meth:`SketchSearch.set_length` rebinds an exhausted length-``L`` search
to ``L+1``, seeding the new search from the existing store, caches, and
compiled components.  ``run(start_rank=...)`` resumes a counterexample
round at the root branch where the failed candidate was found — every
lower branch exhausted without an example match, and example sets only
ever grow, so those branches can never match again (the cross-round
frontier).

Pruning is a declarative rule table (:data:`PRUNE_RULES`), each rule
individually toggleable through :class:`SearchOptions` and individually
counted in :class:`SearchOutcome.pruned <SearchOutcome>` so the ablation
benchmark can attribute node reductions per rule.  All rules are *sound*
under the CEGIS discipline (lengths searched in increasing order):
see the package docstring for the per-rule soundness arguments.

For parallel search, the root slot's ``(component, operand1, rotation1)``
branches are numbered in enumeration order ("root ranks");
``run(root_ranks=...)`` restricts one engine to a subset of branches so a
driver (:mod:`repro.core.parallel`) can partition the space across
processes while preserving the global candidate order via
``current_root_rank``, and ``run(bound_poll=...)`` lets that driver
broadcast a tightened cost bound *mid-run* (work stealing with live
branch-and-bound, not just between rounds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields, replace

import numpy as np

from repro.core.sketch import (
    ComponentChoice,
    CtRotHole,
    RotationChoice,
    Sketch,
)
from repro.quill.builder import ProgramBuilder
from repro.quill.ir import Opcode, Program, PtConst, PtInput
from repro.quill.latency import LatencyModel
from repro.solver.values import ValueStore
from repro.spec.layout import Layout
from repro.spec.reference import Example


class _Timeout(Exception):
    pass


@dataclass
class SearchOutcome:
    """Result of one engine run, with throughput statistics."""

    status: str  # "stopped" | "exhausted" | "timeout"
    nodes: int
    candidates: int  # assignments that matched the examples
    seconds: float = 0.0  # wall time inside run()
    batches: int = 0  # stacked evaluations (batched mode only)
    dedup_hits: int = 0  # values rejected as observationally equivalent
    #: per-rule prune counters: rule name -> candidates/branches skipped
    pruned: dict[str, int] = field(default_factory=dict)
    reused_values: int = 0  # store entries carried in from earlier rounds
    appended_columns: int = 0  # example columns appended instead of rebuilt
    ranks_skipped: int = 0  # root branches skipped by the cross-round frontier
    shift_cache_peak: int = 0  # store's shift-cache high-water mark
    bound_updates: int = 0  # mid-run tightenings taken from bound_poll
    steals: int = 0  # work-stealing chunk grabs beyond an even share (driver)
    chunks: int = 0  # chunk tasks executed (driver)
    lemma_skips: int = 0  # candidates skipped via lemma-store value records

    @property
    def nodes_per_sec(self) -> float:
        return self.nodes / self.seconds if self.seconds > 0 else 0.0


@dataclass
class SearchStats:
    """Aggregate engine throughput over one synthesis phase (or run).

    Folds the per-run statistics of every :class:`SearchOutcome` a CEGIS
    run issued — counterexample rounds, length increments, parallel
    shards — into one profile (nodes/sec in ``BENCH_synthesis.json``,
    the session's per-pass timing report, the CLI's ``--timings``).
    """

    runs: int = 0  # engine invocations (rounds x shards)
    nodes: int = 0
    candidates: int = 0
    seconds: float = 0.0  # engine wall time (summed across shards)
    batches: int = 0  # stacked evaluations (batched engine only)
    dedup_hits: int = 0  # values rejected as observationally equivalent
    pruned: dict[str, int] = field(default_factory=dict)  # per-rule skips
    reused_values: int = 0  # store entries carried across CEGIS rounds
    appended_columns: int = 0  # counterexample columns appended in place
    ranks_skipped: int = 0  # root branches skipped by the frontier
    shift_cache_peak: int = 0  # high-water mark of live shift-cache entries
    bound_updates: int = 0  # mid-run bound tightenings (parallel driver)
    steals: int = 0  # work-stealing chunk grabs beyond an even share
    chunks: int = 0  # chunk tasks executed by the parallel driver
    lemma_hits: int = 0  # lemma-store consults that found a usable record
    lemma_misses: int = 0  # lemma-store consults that found nothing
    lemma_skips: int = 0  # search work avoided via lemma records
    seed_bounds: int = 0  # phase-2 entries tightened by a rewrite seed
    seed_retries: int = 0  # zero-accept seeded searches replayed unseeded

    #: additive integer fields folded verbatim by record/merge/minus
    _SUM_FIELDS = (
        "runs", "nodes", "candidates", "batches", "dedup_hits",
        "reused_values", "appended_columns", "ranks_skipped",
        "bound_updates", "steals", "chunks", "lemma_hits",
        "lemma_misses", "lemma_skips", "seed_bounds", "seed_retries",
    )

    @property
    def nodes_per_sec(self) -> float:
        return self.nodes / self.seconds if self.seconds > 0 else 0.0

    def record(self, outcome: "SearchOutcome") -> None:
        """Fold in one :class:`SearchOutcome`."""
        self.runs += 1
        self.nodes += outcome.nodes
        self.candidates += outcome.candidates
        self.seconds += outcome.seconds
        self.batches += outcome.batches
        self.dedup_hits += outcome.dedup_hits
        self.reused_values += outcome.reused_values
        self.appended_columns += outcome.appended_columns
        self.ranks_skipped += outcome.ranks_skipped
        self.bound_updates += outcome.bound_updates
        self.steals += outcome.steals
        self.chunks += outcome.chunks
        self.lemma_skips += outcome.lemma_skips
        self.shift_cache_peak = max(
            self.shift_cache_peak, outcome.shift_cache_peak
        )
        for rule, count in outcome.pruned.items():
            self.pruned[rule] = self.pruned.get(rule, 0) + count

    def merge(self, other: "SearchStats | None") -> "SearchStats":
        """A new stats object combining self with ``other`` (if any)."""
        merged = SearchStats(
            **{name: getattr(self, name) for name in self._SUM_FIELDS},
            seconds=self.seconds,
            shift_cache_peak=self.shift_cache_peak,
            pruned=dict(self.pruned),
        )
        if other is not None:
            for name in self._SUM_FIELDS:
                setattr(merged, name, getattr(merged, name) + getattr(other, name))
            merged.seconds += other.seconds
            merged.shift_cache_peak = max(
                merged.shift_cache_peak, other.shift_cache_peak
            )
            for rule, count in other.pruned.items():
                merged.pruned[rule] = merged.pruned.get(rule, 0) + count
        return merged

    def minus(self, other: "SearchStats | None") -> "SearchStats":
        """The stats accrued after ``other`` was captured (per-phase share).

        Every field is clamped at zero: ``perf_counter`` granularity (or a
        copied snapshot) can make a phase share come out a hair negative,
        and the floor checks compare these shares against exact ceilings —
        the clamp keeps ``a.merge(b).minus(b)`` well-ordered even when one
        side recorded zero seconds.  ``shift_cache_peak`` is a high-water
        mark, not a sum, so the minuend's peak is reported unchanged.
        """
        if other is None:
            return self.merge(None)
        diffed = SearchStats(
            **{
                name: max(0, getattr(self, name) - getattr(other, name))
                for name in self._SUM_FIELDS
            },
            seconds=max(0.0, self.seconds - other.seconds),
            shift_cache_peak=self.shift_cache_peak,
            pruned={
                rule: max(0, count - other.pruned.get(rule, 0))
                for rule, count in self.pruned.items()
            },
        )
        return diffed

    def summary(self) -> dict:
        """Machine-readable profile (JSON payloads, timing reports)."""
        return {
            "runs": self.runs,
            "nodes": self.nodes,
            "candidates": self.candidates,
            "seconds": round(self.seconds, 6),
            "nodes_per_sec": round(self.nodes_per_sec, 1),
            "batches": self.batches,
            "dedup_hits": self.dedup_hits,
            "pruned": dict(sorted(self.pruned.items())),
            "reused_values": self.reused_values,
            "appended_columns": self.appended_columns,
            "ranks_skipped": self.ranks_skipped,
            "shift_cache_peak": self.shift_cache_peak,
            "bound_updates": self.bound_updates,
            "steals": self.steals,
            "chunks": self.chunks,
            "lemma_hits": self.lemma_hits,
            "lemma_misses": self.lemma_misses,
            "lemma_skips": self.lemma_skips,
            "seed_bounds": self.seed_bounds,
            "seed_retries": self.seed_retries,
        }


#: The declarative pruning-rule catalog: rule name -> what the rule skips.
#: Every rule is sound under the CEGIS discipline (lengths searched in
#: increasing order) — disabling a rule enlarges the searched space but
#: never changes the synthesized program; the package docstring carries
#: the per-rule soundness arguments.  Each name is a boolean field on
#: :class:`SearchOptions` and a counter key in ``SearchOutcome.pruned``.
PRUNE_RULES: dict[str, str] = {
    "dedup": "observational-equivalence deduplication of candidate values",
    "commutative": "canonical operand order for commutative components",
    "adjacent": "canonical order for adjacent independent slots",
    "dead_value": "every pushed value must still be able to reach the output",
    "rotation_collapse": (
        "skip rotating a rotation wire when the composed same-sign amount "
        "is itself a legal rotation"
    ),
    "zero_elide": (
        "skip candidates whose all-zero/identity operand makes the result "
        "a value the store already holds"
    ),
    "cost_bound": "branch-and-bound cutoff on the latency*depth lower bound",
}


@dataclass(frozen=True)
class SearchOptions:
    """Pruning and evaluation toggles, used by the ablation benchmarks.

    One boolean per :data:`PRUNE_RULES` entry; all rules are sound, so
    disabling them only slows the search down (the defaults match the
    paper's section 6.2 configuration plus this port's extensions).
    ``batched`` is not a pruning rule: it switches between the
    stacked-numpy evaluation of the inner enumeration and the historical
    scalar path — both produce the same candidates in the same order.
    """

    dedup: bool = True
    commutative: bool = True
    adjacent: bool = True
    dead_value: bool = True
    rotation_collapse: bool = True
    zero_elide: bool = True
    cost_bound: bool = True
    batched: bool = True  # stacked evaluation of (op2, r2) fills

    def __post_init__(self):
        missing = [
            name for name in PRUNE_RULES
            if name not in {f.name for f in fields(self)}
        ]
        assert not missing, f"PRUNE_RULES out of sync: {missing}"

    @classmethod
    def no_prune(cls, **overrides) -> "SearchOptions":
        """Every pruning rule disabled (the ablation baseline)."""
        flags = {name: False for name in PRUNE_RULES}
        flags.update(overrides)
        return cls(**flags)

    @classmethod
    def from_rules(cls, rules, **overrides) -> "SearchOptions":
        """Options with exactly the named pruning rules enabled.

        ``rules`` is an iterable of rule names or one comma-separated
        string (the CLI's ``--prune-rules=`` format).
        """
        if isinstance(rules, str):
            rules = [name.strip() for name in rules.split(",") if name.strip()]
        rules = list(rules)
        unknown = sorted(set(rules) - set(PRUNE_RULES))
        if unknown:
            raise ValueError(
                f"unknown pruning rule(s) {', '.join(unknown)}; "
                f"available: {', '.join(PRUNE_RULES)}"
            )
        flags = {name: name in rules for name in PRUNE_RULES}
        flags.update(overrides)
        return cls(**flags)

    def without(self, *rules: str) -> "SearchOptions":
        """A copy with the named rules disabled (per-rule ablations)."""
        unknown = sorted(set(rules) - set(PRUNE_RULES))
        if unknown:
            raise ValueError(
                f"unknown pruning rule(s) {', '.join(unknown)}; "
                f"available: {', '.join(PRUNE_RULES)}"
            )
        return replace(self, **{name: False for name in rules})

    def enabled_rules(self) -> tuple[str, ...]:
        return tuple(
            name for name in PRUNE_RULES if getattr(self, name)
        )


@dataclass
class _Comp:
    """A sketch choice compiled against the current example set."""

    choice_index: int
    is_rotation: bool
    opcode: Opcode | None
    commutative: bool
    rots1: tuple[int, ...]
    rots2: tuple[int, ...] | None  # None for plaintext second operands
    pt_matrix: np.ndarray | None
    pt_ref: PtInput | PtConst | None
    rot_amounts: tuple[int, ...] | None  # explicit rotation components
    latency: float
    depth_inc: int
    max_uses: int
    rot_amount_set: frozenset | None = None  # fast member test for collapse
    pt_zero: bool = False  # plaintext operand is all-zero on the examples
    pt_ones: bool = False  # plaintext operand is all-one on the examples


_ADD_OPS = (Opcode.ADD_CC, Opcode.ADD_CP)
_SUB_OPS = (Opcode.SUB_CC, Opcode.SUB_CP)


def _apply(opcode: Opcode, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if opcode in _ADD_OPS:
        return a + b
    if opcode in _SUB_OPS:
        return a - b
    return a * b


class SketchSearch:
    """One synthesis query: sketch x length x example set."""

    def __init__(
        self,
        sketch: Sketch,
        layout: Layout,
        examples: list[Example],
        latency_model: LatencyModel,
        length: int,
        options: SearchOptions | None = None,
    ):
        if length < 1:
            raise ValueError("length must be >= 1")
        if not examples:
            raise ValueError("at least one example is required")
        self.sketch = sketch
        self.layout = layout
        self.length = length
        # owned copy: the CEGIS loop appends counterexamples through
        # extend_examples(), which must stay in lockstep with the store
        self.examples = list(examples)
        self.latency_model = latency_model
        self.options = options or SearchOptions()

        base = [
            np.stack([ex.ct_env[name] for ex in examples])
            for name in layout.ct_names
        ]
        self.goal = np.stack([ex.goal for ex in examples])
        self.out_slots = list(layout.output_slots)

        rots_with_identity = (0,) + tuple(sketch.rotations)
        if self.options.batched:
            self.store = ValueStore(
                base,
                amounts=rots_with_identity,
                out_slots=self.out_slots,
                capacity=len(base) + length,
            )
        else:
            self.store = ValueStore(base)
        self._pair_cache: dict[tuple, tuple] = {}
        self._gather_cache: dict[tuple, tuple] = {}
        self._final_cache: dict[tuple, tuple] = {}
        self._final_gather_cache: dict[tuple, tuple] = {}
        self.components: list[_Comp] = []
        for index, choice in enumerate(sketch.choices):
            self.components.append(
                self._compile_choice(index, choice, rots_with_identity)
            )
        self.rot_latency = latency_model.table[Opcode.ROTATE]
        self.min_latency = min(c.latency for c in self.components)
        #: Root branch the engine is currently exploring (see run()).
        self.current_root_rank = -1
        #: Optional :class:`~repro.core.lemmas.LemmaTap`, attached by the
        #: CEGIS loop for one run at a time.  Not a constructor argument:
        #: taps hold a live store handle and must never ride along when a
        #: search is pickled to parallel workers.
        self.lemma_tap = None
        # cross-round reuse accounting, consumed by the next run()
        self._pending_reused_values = 0
        self._pending_appended_columns = 0

    def _compile_choice(self, index, choice, rots_with_identity) -> _Comp:
        model = self.latency_model
        if isinstance(choice, RotationChoice):
            return _Comp(
                choice_index=index,
                is_rotation=True,
                opcode=Opcode.ROTATE,
                commutative=False,
                rots1=(0,),
                rots2=None,
                pt_matrix=None,
                pt_ref=None,
                rot_amounts=tuple(self.sketch.rotations),
                latency=model.table[Opcode.ROTATE],
                depth_inc=0,
                max_uses=choice.max_uses or self.length,
                rot_amount_set=frozenset(self.sketch.rotations),
            )
        assert isinstance(choice, ComponentChoice)
        rots1 = (
            rots_with_identity
            if isinstance(choice.operand1, CtRotHole)
            else (0,)
        )
        pt_matrix = None
        pt_ref = None
        rots2: tuple[int, ...] | None
        if choice.opcode.has_plain_operand:
            rots2 = None
            pt_ref = choice.operand2
            pt_matrix = self._plaintext_matrix(pt_ref)
        else:
            rots2 = (
                rots_with_identity
                if isinstance(choice.operand2, CtRotHole)
                else (0,)
            )
        return _Comp(
            choice_index=index,
            is_rotation=False,
            opcode=choice.opcode,
            commutative=choice.opcode.is_commutative,
            rots1=rots1,
            rots2=rots2,
            pt_matrix=pt_matrix,
            pt_ref=pt_ref,
            rot_amounts=None,
            latency=model.table[choice.opcode],
            depth_inc=1 if choice.opcode.is_multiply else 0,
            max_uses=choice.max_uses or self.length,
            pt_zero=pt_matrix is not None and not pt_matrix.any(),
            pt_ones=pt_matrix is not None and bool((pt_matrix == 1).all()),
        )

    def _plaintext_matrix(self, ref: PtInput | PtConst) -> np.ndarray:
        if isinstance(ref, PtInput):
            return np.stack([ex.pt_env[ref.name] for ex in self.examples])
        value = self.sketch.constants[ref.name]
        if isinstance(value, int):
            row = np.full(self.layout.vector_size, value, dtype=np.int64)
        else:
            row = np.array(value, dtype=np.int64)
        return np.tile(row, (len(self.examples), 1))

    # ------------------------------------------------------------------
    # Cross-round persistence (incremental CEGIS)
    # ------------------------------------------------------------------

    def extend_examples(self, new_examples) -> None:
        """Append CEGIS counterexamples to the persistent search state.

        The store gains one column per example (only the new column is
        evaluated, see :meth:`ValueStore.append_example`), the goal and
        plaintext matrices gain a row, and every enumeration-index cache
        survives untouched — they depend on store indices and rotation
        positions, not on the example count.
        """
        for example in new_examples:
            rows = [example.ct_env[name] for name in self.layout.ct_names]
            self.store.append_example(rows)
            self.goal = np.concatenate([self.goal, example.goal[None, :]])
            self.examples.append(example)
            for comp in self.components:
                if comp.pt_matrix is None:
                    continue
                if isinstance(comp.pt_ref, PtInput):
                    row = np.asarray(
                        example.pt_env[comp.pt_ref.name], dtype=np.int64
                    )
                else:
                    row = comp.pt_matrix[0]
                comp.pt_matrix = np.concatenate(
                    [comp.pt_matrix, row[None, :]]
                )
                comp.pt_zero = not comp.pt_matrix.any()
                comp.pt_ones = bool((comp.pt_matrix == 1).all())
            self._pending_appended_columns += 1
            self._pending_reused_values += len(self.store)

    def set_length(self, length: int) -> None:
        """Rebind an exhausted length-``L`` search to a new length.

        The new search is seeded from the exhausted frontier: the store's
        base values, rotation blocks, shift cache, hash index, and the
        compiled components all carry over; only the per-component use
        budgets are rebound (the store's rotation block grows on demand
        when the deeper search pushes past the old capacity).
        """
        if length < 1:
            raise ValueError("length must be >= 1")
        if len(self.store) != self.store.base_count:
            raise ValueError("set_length requires a fully backtracked store")
        self.length = length
        for comp, choice in zip(self.components, self.sketch.choices):
            comp.max_uses = choice.max_uses or length
        self._pending_reused_values += len(self.store)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def root_choice_count(self) -> int:
        """Number of root-slot branches (rank universe for partitioning).

        Only meaningful for ``length > 1``: a length-1 search goes
        straight to goal-directed final-slot enumeration, which is not
        rank-partitioned.
        """
        base = self.store.base_count
        total = 0
        for comp in self.components:
            if comp.is_rotation:
                total += base * len(comp.rot_amounts)
            else:
                total += base * len(comp.rots1)
        return total

    def run(
        self,
        on_candidate,
        cost_bound: float = float("inf"),
        deadline: float | None = None,
        root_ranks: frozenset[int] | set[int] | None = None,
        should_stop=None,
        start_rank: int = 0,
        bound_poll=None,
    ) -> SearchOutcome:
        """Enumerate matching assignments, calling back on each.

        ``on_candidate(assignment)`` must return ``(stop, new_bound)``:
        stop aborts the search (initial-solution mode); a non-None bound
        tightens branch-and-bound pruning (optimization mode).

        ``root_ranks`` restricts the search to the given root-slot
        branches (see :meth:`root_choice_count`); ``None`` searches all
        of them.  During enumeration ``self.current_root_rank`` names the
        branch the current candidate descends from, letting a parallel
        driver reconstruct the global canonical candidate order.

        ``start_rank`` skips every root branch below it — the CEGIS
        cross-round frontier: branches exhausted without an example match
        stay matchless under any extended example set, so a resumed round
        starts at the branch where the failed candidate was found.

        ``should_stop`` is polled alongside the deadline (every 4096
        nodes / every batch); returning True aborts with a "timeout"
        status — the parallel driver's cooperative cancellation.
        ``bound_poll``, polled at the same points, returns the current
        externally-shared cost bound (mid-round broadcast); the engine
        adopts it whenever it is tighter than its own.
        """
        self._on_candidate = on_candidate
        self._bound = cost_bound
        self._deadline = deadline
        self._should_stop = should_stop
        self._bound_poll = bound_poll
        self._bound_updates = 0
        self._root_ranks = frozenset(root_ranks) if root_ranks is not None else None
        self._start_rank = start_rank
        self._ranks_skipped = 0
        self._root_rank = -1
        self.current_root_rank = -1
        self._lemma_skips = 0
        self._nodes = 0
        self._batches = 0
        self._candidates = 0
        self._stopped = False
        self._assignment: list[tuple] = []
        self._uses = [0] * len(self.components)
        self._used_flags: list[bool] = []
        self._wire_origin: list[tuple[int, int] | None] = []
        self._unused = 0
        self._latency_sum = 0.0
        self._rotset: set[tuple[int, int]] = set()
        self._max_depth = 0
        self._pruned = {name: 0 for name in PRUNE_RULES}
        reused_values = self._pending_reused_values
        appended_columns = self._pending_appended_columns
        self._pending_reused_values = 0
        self._pending_appended_columns = 0
        dedup_before = self.store.dedup_hits
        started = time.perf_counter()
        status = "exhausted"
        try:
            self._slot(0)
        except _Timeout:
            status = "timeout"
        finally:
            # a timeout (or callback exception) aborts mid-descent; unwind
            # the persistent store so the next round starts from the base
            # frontier instead of a poisoned stack
            while len(self.store) > self.store.base_count:
                self.store.pop()
        if self._stopped:
            status = "stopped"
        self._pruned["dedup"] = self.store.dedup_hits - dedup_before
        return SearchOutcome(
            status=status,
            nodes=self._nodes,
            candidates=self._candidates,
            seconds=time.perf_counter() - started,
            batches=self._batches,
            dedup_hits=self._pruned["dedup"],
            pruned=self._pruned,
            reused_values=reused_values,
            appended_columns=appended_columns,
            ranks_skipped=self._ranks_skipped,
            shift_cache_peak=self.store.shift_cache_peak,
            bound_updates=self._bound_updates,
            lemma_skips=self._lemma_skips,
        )

    # -- bookkeeping helpers -----------------------------------------------

    def _poll(self) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise _Timeout()
        if self._should_stop is not None and self._should_stop():
            raise _Timeout()
        if self._bound_poll is not None:
            shared = self._bound_poll()
            if shared < self._bound:
                self._bound = shared
                self._bound_updates += 1

    def _tick(self) -> None:
        self._nodes += 1
        if self._nodes % 4096 == 0:
            self._poll()

    def _advance(self, count: int) -> None:
        """Account for one stacked evaluation of ``count`` candidates."""
        self._nodes += count
        self._batches += 1
        self._poll()

    def _enter_root(self, slot: int) -> bool:
        """Number root branches; True when this branch should be searched."""
        if slot != 0:
            return True
        self._root_rank += 1
        self.current_root_rank = self._root_rank
        if self._root_rank < self._start_rank:
            self._ranks_skipped += 1
            return False
        if self._root_ranks is None:
            return True
        return self._root_rank in self._root_ranks

    def _mark_used(self, *ops: int) -> list[int]:
        base = self.store.base_count
        newly = []
        for op in ops:
            if op is None or op < base:
                continue
            wire = op - base
            if not self._used_flags[wire]:
                self._used_flags[wire] = True
                self._unused -= 1
                newly.append(wire)
        return newly

    def _unmark(self, newly: list[int]) -> None:
        for wire in newly:
            self._used_flags[wire] = False
            self._unused += 1

    def _new_rotations(self, *pairs) -> list[tuple[int, int]]:
        added = []
        for op, rot in pairs:
            if op is None or rot == 0:
                continue
            key = (op, rot)
            if key not in self._rotset:
                self._rotset.add(key)
                added.append(key)
        return added

    def _cost_lb(self, slots_left: int) -> float:
        latency = (
            self._latency_sum
            + len(self._rotset) * self.rot_latency
            + slots_left * self.min_latency
        )
        return latency * (1 + self._max_depth)

    # -- slot enumeration -------------------------------------------------------

    def _slot(self, slot: int) -> None:
        if self._stopped:
            return
        if slot == self.length - 1:
            self._final_slot()
            return
        store = self.store
        base = store.base_count
        prev = self._assignment[slot - 1] if slot > 0 else None
        prev_wire = base + slot - 1
        zero_elide = self.options.zero_elide
        for comp in self.components:
            if self._uses[comp.choice_index] >= comp.max_uses:
                continue
            if comp.is_rotation:
                self._try_rotation_comp(slot, comp, prev, prev_wire)
                if self._stopped:
                    return
                continue
            avail = len(store)
            is_mul = comp.opcode.is_multiply
            for op1 in range(avail - 1, -1, -1):
                for r1 in comp.rots1:
                    if not self._enter_root(slot):
                        continue
                    if comp.pt_matrix is not None:
                        if zero_elide and self._elide_pt(comp, op1, r1):
                            continue
                        self._tick()
                        value = _apply(
                            comp.opcode, store.rotated(op1, r1), comp.pt_matrix
                        )
                        self._try_push(
                            slot, comp, op1, r1, None, 0, value, prev, prev_wire
                        )
                        if self._stopped:
                            return
                        continue
                    if (
                        zero_elide
                        and is_mul
                        and store.has_zero()
                        and store.is_zero_rotated(op1, r1)
                    ):
                        # every fill multiplies by the all-zero vector:
                        # each result is the zero value already live in
                        # the store, so dedup would reject every push
                        pairs, _ = self._pairs_for(comp, op1, r1, avail)
                        self._pruned["zero_elide"] += len(pairs)
                        continue
                    v1 = store.rotated(op1, r1)
                    if self.options.batched:
                        self._fill_ct_batched(
                            slot, comp, op1, r1, v1, avail, prev, prev_wire
                        )
                    else:
                        self._fill_ct_scalar(
                            slot, comp, op1, r1, v1, avail, prev, prev_wire
                        )
                    if self._stopped:
                        return

    def _elide_pt(self, comp, op1, r1) -> bool:
        """zero_elide for plaintext fills: result duplicates a store value.

        ``x (+|-) 0`` and ``x * 1`` reproduce ``rot(x, r1)``, which is a
        store value exactly when ``r1 == 0``; ``x * 0`` is the all-zero
        vector, a duplicate only when a zero value is live.  All three are
        pure dedup fast-paths: the skipped candidate would be rejected by
        ``try_push`` anyway, so the candidate stream is unchanged.
        """
        if comp.opcode.is_multiply:
            if comp.pt_zero and self.store.has_zero():
                self._pruned["zero_elide"] += 1
                return True
            if comp.pt_ones and r1 == 0:
                self._pruned["zero_elide"] += 1
                return True
            return False
        if comp.pt_zero and r1 == 0:
            self._pruned["zero_elide"] += 1
            return True
        return False

    def _pairs_for(self, comp, op1, r1, avail) -> tuple[list, int]:
        """The (op2, r2) fills for a fixed prefix, in canonical order.

        Returns ``(pairs, skipped)`` where ``skipped`` counts the fills
        removed by the commutative canonical-order rule; both are cached
        per prefix (the cache key is example-independent, so it survives
        CEGIS rounds and length rebinds).
        """
        key = (comp.choice_index, avail, op1, r1)
        cached = self._pair_cache.get(key)
        if cached is None:
            symmetry = self.options.commutative and comp.commutative
            pairs = []
            skipped = 0
            for op2 in range(avail - 1, -1, -1):
                for r2 in comp.rots2:
                    if symmetry and (op2, r2) < (op1, r1):
                        skipped += 1
                        continue
                    pairs.append((op2, r2))
            cached = (pairs, skipped)
            self._pair_cache[key] = cached
        return cached

    def _fill_ct_scalar(
        self, slot, comp, op1, r1, v1, avail, prev, prev_wire
    ) -> None:
        store = self.store
        pairs, skipped = self._pairs_for(comp, op1, r1, avail)
        self._pruned["commutative"] += skipped
        for op2, r2 in pairs:
            self._tick()
            value = _apply(comp.opcode, v1, store.shifted(op2, r2))
            self._try_push(
                slot, comp, op1, r1, op2, r2, value, prev, prev_wire
            )
            if self._stopped:
                return

    def _fill_ct_batched(
        self, slot, comp, op1, r1, v1, avail, prev, prev_wire
    ) -> None:
        store = self.store
        pairs, skipped = self._pairs_for(comp, op1, r1, avail)
        self._pruned["commutative"] += skipped
        if not pairs:
            return
        key = (comp.choice_index, avail, op1, r1)
        cached = self._gather_cache.get(key)
        if cached is None:
            ops = np.array([p[0] for p in pairs], dtype=np.intp)
            rot_positions = np.array(
                [store.rot_pos[p[1]] for p in pairs], dtype=np.intp
            )
            cached = (ops, rot_positions)
            self._gather_cache[key] = cached
        ops, rot_positions = cached
        self._advance(len(pairs))
        values = _apply(
            comp.opcode, v1[None, :, :], store.gather(ops, rot_positions)
        )
        hashes = store.hash_block(values).tolist()
        for k, (op2, r2) in enumerate(pairs):
            self._try_push(
                slot, comp, op1, r1, op2, r2, values[k], prev, prev_wire,
                key_hash=hashes[k],
            )
            if self._stopped:
                # keep node accounting identical to the scalar path on
                # early stops: uncharge the candidates never reached
                self._nodes -= len(pairs) - 1 - k
                return

    def _collapses(self, comp, op1, amount) -> bool:
        """rotation_collapse: rot(rot(x, a), b) with a, b same-sign and
        a+b legal — rot(x, a+b) computes the identical value in the same
        slot at the same cost, so the chained form is redundant."""
        base = self.store.base_count
        if op1 < base:
            return False
        origin = self._wire_origin[op1 - base]
        if origin is None:
            return False
        prior_amount = origin[1]
        if (prior_amount > 0) != (amount > 0):
            return False  # opposite signs do not compose under zero fill
        return (prior_amount + amount) in comp.rot_amount_set

    def _try_rotation_comp(self, slot, comp, prev, prev_wire) -> None:
        store = self.store
        collapse = self.options.rotation_collapse
        zero_elide = self.options.zero_elide
        for op1 in range(len(store) - 1, -1, -1):
            for amount in comp.rot_amounts:
                if not self._enter_root(slot):
                    continue
                if collapse and self._collapses(comp, op1, amount):
                    self._pruned["rotation_collapse"] += 1
                    continue
                if (
                    zero_elide
                    and store.has_zero()
                    and store.is_zero_rotated(op1, amount)
                ):
                    self._pruned["zero_elide"] += 1
                    continue
                self._tick()
                value = store.rotated(op1, amount).copy()
                self._try_push(
                    slot, comp, op1, amount, None, 0, value, prev, prev_wire
                )
                if self._stopped:
                    return

    def _try_push(
        self, slot, comp, op1, r1, op2, r2, value, prev, prev_wire,
        key_hash=None,
    ) -> None:
        # lemma tap: slot-0 ct-ct fills are single-instruction programs
        # over the base wires — record their full value matrices *before*
        # dedup, so a duplicate-valued distinct instruction is recorded
        # too (the length-1 consult enumerates it as its own candidate).
        # Slot 0 can only reference base wires, so its instruction set is
        # length-invariant; tapping the length-2 run alone keeps the
        # per-push overhead out of the big deeper searches
        if (
            slot == 0
            and op2 is not None
            and self.length == 2
            and self.lemma_tap is not None
        ):
            tap = self.lemma_tap
            tap.record_instr(tap.instr_id(comp, op1, r1, op2, r2), value)
        # canonical order for adjacent independent components (symmetry
        # breaking, paper 6.2): if this slot does not consume the previous
        # wire, require its encoding to exceed the previous slot's.
        encode = (comp.choice_index, op1, r1, -1 if op2 is None else op2, r2)
        if (
            self.options.adjacent
            and prev is not None
            and op1 != prev_wire
            and op2 != prev_wire
            and encode < prev[5]
        ):
            self._pruned["adjacent"] += 1
            return
        depth = self.store.depths[op1] + comp.depth_inc
        if op2 is not None:
            depth = max(depth, self.store.depths[op2] + comp.depth_inc)
        if not self.store.try_push(
            value, depth, force=not self.options.dedup, key_hash=key_hash
        ):
            return  # observational-equivalence dedup
        self._used_flags.append(False)
        self._wire_origin.append((op1, r1) if comp.is_rotation else None)
        self._unused += 1
        newly_used = self._mark_used(op1, op2)
        # dead-value bound: r remaining slots can retire at most r+1 values
        slots_left = self.length - 1 - slot
        if self.options.dead_value and self._unused > slots_left + 1:
            self._pruned["dead_value"] += 1
            self._undo_push(newly_used)
            return
        prev_depth = self._max_depth
        self._max_depth = max(self._max_depth, depth)
        self._latency_sum += comp.latency
        new_rots = (
            self._new_rotations((op1, r1), (op2, r2))
            if not comp.is_rotation
            else []
        )
        self._uses[comp.choice_index] += 1
        if (
            not self.options.cost_bound
            or self._cost_lb(slots_left) < self._bound
        ):
            self._assignment.append((comp, op1, r1, op2, r2, encode))
            self._slot(slot + 1)
            self._assignment.pop()
        else:
            self._pruned["cost_bound"] += 1
        self._uses[comp.choice_index] -= 1
        for key in new_rots:
            self._rotset.discard(key)
        self._latency_sum -= comp.latency
        self._max_depth = prev_depth
        self._undo_push(newly_used)

    def _undo_push(self, newly_used) -> None:
        self._unmark(newly_used)
        self._used_flags.pop()
        self._wire_origin.pop()
        self._unused -= 1
        self.store.pop()

    # -- final slot: goal-directed enumeration ---------------------------------

    def _final_slot(self) -> None:
        store = self.store
        base = store.base_count
        unused = [
            base + wire
            for wire, used in enumerate(self._used_flags)
            if not used
        ]
        if len(unused) > 2:
            return
        avail = range(len(store) - 1, -1, -1)
        collapse = self.options.rotation_collapse
        for comp in self.components:
            if self._uses[comp.choice_index] >= comp.max_uses:
                continue
            if comp.is_rotation:
                if len(unused) > 1:
                    continue
                ops = unused if unused else list(avail)
                for op1 in ops:
                    for amount in comp.rot_amounts:
                        if collapse and self._collapses(comp, op1, amount):
                            # the direct rotation of the chain's source is
                            # enumerated in this same slot with the same
                            # value, so the goal check loses nothing
                            self._pruned["rotation_collapse"] += 1
                            continue
                        self._tick()
                        value = store.shifted(op1, amount)
                        self._check_goal(comp, op1, amount, None, 0, value)
                        if self._stopped:
                            return
                continue
            if comp.pt_matrix is not None:
                if len(unused) > 1:
                    continue
                ops = unused if unused else list(avail)
                for op1 in ops:
                    for r1 in comp.rots1:
                        self._tick()
                        value = _apply(
                            comp.opcode,
                            store.shifted(op1, r1),
                            comp.pt_matrix,
                        )
                        self._check_goal(comp, op1, r1, None, 0, value)
                        if self._stopped:
                            return
                continue
            tap = self.lemma_tap
            if tap is not None and self.length == 1 and tap.consult_instrs:
                # length-1 searches are pure final-slot enumeration over
                # single instructions; a sibling kernel's recorded values
                # can rule a whole component out without evaluating it
                cands, _ = self._final_ct_cands(unused, comp)
                if cands and self._lemma_skip_component(tap, comp, cands):
                    self._lemma_skips += len(cands)
                    continue
            if self.options.batched:
                self._final_ct_batched(unused, comp)
            else:
                self._final_ct_scalar(unused, comp)
            if self._stopped:
                return

    def _lemma_skip_component(self, tap, comp, cands) -> bool:
        """True when every candidate of ``comp`` has a recorded value
        known not to match the goal (then none needs evaluating)."""
        for op1, r1, op2, r2 in cands:
            instr = tap.instr_id(comp, op1, r1, op2, r2)
            if not tap.known_miss(instr, self.out_slots, self.goal):
                return False
        # skipping candidates makes this run's final-value sweep partial
        tap.finals_valid = False
        return True

    def _final_ct_cands(self, unused, comp) -> tuple[list, int]:
        """Final-slot ct-ct fills in canonical order, plus the skip count.

        The commutative skip is only sound when the mirrored operand
        order is also enumerated (or op1 == op2, where swapping rotations
        mirrors the pair) — see :meth:`_final_pairs`.  With the
        commutative rule disabled, mirrors of commutative pairs are
        enumerated too, so the ablation baseline searches the genuinely
        unpruned space.  Cached per (component, store size, unused set):
        the key is example-independent and survives CEGIS rounds.
        """
        key = (comp.choice_index, len(self.store), tuple(unused))
        cached = self._final_cache.get(key)
        if cached is not None:
            return cached
        commutative_rule = comp.commutative and self.options.commutative
        cands = []
        skipped = 0
        for op1, op2, sym in self._final_pairs(
            unused, len(self.store), comp, mirrors=not commutative_rule
        ):
            for r1 in comp.rots1:
                for r2 in comp.rots2:
                    if (
                        commutative_rule
                        and (sym or op1 == op2)
                        and (op2, r2) < (op1, r1)
                    ):
                        skipped += 1
                        continue
                    cands.append((op1, r1, op2, r2))
        cached = (cands, skipped)
        self._final_cache[key] = cached
        return cached

    def _final_ct_scalar(self, unused, comp) -> None:
        store = self.store
        cands, skipped = self._final_ct_cands(unused, comp)
        self._pruned["commutative"] += skipped
        for op1, r1, op2, r2 in cands:
            self._tick()
            value = _apply(
                comp.opcode, store.shifted(op1, r1), store.shifted(op2, r2)
            )
            self._check_goal(comp, op1, r1, op2, r2, value)
            if self._stopped:
                return

    def _final_ct_batched(self, unused, comp) -> None:
        store = self.store
        cands, skipped = self._final_ct_cands(unused, comp)
        self._pruned["commutative"] += skipped
        if not cands:
            return
        key = (comp.choice_index, len(store), tuple(unused))
        cached = self._final_gather_cache.get(key)
        if cached is None:
            ops1 = np.array([c[0] for c in cands], dtype=np.intp)
            pos1 = np.array(
                [store.rot_pos[c[1]] for c in cands], dtype=np.intp
            )
            ops2 = np.array([c[2] for c in cands], dtype=np.intp)
            pos2 = np.array(
                [store.rot_pos[c[3]] for c in cands], dtype=np.intp
            )
            cached = (ops1, pos1, ops2, pos2)
            self._final_gather_cache[key] = cached
        ops1, pos1, ops2, pos2 = cached
        self._advance(len(cands))
        # evaluate only the output-slot columns: the goal check never
        # needs the full vectors, and the final slot pushes nothing
        values = _apply(
            comp.opcode,
            store.gather_out(ops1, pos1),
            store.gather_out(ops2, pos2),
        )
        if self.lemma_tap is not None:
            self.lemma_tap.record_final_block(values)
        # one (K, E, |out_slots|) comparison against the goal
        hits = (values == self.goal[None, :, :]).all(axis=(1, 2))
        for k in np.flatnonzero(hits):
            op1, r1, op2, r2 = cands[int(k)]
            self._record_candidate(comp, op1, r1, op2, r2)
            if self._stopped:
                # scalar would have ticked only up to this candidate
                self._nodes -= len(cands) - 1 - int(k)
                return

    def _final_pairs(self, unused, avail, comp, mirrors: bool):
        """Operand pairs for the final slot, covering all unused wires.

        The third element says whether the mirrored order of the pair is
        also generated, which gates the commutative symmetry skip.
        ``mirrors`` forces mirror generation for commutative components —
        the commutative-rule-off ablation baseline (for non-commutative
        components mirrors are always required, and generated).
        """
        if len(unused) == 2:
            a, b = unused
            yield a, b, False
            if mirrors:
                yield b, a, False
        elif len(unused) == 1:
            u = unused[0]
            for other in range(avail):
                yield u, other, False
                if other != u and mirrors:
                    yield other, u, False
        else:  # only when length == 1 (no previous wires exist)
            for a in range(avail):
                for b in range(avail):
                    yield a, b, True

    def _check_goal(self, comp, op1, r1, op2, r2, value) -> None:
        out = value[:, self.out_slots]
        if self.lemma_tap is not None:
            self.lemma_tap.record_final(out)
        if not np.array_equal(out, self.goal):
            return
        self._record_candidate(comp, op1, r1, op2, r2)

    def _record_candidate(self, comp, op1, r1, op2, r2) -> None:
        self._candidates += 1
        encode = (comp.choice_index, op1, r1, -1 if op2 is None else op2, r2)
        self._assignment.append((comp, op1, r1, op2, r2, encode))
        stop, new_bound = self._on_candidate(list(self._assignment))
        self._assignment.pop()
        if new_bound is not None and new_bound < self._bound:
            self._bound = new_bound
        if stop:
            self._stopped = True


# ---------------------------------------------------------------------------
# Materialization: assignment -> Quill program
# ---------------------------------------------------------------------------

def materialize_assignment(
    sketch: Sketch,
    layout: Layout,
    assignment: list[tuple],
    name: str = "synthesized",
) -> Program:
    """Build the Quill program for a search assignment.

    Operand rotations become explicit ``rot`` instructions, shared across
    identical uses (the builder's CSE), which is how the paper counts
    instructions in Table 2.
    """
    builder = ProgramBuilder(layout.vector_size, name=name)
    input_refs = [builder.ct_input(n) for n in layout.ct_names]
    pt_refs = {n: builder.pt_input(n) for n in layout.pt_names}
    for const_name, const_value in sketch.constants.items():
        builder.constant(const_name, const_value)
    base = len(input_refs)
    wire_refs: list = []

    def resolve(index: int):
        if index < base:
            return input_refs[index]
        return wire_refs[index - base]

    last = None
    for comp, op1, r1, op2, r2, _ in assignment:
        if comp.is_rotation:
            last = builder.rotate(resolve(op1), r1)
            wire_refs.append(last)
            continue
        first = builder.rotate(resolve(op1), r1)
        if comp.pt_ref is not None:
            second = (
                pt_refs[comp.pt_ref.name]
                if isinstance(comp.pt_ref, PtInput)
                else comp.pt_ref
            )
        else:
            second = builder.rotate(resolve(op2), r2)
        if comp.opcode in _ADD_OPS:
            last = builder.add(first, second)
        elif comp.opcode in _SUB_OPS:
            last = builder.sub(first, second)
        else:
            last = builder.mul(first, second)
        wire_refs.append(last)
    return builder.build(last)
