"""The unified Porcupine front door.

Everything downstream of the compiler core — the CLI, benchmarks,
examples, and user code — goes through the :class:`Porcupine` session::

    from repro.api import Porcupine

    session = Porcupine()
    compiled = session.compile("box_blur")       # synthesize + cache
    session.run("box_blur", backend="he")        # execute encrypted
    session.run_many("box_blur", 8, backend="he")  # batched serving path
    session.compile_suite(["gx", "gy", "sobel"]) # concurrent batch

Building blocks, all replaceable per session:

* :class:`KernelRegistry` / :class:`KernelDefinition` — the kernel
  suite as runtime-extensible data (specs, sketches, baselines,
  composition graphs).
* :class:`PassPipeline` — ``synthesize -> optimize -> compose -> lower
  -> codegen`` as named, hookable, timed passes.
* :class:`CompileCache` — content-addressed results keyed on
  spec + sketch + config, optionally persisted on disk.
* execution backends — ``interpreter`` and ``he`` built in, more via
  :func:`register_backend`.
"""

from repro.api.backends import (
    BackendResult,
    BatchResult,
    ExecutionBackend,
    HEBackend,
    InterpreterBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.api.cache import CacheEntry, CompileCache, compile_key
from repro.api.passes import (
    CompositionError,
    Pass,
    PassContext,
    PassPipeline,
    PassTiming,
)
from repro.api.registry import KernelDefinition, KernelRegistry
from repro.api.session import CompiledKernel, Porcupine

__all__ = [
    "BackendResult",
    "BatchResult",
    "CacheEntry",
    "CompiledKernel",
    "CompileCache",
    "CompositionError",
    "ExecutionBackend",
    "HEBackend",
    "InterpreterBackend",
    "KernelDefinition",
    "KernelRegistry",
    "Pass",
    "PassContext",
    "PassPipeline",
    "PassTiming",
    "Porcupine",
    "backend_names",
    "compile_key",
    "get_backend",
    "register_backend",
]
