"""The :class:`Porcupine` session: one front door to the whole system.

A session owns a kernel registry, a pass pipeline, a compile cache, and
a set of execution backends, and exposes the operations everything else
(CLI, benchmarks, examples, tests) builds on::

    from repro.api import Porcupine

    session = Porcupine()
    compiled = session.compile("box_blur")          # CEGIS, cached
    result = session.run("box_blur", backend="he")  # encrypted execution
    suite = session.compile_suite(["gx", "gy", "sobel"])

Compilation is content-addressed: a second ``compile`` of the same
kernel with the same configuration returns the cached program without
re-running synthesis (pass ``force=True`` to bypass).  Sessions are
independent — registering kernels or editing the pipeline in one never
leaks into another.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.api.backends import (
    BackendResult,
    BatchResult,
    ExecutionBackend,
    get_backend,
)
from repro.api.cache import (
    CacheEntry,
    CompileCache,
    compile_key,
    composed_key,
)
from repro.api.passes import PassContext, PassPipeline, PassTiming
from repro.api.registry import KernelDefinition, KernelRegistry
from repro.core.cegis import SynthesisConfig, SynthesisResult
from repro.core.sketch import Sketch
from repro.quill.ir import Program
from repro.quill.noise import multiplicative_depth
from repro.spec.reference import Spec


@dataclass
class CompiledKernel:
    """Everything one ``Porcupine.compile`` call produced."""

    name: str
    program: Program
    seal_code: str
    synthesis: SynthesisResult | None
    cache_hit: bool
    cache_key: str
    pass_timings: list[PassTiming] = field(default_factory=list)
    pass_metrics: dict[str, dict] = field(default_factory=dict)
    components: dict[str, Program] = field(default_factory=dict)
    composed_from: tuple[str, ...] = ()

    @property
    def is_composed(self) -> bool:
        return self.synthesis is None

    def summary(self) -> dict:
        """Machine-readable stats (the CLI's ``--json`` payload)."""
        payload = {
            "kernel": self.name,
            "instructions": self.program.instruction_count(),
            "rotations": self.program.rotation_count(),
            "relins": self.program.relin_count(),
            "galois_keys": self.program.galois_key_count(),
            "relin_mode": self.program.relin_mode,
            "depth": self.program.critical_depth(),
            "multiplicative_depth": multiplicative_depth(self.program),
            "cache": {"hit": self.cache_hit, "key": self.cache_key},
            "pass_seconds": {
                t.name: round(t.seconds, 6) for t in self.pass_timings
            },
        }
        if self.synthesis is not None:
            payload["synthesis"] = {
                "components": self.synthesis.components,
                "examples": self.synthesis.examples_used,
                "initial_time": self.synthesis.initial_time,
                "total_time": self.synthesis.total_time,
                "initial_cost": self.synthesis.initial_cost,
                "final_cost": self.synthesis.final_cost,
                "proof_complete": self.synthesis.proof_complete,
                "nodes": self.synthesis.nodes,
            }
            if self.synthesis.search_stats is not None:
                payload["synthesis"]["profile"] = (
                    self.synthesis.search_stats.summary()
                )
        if self.pass_metrics:
            payload["pass_metrics"] = self.pass_metrics
        if self.composed_from:
            payload["composed_from"] = list(self.composed_from)
        return payload

    def timing_report(self) -> str:
        """Human-readable per-pass timing (and engine throughput) table."""
        lines = [f"pass timings for {self.name}:"]
        if not self.pass_timings:
            lines.append("  (cache hit: no passes ran)")
        for timing in self.pass_timings:
            line = f"  {timing.name:12s} {timing.seconds * 1e3:10.2f} ms"
            profile = self.pass_metrics.get(timing.name)
            if profile and "nodes" in profile:
                line += (
                    f"  [{profile['nodes']} nodes @ "
                    f"{profile['nodes_per_sec']:,.0f} nodes/s, "
                    f"{profile['runs']} run(s), "
                    f"{profile['dedup_hits']} dedup hits]"
                )
            lines.append(line)
            if profile and "nodes" in profile:
                pruned = {
                    rule: count
                    for rule, count in (profile.get("pruned") or {}).items()
                    if count
                }
                if pruned:
                    lines.append(
                        "    pruned: "
                        + ", ".join(
                            f"{rule}={count}"
                            for rule, count in pruned.items()
                        )
                    )
                reuse_bits = []
                if profile.get("reused_values"):
                    reuse_bits.append(
                        f"{profile['reused_values']} values carried"
                    )
                if profile.get("appended_columns"):
                    reuse_bits.append(
                        f"{profile['appended_columns']} example column(s) "
                        "appended"
                    )
                if profile.get("ranks_skipped"):
                    reuse_bits.append(
                        f"{profile['ranks_skipped']} root branch(es) skipped"
                    )
                if profile.get("shift_cache_peak"):
                    reuse_bits.append(
                        f"shift cache peak {profile['shift_cache_peak']}"
                    )
                if profile.get("lemma_hits") or profile.get("lemma_skips"):
                    reuse_bits.append(
                        f"lemma store {profile.get('lemma_hits', 0)} hit(s) / "
                        f"{profile.get('lemma_misses', 0)} miss(es) / "
                        f"{profile.get('lemma_skips', 0)} skip(s)"
                    )
                if profile.get("seed_bounds"):
                    reuse_bits.append(
                        f"{profile['seed_bounds']} seeded bound(s), "
                        f"{profile.get('seed_retries', 0)} unseeded retry(ies)"
                    )
                if reuse_bits:
                    lines.append("    reuse: " + ", ".join(reuse_bits))
                if profile.get("chunks"):
                    lines.append(
                        f"    stealing: {profile['chunks']} chunk(s), "
                        f"{profile.get('steals', 0)} steal(s), "
                        f"{profile.get('bound_updates', 0)} mid-round bound "
                        "update(s)"
                    )
        rewrite = self.pass_metrics.get("rewrite")
        if rewrite:
            before, after = rewrite.get("before", {}), rewrite.get("after", {})
            lines.append(
                "  optimizer: "
                f"{before.get('executable_ops', '?')} -> "
                f"{after.get('executable_ops', '?')} ops "
                f"({before.get('rotations', '?')} -> "
                f"{after.get('rotations', '?')} rot, "
                f"{before.get('relins', '?')} -> "
                f"{after.get('relins', '?')} relin), "
                f"verified={rewrite.get('verified')}"
            )
            for entry in rewrite.get("passes", []):
                if not entry.get("changed"):
                    continue
                delta = entry.get("delta", {})
                delta_text = (
                    ", ".join(
                        f"{key} {value:+d}" for key, value in delta.items()
                    )
                    or "mode change"
                )
                lines.append(
                    f"    {entry['name']:14s} {entry['seconds'] * 1e3:8.2f} ms"
                    f"  {delta_text}"
                )
        lower = self.pass_metrics.get("lower")
        if lower:
            lines.append(
                f"  displacement: {lower['max_left']} left / "
                f"{lower['max_right']} right "
                f"(budget {lower['budget_left']} / {lower['budget_right']})"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        origin = "cache" if self.cache_hit else "synthesis"
        return (
            f"CompiledKernel({self.name}: "
            f"{self.program.instruction_count()} instructions, {origin})"
        )


class Porcupine:
    """A compiler session: registry + pipeline + cache + backends."""

    def __init__(
        self,
        registry: KernelRegistry | None = None,
        *,
        cache: CompileCache | None = None,
        cache_dir: str | Path | None = None,
        pipeline: PassPipeline | None = None,
        seed: int | None = None,
        synthesis_defaults: dict | None = None,
        workers: int | None = None,
        default_backend: str = "interpreter",
        dump_ir: bool = False,
    ):
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache or cache_dir, not both")
        self.registry = registry if registry is not None else KernelRegistry.builtin()
        self.cache = cache if cache is not None else CompileCache(cache_dir)
        self.pipeline = pipeline if pipeline is not None else PassPipeline.default()
        self.seed = seed
        self.synthesis_defaults = dict(synthesis_defaults or {})
        if workers is not None:
            self.synthesis_defaults["workers"] = workers
        self.default_backend = default_backend
        self.dump_ir = dump_ir  # print IR after each rewrite pass (stderr)
        self._backends: dict[tuple, ExecutionBackend] = {}
        self._key_locks: dict[str, threading.Lock] = {}
        self._key_locks_guard = threading.Lock()

    # -- registry conveniences -------------------------------------------

    def kernels(self) -> list[str]:
        return self.registry.names()

    def definition(self, kernel: str) -> KernelDefinition:
        return self.registry.get(kernel)

    def spec(self, kernel: str) -> Spec:
        return self.registry.spec(kernel)

    def register(self, *args, **kwargs) -> KernelDefinition:
        """Register a kernel on this session's registry.

        Accepts either a ready :class:`KernelDefinition` (plus optional
        ``override=``) or the keyword form of
        :meth:`KernelRegistry.register_kernel`.
        """
        if len(args) == 1 and isinstance(args[0], KernelDefinition):
            return self.registry.register(args[0], **kwargs)
        return self.registry.register_kernel(*args, **kwargs)

    def baseline(self, kernel: str) -> Program:
        definition = self.registry.get(kernel)
        if definition.baseline is None:
            raise KeyError(f"kernel {kernel!r} has no hand-written baseline")
        return definition.baseline()

    # -- configuration ----------------------------------------------------

    def config_for(
        self, kernel: str | KernelDefinition, **overrides
    ) -> SynthesisConfig:
        """Per-kernel synthesis configuration with session defaults applied.

        Precedence (lowest to highest): kernel ``synth_settings``,
        session ``synthesis_defaults``, session ``seed``, explicit
        ``overrides``.
        """
        definition = (
            kernel
            if isinstance(kernel, KernelDefinition)
            else self.registry.get(kernel)
        )
        settings = dict(definition.synth_settings)
        settings.update(self.synthesis_defaults)
        if self.seed is not None:
            settings["seed"] = self.seed
        settings.update(overrides)
        return SynthesisConfig(**settings)

    def _resolve(
        self, kernel: str | Spec | KernelDefinition
    ) -> KernelDefinition:
        if isinstance(kernel, KernelDefinition):
            return kernel
        if isinstance(kernel, Spec):
            if kernel.name in self.registry:
                registered = self.registry.get(kernel.name)
                if registered.spec() is kernel:
                    return registered
            from repro.core.sketches import default_sketch_for

            return KernelDefinition(
                name=kernel.name,
                spec=lambda spec=kernel: spec,
                sketch=default_sketch_for,
                description=kernel.description,
            )
        return self.registry.get(kernel)

    def _cache_key(
        self,
        definition: KernelDefinition,
        spec: Spec,
        sketch: Sketch | None,
        config: SynthesisConfig,
    ) -> str:
        if definition.composition is None:
            resolved = sketch or (
                definition.sketch(spec) if definition.sketch else None
            )
            return compile_key(spec, resolved, config)
        component_keys = {}
        for name in definition.composition.kernels:
            sub = self.registry.get(name)
            sub_spec = sub.spec()
            component_keys[name] = self._cache_key(
                sub, sub_spec, None, self.config_for(sub)
            )
        return composed_key(
            spec, definition.composition, component_keys, config
        )

    def _lock_for(self, key: str) -> threading.Lock:
        with self._key_locks_guard:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.Lock()
            return lock

    # -- compilation ------------------------------------------------------

    def compile(
        self,
        kernel: str | Spec | KernelDefinition,
        *,
        sketch: Sketch | None = None,
        config: SynthesisConfig | None = None,
        seed: int | None = None,
        force: bool = False,
        use_cache: bool = True,
    ) -> CompiledKernel:
        """Compile one kernel through the pass pipeline, cache-aware.

        Args:
            kernel: registered name, a :class:`Spec`, or a full
                :class:`KernelDefinition`.
            sketch: override the definition's sketch.
            config: override the synthesis configuration entirely.
            seed: shorthand for overriding just the synthesis seed.
            force: recompile even on a cache hit (the result is stored
                back, refreshing the entry).
            use_cache: disable both lookup and store for this call.
        """
        definition = self._resolve(kernel)
        spec = definition.spec()
        if definition.is_composed and (
            sketch is not None or config is not None or seed is not None
        ):
            raise ValueError(
                f"kernel {definition.name!r} is composed: it has no sketch "
                "or synthesis config of its own. Override its component "
                "definitions (registry.override) or the session's "
                "seed/synthesis_defaults instead."
            )
        if config is None:
            overrides = {} if seed is None else {"seed": seed}
            config = self.config_for(definition, **overrides)
        elif seed is not None:
            from dataclasses import replace

            config = replace(config, seed=seed)
        key = self._cache_key(definition, spec, sketch, config)

        with self._lock_for(key):
            if use_cache and not force:
                entry = self.cache.get(key)
                if entry is not None:
                    return CompiledKernel(
                        name=definition.name,
                        program=entry.program,
                        seal_code=entry.seal_code,
                        synthesis=entry.to_synthesis(),
                        cache_hit=True,
                        cache_key=key,
                        composed_from=tuple(entry.composed_from or ()),
                    )
            ctx = PassContext(
                session=self,
                definition=definition,
                spec=spec,
                config=config,
                sketch=sketch,
            )
            self.pipeline.run(ctx)
            program = ctx.require_program("compile")
            seal_code = ctx.seal_code or ""
            composed_from = tuple(sorted(ctx.components))
            compiled = CompiledKernel(
                name=definition.name,
                program=program,
                seal_code=seal_code,
                synthesis=ctx.synthesis,
                cache_hit=False,
                cache_key=key,
                pass_timings=list(ctx.timings),
                pass_metrics=dict(ctx.metrics),
                components=dict(ctx.components),
                composed_from=composed_from,
            )
            if use_cache:
                if ctx.synthesis is not None:
                    entry = CacheEntry.from_synthesis(
                        ctx.synthesis, seal_code, final_program=program
                    )
                else:
                    from repro.quill.printer import format_program

                    entry = CacheEntry(
                        program_text=format_program(program),
                        seal_code=seal_code,
                        composed_from=list(composed_from) or None,
                    )
                self.cache.put(key, entry)
            return compiled

    def compile_suite(
        self,
        kernels: Sequence[str] | None = None,
        *,
        max_workers: int | None = None,
        **compile_kwargs,
    ) -> dict[str, CompiledKernel]:
        """Compile many kernels concurrently (``concurrent.futures``).

        Results preserve the requested order; the per-key locks make
        concurrent compilations of shared components (e.g. ``gx`` under
        both ``sobel`` and ``harris``) synthesize once.
        """
        names = list(kernels) if kernels is not None else self.kernels()
        with ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="porcupine"
        ) as pool:
            futures = {
                name: pool.submit(self.compile, name, **compile_kwargs)
                for name in names
            }
            return {name: future.result() for name, future in futures.items()}

    # -- execution --------------------------------------------------------

    def backend(self, name: str | None = None, **kwargs) -> ExecutionBackend:
        """The session's backend instance for ``name``.

        Instances are cached per (name, construction kwargs), so e.g.
        HE backends with different seeds never alias each other.
        """
        name = name or self.default_backend
        key = (name, tuple(sorted(kwargs.items())))
        instance = self._backends.get(key)
        if instance is None:
            instance = get_backend(name, **kwargs)
            self._backends[key] = instance
        return instance

    def run(
        self,
        kernel: str | Spec | KernelDefinition,
        inputs: dict[str, np.ndarray] | None = None,
        *,
        backend: str | ExecutionBackend | None = None,
        seed: int = 0,
        domain_plan: bool = False,
        exec_workers: int = 1,
        guard=None,
        noise_margin_bits: float | None = None,
        escalate: bool = True,
        **compile_kwargs,
    ) -> BackendResult:
        """Compile (cached) and execute a kernel on a named backend.

        Without explicit ``inputs``, random in-range inputs are drawn
        from ``seed`` (bounded by the spec's backend bound so nothing
        overflows the plaintext modulus).  ``domain_plan`` and
        ``exec_workers`` select the HE executor's NTT-domain planner and
        lockstep thread count (both bit-identical to the defaults).

        ``guard``/``noise_margin_bits`` enable the HE backend's runtime
        noise guards and predictive admission; with ``escalate`` (the
        default) a tripped guard transparently recompiles and re-runs on
        the next-larger parameter preset instead of failing.
        """
        compiled = self.compile(kernel, **compile_kwargs)
        spec = self._resolve(kernel).spec()
        if inputs is None:
            inputs = self._random_inputs(spec, seed)
        return self.execute(
            compiled, inputs, backend=backend, seed=seed, spec=spec,
            domain_plan=domain_plan, exec_workers=exec_workers,
            guard=guard, noise_margin_bits=noise_margin_bits,
            escalate=escalate,
        )

    def execute(
        self,
        compiled: CompiledKernel,
        inputs: dict[str, np.ndarray],
        *,
        backend: str | ExecutionBackend | None = None,
        seed: int = 0,
        spec: Spec | None = None,
        domain_plan: bool = False,
        exec_workers: int = 1,
        guard=None,
        noise_margin_bits: float | None = None,
        escalate: bool = True,
    ) -> BackendResult:
        """Execute an already-compiled kernel (no compile step).

        The serving scheduler's entry point: compilation (possibly in a
        worker process against the shared cache) and execution are
        separate stages there, so this takes the :class:`CompiledKernel`
        directly instead of re-resolving through :meth:`compile`.
        ``spec`` is only needed for ad-hoc kernels not in the registry.
        """
        if spec is None:
            spec = self.spec(compiled.name)
        engine = self._resolve_backend(
            backend, seed, domain_plan=domain_plan, exec_workers=exec_workers,
            guard=guard, noise_margin_bits=noise_margin_bits,
            escalate=escalate,
        )
        return engine.execute(compiled.program, spec, inputs)

    def execute_batch(
        self,
        compiled: CompiledKernel,
        envs: Sequence[dict[str, np.ndarray]],
        *,
        backend: str | ExecutionBackend | None = None,
        seed: int = 0,
        spec: Spec | None = None,
        domain_plan: bool = False,
        exec_workers: int = 1,
        guard=None,
        noise_margin_bits: float | None = None,
        escalate: bool = True,
    ) -> BatchResult:
        """Execute one compiled kernel over a batch of environments.

        Like :meth:`execute`, but in lockstep over the whole batch (one
        ``run_many`` tape pass on the HE backend).  This is what the
        serving batch scheduler calls once per coalesced batch; results
        are positionally aligned with ``envs``.
        """
        if spec is None:
            spec = self.spec(compiled.name)
        engine = self._resolve_backend(
            backend, seed, domain_plan=domain_plan, exec_workers=exec_workers,
            guard=guard, noise_margin_bits=noise_margin_bits,
            escalate=escalate,
        )
        execute_many = getattr(engine, "execute_many", None)
        if execute_many is not None:
            return execute_many(compiled.program, spec, list(envs))
        import time as _time

        started = _time.perf_counter()
        results = [
            engine.execute(compiled.program, spec, env) for env in envs
        ]
        return BatchResult(
            backend=getattr(engine, "name", "custom"),
            kernel=compiled.program.name,
            results=results,
            batch_size=len(results),
            total_seconds=_time.perf_counter() - started,
        )

    def _resolve_backend(
        self,
        backend: str | ExecutionBackend | None,
        seed: int,
        *,
        domain_plan: bool = False,
        exec_workers: int = 1,
        guard=None,
        noise_margin_bits: float | None = None,
        escalate: bool = True,
    ) -> ExecutionBackend:
        """Name-or-instance backend dispatch shared by run/run_many."""
        if isinstance(backend, str) or backend is None:
            name = backend or self.default_backend
            kwargs = (
                self.he_backend_kwargs(
                    seed, domain_plan=domain_plan, exec_workers=exec_workers,
                    guard=guard, noise_margin_bits=noise_margin_bits,
                    escalate=escalate,
                )
                if name == "he"
                else {}
            )
            return self.backend(name, **kwargs)
        return backend

    @staticmethod
    def he_backend_kwargs(
        seed: int,
        *,
        domain_plan: bool = False,
        exec_workers: int = 1,
        guard=None,
        noise_margin_bits: float | None = None,
        escalate: bool = True,
        max_escalations: int | None = None,
    ) -> dict:
        """Construction kwargs for the session's cached HE backend.

        Default flags are omitted so legacy call sites keep aliasing the
        same backend instance (the cache keys on the kwargs tuple).
        """
        kwargs: dict = {"seed": seed}
        if domain_plan:
            kwargs["domain_plan"] = True
        if exec_workers != 1:
            kwargs["exec_workers"] = exec_workers
        if guard is not None:
            kwargs["guard"] = guard
        if noise_margin_bits is not None:
            kwargs["noise_margin_bits"] = noise_margin_bits
        if not escalate:
            kwargs["escalate"] = False
        if max_escalations is not None:
            kwargs["max_escalations"] = max_escalations
        return kwargs

    def executor_stats(self):
        """Merged HE :class:`~repro.runtime.profiler.ExecutorStats`
        across every backend this session has built (NTT rows performed
        and elided, arena high-water bytes, lockstep worker count)."""
        from repro.runtime.profiler import ExecutorStats

        merged = ExecutorStats()
        for engine in self._backends.values():
            stats_fn = getattr(engine, "executor_stats", None)
            if stats_fn is not None:
                merged = merged.merge(stats_fn())
        return merged

    def _random_inputs(self, spec: Spec, seed: int) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {
            p.name: rng.integers(
                0, spec.backend_bound + 1, p.shape, dtype=np.int64
            )
            for p in spec.layout.inputs
        }

    def run_many(
        self,
        kernel: str | Spec | KernelDefinition,
        inputs: Sequence[dict[str, np.ndarray]] | int,
        *,
        backend: str | ExecutionBackend | None = None,
        seed: int = 0,
        domain_plan: bool = False,
        exec_workers: int = 1,
        guard=None,
        noise_margin_bits: float | None = None,
        escalate: bool = True,
        **compile_kwargs,
    ) -> BatchResult:
        """Compile once and execute a batch of inputs in lockstep.

        ``inputs`` is either a list of logical environments or an integer
        batch size (random in-range environments drawn from ``seed``).
        On the HE backend the whole batch is encrypted into stacked
        ciphertexts and evaluated by one pass over the compiled tape —
        key generation, plaintext encoding, and program setup are paid
        once (the serving path; also exposed as ``--batch`` on the CLI).
        Backends without a native ``execute_many`` fall back to a loop.
        """
        compiled = self.compile(kernel, **compile_kwargs)
        definition = self._resolve(kernel)
        spec = definition.spec()
        if isinstance(inputs, int):
            if inputs < 1:
                raise ValueError("batch size must be >= 1")
            # vary the user-side (ciphertext) inputs per run; server-side
            # plaintext operands are shared across the batch, as in serving
            batch = inputs
            shared = self._random_inputs(spec, seed)
            pt_names = set(spec.layout.pt_names)
            inputs = [shared]
            for i in range(1, batch):
                drawn = self._random_inputs(spec, seed + i)
                inputs.append(
                    {
                        name: shared[name] if name in pt_names else drawn[name]
                        for name in shared
                    }
                )
        return self.execute_batch(
            compiled, inputs, backend=backend, seed=seed, spec=spec,
            domain_plan=domain_plan, exec_workers=exec_workers,
            guard=guard, noise_margin_bits=noise_margin_bits,
            escalate=escalate,
        )

    def run_all(
        self,
        kernels: Iterable[str] | None = None,
        *,
        backend: str | None = None,
        seed: int = 0,
    ) -> dict[str, BackendResult]:
        """Execute every (or the given) kernel once; keyed by name."""
        names = list(kernels) if kernels is not None else self.kernels()
        return {
            name: self.run(name, backend=backend, seed=seed) for name in names
        }

    def __repr__(self) -> str:
        return (
            f"Porcupine(kernels={len(self.registry)}, "
            f"pipeline={self.pipeline.pass_names}, cache={self.cache!r})"
        )
