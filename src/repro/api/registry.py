"""The kernel registry: every kernel the session can compile, as data.

A :class:`KernelDefinition` bundles what the frozen module-level tables
(``ALL_SPECS``, ``KERNEL_SYNTH_SETTINGS``, ``BASELINE_BUILDERS``) and the
hardcoded ``compose_*`` helpers used to hold: the spec factory, the sketch
factory, per-kernel synthesis settings, the hand-written baseline, and —
for multi-step kernels — the declarative composition graph.  Sessions get
a fresh registry seeded with the paper's eleven kernels and can register
new ones (or override built-ins) at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from repro.baselines import BASELINE_BUILDERS
from repro.core.multistep import HARRIS_GRAPH, SOBEL_GRAPH, CompositionGraph
from repro.core.sketch import Sketch
from repro.core.sketches import KERNEL_SYNTH_SETTINGS, default_sketch_for
from repro.quill.ir import Program
from repro.spec.kernels import ALL_SPECS
from repro.spec.reference import Spec


@dataclass(frozen=True)
class KernelDefinition:
    """Everything the compile pipeline needs to know about one kernel.

    Attributes:
        name: registry key (must match ``spec().name`` for clarity in
            reports, but is authoritative for lookup).
        spec: zero-argument factory producing the kernel specification.
        sketch: factory producing the synthesis sketch from the spec;
            ``None`` for composed kernels (they have no sketch of their
            own — their components do).
        synth_settings: per-kernel :class:`SynthesisConfig` overrides
            (search depth, timeouts).
        baseline: factory for the expert hand-written baseline program,
            when one exists.
        composition: declarative multi-step graph; when set, the kernel
            is compiled by compiling each ``composition.kernels`` entry
            and materializing the graph instead of running CEGIS.
        description: one-line summary (defaults to the spec's).
    """

    name: str
    spec: Callable[[], Spec]
    sketch: Callable[[Spec], Sketch] | None = None
    synth_settings: dict = field(default_factory=dict)
    baseline: Callable[[], Program] | None = None
    composition: CompositionGraph | None = None
    description: str = ""

    @property
    def is_composed(self) -> bool:
        return self.composition is not None

    def describe(self) -> str:
        return self.description or self.spec().description


class KernelRegistry:
    """Name -> :class:`KernelDefinition` mapping with override control."""

    def __init__(self, definitions: Iterator[KernelDefinition] = ()):
        self._definitions: dict[str, KernelDefinition] = {}
        for definition in definitions:
            self.register(definition)

    @classmethod
    def builtin(cls) -> "KernelRegistry":
        """A fresh registry holding the paper's kernel suite."""
        registry = cls()
        graphs = {"sobel": SOBEL_GRAPH, "harris": HARRIS_GRAPH}
        for factory in ALL_SPECS:
            spec = factory()
            composition = graphs.get(spec.name)
            registry.register(
                KernelDefinition(
                    name=spec.name,
                    spec=factory,
                    sketch=None if composition else default_sketch_for,
                    synth_settings=dict(
                        KERNEL_SYNTH_SETTINGS.get(spec.name, {})
                    ),
                    baseline=BASELINE_BUILDERS.get(spec.name),
                    composition=composition,
                    description=spec.description,
                )
            )
        return registry

    # -- mutation ---------------------------------------------------------

    def register(
        self, definition: KernelDefinition, override: bool = False
    ) -> KernelDefinition:
        """Add a kernel; re-registering a name requires ``override=True``."""
        if definition.name in self._definitions and not override:
            raise ValueError(
                f"kernel {definition.name!r} is already registered "
                "(pass override=True to replace it)"
            )
        if definition.composition is None and definition.sketch is None:
            raise ValueError(
                f"kernel {definition.name!r} needs either a sketch "
                "(direct synthesis) or a composition graph (multi-step)"
            )
        self._definitions[definition.name] = definition
        return definition

    def register_kernel(
        self,
        name: str,
        spec: Callable[[], Spec] | Spec,
        *,
        sketch: Callable[[Spec], Sketch] | Sketch | None = None,
        synth_settings: dict | None = None,
        baseline: Callable[[], Program] | None = None,
        composition: CompositionGraph | None = None,
        description: str = "",
        override: bool = False,
    ) -> KernelDefinition:
        """Convenience wrapper accepting plain values instead of factories."""
        spec_factory = spec if callable(spec) else (lambda s=spec: s)
        if sketch is None or callable(sketch):
            sketch_factory = sketch
        else:
            sketch_factory = lambda _spec, s=sketch: s  # noqa: E731
        return self.register(
            KernelDefinition(
                name=name,
                spec=spec_factory,
                sketch=sketch_factory,
                synth_settings=dict(synth_settings or {}),
                baseline=baseline,
                composition=composition,
                description=description,
            ),
            override=override,
        )

    def unregister(self, name: str) -> None:
        del self._definitions[name]

    def override(self, name: str, **changes) -> KernelDefinition:
        """Replace fields of an existing definition (e.g. a new sketch)."""
        return self.register(
            replace(self.get(name), **changes), override=True
        )

    # -- lookup -----------------------------------------------------------

    def get(self, name: str) -> KernelDefinition:
        try:
            return self._definitions[name]
        except KeyError:
            raise KeyError(
                f"unknown kernel {name!r}; registered: {', '.join(self.names())}"
            ) from None

    def baseline_program(self, name: str) -> Program:
        """The hand-written (unoptimized, eager) program for a kernel.

        Direct kernels return their expert baseline; composed kernels
        are stitched from their components' baselines.  This is the
        deterministic no-synthesis reference the optimizer benchmark and
        equivalence tests compare against.
        """
        definition = self.get(name)
        if definition.composition is None:
            if definition.baseline is None:
                raise KeyError(f"kernel {name!r} has no hand-written baseline")
            return definition.baseline()
        from repro.core.multistep import compose

        components = {
            kernel: self.baseline_program(kernel)
            for kernel in definition.composition.kernels
        }
        return compose(definition.composition, components)

    def spec(self, name: str) -> Spec:
        return self.get(name).spec()

    def names(self) -> list[str]:
        return list(self._definitions)

    def direct_names(self) -> list[str]:
        return [d.name for d in self if not d.is_composed]

    def composed_names(self) -> list[str]:
        return [d.name for d in self if d.is_composed]

    def __contains__(self, name: object) -> bool:
        return name in self._definitions

    def __iter__(self) -> Iterator[KernelDefinition]:
        return iter(self._definitions.values())

    def __len__(self) -> int:
        return len(self._definitions)

    def __repr__(self) -> str:
        return f"KernelRegistry({', '.join(self.names())})"
