"""The compile pipeline as named, hookable passes.

Porcupine's Figure 3 flow — specification + sketch in, verified SEAL
kernel out — runs here as five explicit passes:

``synthesize``
    Phase-1 CEGIS: the smallest verified completion of the sketch
    (direct kernels only; composed kernels skip it).
``optimize``
    Phase-2 branch-and-bound cost minimization.
``compose``
    Multi-step kernels only: compile each component through the session
    (hitting its compile cache), materialize the declarative
    :class:`~repro.core.multistep.CompositionGraph`, and verify the
    stitched program against the composed specification.
``rewrite``
    The middle-end optimizer: every compiled program — synthesized or
    composed — runs the :mod:`repro.quill.rewrite` pass suite (CSE,
    rotation composition/hoisting, dead-code elimination, lazy
    relinearization, Galois-key analysis), with each pass re-verified
    against the kernel specification.  Disabled by
    ``SynthesisConfig(optimize=False)``.
``lower``
    Legality checks before code generation: the layout's margins must
    absorb the program's worst-case slot displacement, so Quill's
    shift-with-zero-fill semantics coincide with BFV's cyclic rotation.
    The measured displacement lands in ``ctx.metrics["lower"]``.
``codegen``
    Emit SEAL C++.

Every pass is timed; observers register ``on_pass_start``/``on_pass_end``
hooks (telemetry, logging, test instrumentation), and the pass list
itself can be edited (``insert_after``, ``replace``, ``remove``) to
customize a session's pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.api.registry import KernelDefinition
from repro.core.cegis import (
    SynthesisConfig,
    SynthesisResult,
    minimize_cost,
    synthesize_initial,
)
from repro.core.codegen import generate_seal_code
from repro.core.multistep import compose
from repro.core.sketch import Sketch
from repro.quill.ir import Program
from repro.quill.rewrite import default_pass_manager
from repro.runtime.executor import check_displacement
from repro.spec.reference import Spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Porcupine


class CompositionError(Exception):
    """Raised when a composed program fails verification."""


@dataclass
class PassTiming:
    """Wall-clock seconds one pass spent on one kernel."""

    name: str
    seconds: float


@dataclass
class PassContext:
    """Mutable state threaded through the pipeline for one compilation."""

    session: "Porcupine"
    definition: KernelDefinition
    spec: Spec
    config: SynthesisConfig
    sketch: Sketch | None = None
    synthesis: SynthesisResult | None = None
    program: Program | None = None
    seal_code: str | None = None
    components: dict[str, Program] = field(default_factory=dict)
    timings: list[PassTiming] = field(default_factory=list)
    metrics: dict[str, dict] = field(default_factory=dict)  # per-pass stats

    def require_program(self, pass_name: str) -> Program:
        if self.program is None:
            raise RuntimeError(
                f"pass {pass_name!r} needs a program, but no earlier pass "
                f"produced one for {self.definition.name!r}"
            )
        return self.program


PassFn = Callable[[PassContext], None]
PassHook = Callable[[str, PassContext], None]


@dataclass(frozen=True)
class Pass:
    """One named pipeline stage."""

    name: str
    run: PassFn


# ---------------------------------------------------------------------------
# The default passes
# ---------------------------------------------------------------------------


def synthesize_pass(ctx: PassContext) -> None:
    if ctx.definition.is_composed:
        return
    if ctx.sketch is None:
        if ctx.definition.sketch is None:
            raise ValueError(
                f"kernel {ctx.definition.name!r} has no sketch and no "
                "composition graph"
            )
        ctx.sketch = ctx.definition.sketch(ctx.spec)
    ctx.synthesis = synthesize_initial(ctx.spec, ctx.sketch, ctx.config)
    ctx.program = ctx.synthesis.program
    if ctx.synthesis.search_stats is not None:
        ctx.metrics["synthesize"] = ctx.synthesis.search_stats.summary()


def optimize_pass(ctx: PassContext) -> None:
    if ctx.definition.is_composed or not ctx.config.optimize:
        return
    assert ctx.synthesis is not None and ctx.sketch is not None
    if (
        ctx.config.seed_rewrites
        and not ctx.config.seed_programs
        and ctx.definition.baseline is not None
    ):
        # resolve the flag here, where the baseline is in reach: the
        # rewrite frontier of the expert baseline seeds phase 2's entry
        # bound (the config copy keeps the session's config untouched —
        # and seed fields are cache-key-excluded either way)
        from dataclasses import replace as dc_replace

        from repro.quill.rewrite import seed_frontier

        ctx.config = dc_replace(
            ctx.config,
            seed_programs=tuple(
                seed_frontier(ctx.definition.baseline(), ctx.spec)
            ),
        )
    before = ctx.synthesis.search_stats
    ctx.synthesis = minimize_cost(
        ctx.spec, ctx.sketch, ctx.synthesis, ctx.config
    )
    ctx.program = ctx.synthesis.program
    after = ctx.synthesis.search_stats
    if after is not None:
        # minimize_cost folds phase-1 stats in; report just this pass's share
        ctx.metrics["optimize"] = after.minus(before).summary()


def compose_pass(ctx: PassContext) -> None:
    graph = ctx.definition.composition
    if graph is None:
        return
    for kernel_name in graph.kernels:
        if kernel_name not in ctx.components:
            ctx.components[kernel_name] = ctx.session.compile(
                kernel_name
            ).program
    program = compose(graph, ctx.components)
    verdict = ctx.spec.verify_program(program)
    if not verdict.equivalent:
        raise CompositionError(
            f"{ctx.definition.name}: composed program disagrees with the "
            f"specification (counterexample {verdict.counterexample})"
        )
    ctx.program = program


def rewrite_pass(ctx: PassContext) -> None:
    """Run the verified middle-end pass suite on every compiled program."""
    if not ctx.config.optimize:
        return
    program = ctx.require_program("rewrite")
    dump = None
    if getattr(ctx.session, "dump_ir", False):
        import sys

        def dump(pass_name: str, dumped: Program) -> None:
            print(
                f"# --- after {pass_name} ---\n{dumped}\n",
                file=sys.stderr,
            )

    manager = default_pass_manager(dump=dump)
    result = manager.run(program, spec=ctx.spec)
    ctx.program = result.program
    ctx.metrics["rewrite"] = result.summary()


def lower_pass(ctx: PassContext) -> None:
    report = check_displacement(ctx.require_program("lower"), ctx.spec)
    ctx.metrics["lower"] = report.summary()


def codegen_pass(ctx: PassContext) -> None:
    ctx.seal_code = generate_seal_code(ctx.require_program("codegen"))


DEFAULT_PASSES = (
    Pass("synthesize", synthesize_pass),
    Pass("optimize", optimize_pass),
    Pass("compose", compose_pass),
    Pass("rewrite", rewrite_pass),
    Pass("lower", lower_pass),
    Pass("codegen", codegen_pass),
)


class PassPipeline:
    """An ordered, editable pass list with start/end hooks."""

    def __init__(self, passes: tuple[Pass, ...] | list[Pass] | None = None):
        self._passes: list[Pass] = list(
            DEFAULT_PASSES if passes is None else passes
        )
        self._on_start: list[PassHook] = []
        self._on_end: list[Callable[[str, PassContext, float], None]] = []

    @classmethod
    def default(cls) -> "PassPipeline":
        return cls()

    # -- observation ------------------------------------------------------

    def on_pass_start(self, hook: PassHook) -> PassHook:
        self._on_start.append(hook)
        return hook

    def on_pass_end(
        self, hook: Callable[[str, PassContext, float], None]
    ) -> Callable[[str, PassContext, float], None]:
        self._on_end.append(hook)
        return hook

    # -- editing ----------------------------------------------------------

    @property
    def pass_names(self) -> list[str]:
        return [p.name for p in self._passes]

    def _index_of(self, name: str) -> int:
        for index, p in enumerate(self._passes):
            if p.name == name:
                return index
        raise KeyError(
            f"no pass named {name!r}; pipeline has {self.pass_names}"
        )

    def insert_before(self, name: str, new_pass: Pass) -> None:
        self._passes.insert(self._index_of(name), new_pass)

    def insert_after(self, name: str, new_pass: Pass) -> None:
        self._passes.insert(self._index_of(name) + 1, new_pass)

    def replace(self, name: str, new_pass: Pass) -> None:
        self._passes[self._index_of(name)] = new_pass

    def remove(self, name: str) -> Pass:
        return self._passes.pop(self._index_of(name))

    # -- execution --------------------------------------------------------

    def run(self, ctx: PassContext) -> PassContext:
        for p in self._passes:
            for hook in self._on_start:
                hook(p.name, ctx)
            started = time.perf_counter()
            p.run(ctx)
            elapsed = time.perf_counter() - started
            ctx.timings.append(PassTiming(p.name, elapsed))
            for hook in self._on_end:
                hook(p.name, ctx, elapsed)
        return ctx

    def __repr__(self) -> str:
        return f"PassPipeline({' -> '.join(self.pass_names)})"
