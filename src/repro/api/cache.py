"""Content-addressed compile cache for synthesized kernels.

Synthesis dominates Porcupine's compile time (minutes for the slow
kernels, as in Table 3), but its output is a pure function of the
specification, the sketch, and the synthesis configuration.  The cache
keys on a SHA-256 over canonical fingerprints of all three (plus the
package version), so *any* semantic change — a different rotation
restriction, a new ``max_components``, another seed — misses cleanly,
while re-running the same benchmark suite hits every kernel.

Entries live in memory; pass a directory for persistence across
processes (programs are stored in Quill's canonical text format and
re-parsed on load, so the cache files are human-auditable).  On-disk
writes are atomic (write-to-temp + ``os.replace``), so any number of
processes — the serving compile workers all share one cache directory —
can read and write concurrently without ever observing a torn entry.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import threading
from dataclasses import asdict as dataclass_asdict
from dataclasses import dataclass, fields
from functools import cached_property
from pathlib import Path

from repro import __version__
from repro.core.cegis import SynthesisConfig, SynthesisResult
from repro.core.sketch import ComponentChoice, RotationChoice, Sketch
from repro.quill.parser import parse_program
from repro.quill.printer import format_program
from repro.spec.reference import Spec

_FORMAT = 2  # bump to invalidate every existing cache entry


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def spec_fingerprint(spec: Spec) -> dict:
    """Canonical content summary of a specification.

    The reference implementation is fingerprinted by source text
    (best-effort: opaque callables fall back to their qualified name), so
    registering a same-named spec with different semantics misses.
    """
    try:
        reference = inspect.getsource(spec.reference)
    except (OSError, TypeError):
        reference = getattr(spec.reference, "__qualname__", repr(spec.reference))
    layout = spec.layout
    return {
        "name": spec.name,
        "layout": {
            "vector_size": layout.vector_size,
            "origin": layout.origin,
            "inputs": [
                [p.name, p.kind, list(p.shape), list(p.slots)]
                for p in layout.inputs
            ],
            "output_slots": list(layout.output_slots),
            "output_shape": list(layout.output_shape),
        },
        "reference": reference,
        "example_bound": spec.example_bound,
        "backend_bound": spec.backend_bound,
        "params_name": spec.params_name,
    }


def sketch_fingerprint(sketch: Sketch) -> dict:
    """Canonical content summary of a sketch."""
    choices = []
    for choice in sketch.choices:
        if isinstance(choice, RotationChoice):
            choices.append(["rot", choice.max_uses])
        else:
            assert isinstance(choice, ComponentChoice)
            choices.append(
                [
                    choice.opcode.value,
                    str(choice.operand1),
                    str(choice.operand2),
                    choice.max_uses,
                ]
            )
    return {
        "name": sketch.name,
        "style": sketch.style,
        "choices": choices,
        "rotations": list(sketch.rotations),
        "constants": {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in sorted(sketch.constants.items())
        },
    }


def config_fingerprint(config: SynthesisConfig) -> dict:
    """Canonical content summary of a synthesis configuration."""
    summary = {}
    for f in fields(config):
        if f.name in (
            "workers",
            "incremental",
            "checkpoint_path",
            "lemma_path",
            "seed_programs",
            "seed_rewrites",
            "shard",
        ):
            # parallel search and cross-round frontier reuse are both
            # bit-identical to a serial from-scratch search whenever the
            # search completes, so neither may split the
            # content-addressed cache.  (When optimize_timeout fires
            # mid-search, the cached best-effort program already depends
            # on machine speed — worker count is no different.)  The
            # checkpoint file location is pure operational plumbing — a
            # resumed run is byte-identical to an uninterrupted one.
            # Likewise the lemma store, rewrite seed bounds, and shard
            # descriptors are advisory-but-sound accelerations: warm,
            # seeded, and shard-merged runs all synthesize the same
            # bytes as a cold serial run, so none may split the cache.
            continue
        value = getattr(config, f.name)
        if f.name == "latency_model":
            value = value.name if value is not None else None
        elif f.name == "search_options":
            # pruning toggles are sound (identical programs), but the
            # ablation flags change which engine ran; keep them in the
            # key so ablation runs never alias the default entries
            value = dataclass_asdict(value) if value is not None else None
        summary[f.name] = value
    return summary


def graph_fingerprint(graph) -> dict:
    """Canonical content summary of a composition graph."""
    steps = []
    for step in graph.steps:
        kind = type(step).__name__
        if kind == "KernelStep":
            steps.append([kind, step.id, step.kernel, list(step.args)])
        elif kind == "OpStep":
            steps.append([kind, step.id, step.op, step.a, step.b])
        else:
            value = step.value
            steps.append(
                [kind, step.id, list(value) if isinstance(value, tuple) else value]
            )
    return {
        "name": graph.name,
        "inputs": list(graph.inputs),
        "steps": steps,
        "output": graph.output,
    }


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def compile_key(
    spec: Spec, sketch: Sketch | None, config: SynthesisConfig
) -> str:
    """Content hash addressing one direct compilation."""
    return _digest(
        {
            "format": _FORMAT,
            "version": __version__,
            "spec": spec_fingerprint(spec),
            "sketch": sketch_fingerprint(sketch) if sketch is not None else None,
            "config": config_fingerprint(config),
        }
    )


def composed_key(
    spec: Spec,
    graph,
    component_keys: dict[str, str],
    config: SynthesisConfig | None = None,
) -> str:
    """Content hash addressing one multi-step composition.

    Includes each component's own compile key, so a change anywhere in a
    component's spec, sketch, or config invalidates the composition too
    — plus the composed kernel's *own* configuration, which gates the
    post-composition rewrite passes (``optimize``) even though it drives
    no synthesis of its own.
    """
    return _digest(
        {
            "format": _FORMAT,
            "version": __version__,
            "spec": spec_fingerprint(spec),
            "graph": graph_fingerprint(graph),
            "components": dict(sorted(component_keys.items())),
            "config": (
                config_fingerprint(config) if config is not None else None
            ),
        }
    )


# ---------------------------------------------------------------------------
# Entries
# ---------------------------------------------------------------------------


_STAT_FIELDS = (
    "spec_name",
    "components",
    "examples_used",
    "initial_time",
    "total_time",
    "initial_cost",
    "final_cost",
    "proof_complete",
    "nodes",
)


@dataclass
class CacheEntry:
    """One cached compilation: programs, SEAL code, synthesis statistics."""

    program_text: str
    seal_code: str
    stats: dict | None = None
    initial_program_text: str | None = None
    composed_from: list[str] | None = None
    synthesis_program_text: str | None = None

    @classmethod
    def from_synthesis(
        cls,
        result: SynthesisResult,
        seal_code: str,
        final_program=None,
    ) -> "CacheEntry":
        """Entry for a synthesized kernel.

        ``final_program`` is the program after post-synthesis rewrite
        passes; it is what a cache hit must return.  The raw synthesis
        output is preserved separately so a reconstructed
        :class:`SynthesisResult` describes the same program on a hit as
        on a miss (its stats — costs, node counts — are about that
        program, not the rewritten one).
        """
        return cls(
            program_text=format_program(
                result.program if final_program is None else final_program
            ),
            seal_code=seal_code,
            stats={name: getattr(result, name) for name in _STAT_FIELDS},
            initial_program_text=format_program(result.initial_program),
            synthesis_program_text=format_program(result.program),
        )

    @cached_property
    def program(self):
        """The cached program, parsed once per entry (Quill programs are
        immutable SSA, so repeated hits can safely share the object)."""
        return parse_program(self.program_text)

    @cached_property
    def initial_program(self):
        if not self.initial_program_text:
            return self.program
        return parse_program(self.initial_program_text)

    @cached_property
    def synthesis_program(self):
        """The raw (pre-rewrite) synthesis output, as synthesized."""
        if not self.synthesis_program_text:
            return self.program
        return parse_program(self.synthesis_program_text)

    def to_synthesis(self) -> SynthesisResult | None:
        """Rebuild the statistics object (examples are not persisted)."""
        if self.stats is None:
            return None
        return SynthesisResult(
            program=self.synthesis_program,
            initial_program=self.initial_program,
            **self.stats,
        )

    def to_json(self) -> dict:
        return {
            "program": self.program_text,
            "seal_code": self.seal_code,
            "stats": self.stats,
            "initial_program": self.initial_program_text,
            "composed_from": self.composed_from,
            "synthesis_program": self.synthesis_program_text,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CacheEntry":
        return cls(
            program_text=payload["program"],
            seal_code=payload["seal_code"],
            stats=payload.get("stats"),
            initial_program_text=payload.get("initial_program"),
            composed_from=payload.get("composed_from"),
            synthesis_program_text=payload.get("synthesis_program"),
        )


class CompileCache:
    """Thread-safe in-memory cache with optional on-disk persistence.

    On-disk entries are integrity-checked: ``put`` embeds a SHA-256
    digest of the entry payload and ``get`` verifies it before trusting
    the bytes.  A truncated, bit-flipped, or otherwise corrupt file is
    *quarantined* (renamed to ``<key>.json.corrupt`` for post-mortem)
    and reported as a miss, so the caller transparently recompiles
    instead of crashing — or worse, executing a tampered program.  The
    ``quarantined`` counter records every such event.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._memory: dict[str, CacheEntry] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _file_for(self, key: str) -> Path:
        assert self.path is not None
        return self.path / f"{key}.json"

    def _quarantine(self, file: Path, reason: str) -> None:
        """Move a corrupt entry aside and count it (never raises)."""
        self.quarantined += 1
        try:
            os.replace(file, file.parent / f"{file.name}.corrupt")
        except OSError:
            pass  # already quarantined/removed by a concurrent reader
        import warnings

        warnings.warn(
            f"quarantined corrupt compile-cache entry {file.name} "
            f"({reason}); the kernel will be recompiled",
            RuntimeWarning,
            stacklevel=3,
        )

    def _load_entry(self, file: Path, payload: str) -> CacheEntry | None:
        """Parse + digest-verify one on-disk entry; quarantine on failure."""
        try:
            decoded = json.loads(payload)
            stored = decoded.pop("digest", None)
            if stored is not None and stored != _digest(decoded):
                self._quarantine(file, "digest mismatch")
                return None
            return CacheEntry.from_json(decoded)
        except (json.JSONDecodeError, KeyError, TypeError, AttributeError):
            self._quarantine(file, "unreadable payload")
            return None

    def get(self, key: str) -> CacheEntry | None:
        with self._lock:
            entry = self._memory.get(key)
            if entry is None and self.path is not None:
                file = self._file_for(key)
                try:
                    # read without an exists() pre-check: a concurrent
                    # clear() between check and read would crash, while
                    # a concurrent put() is invisible thanks to the
                    # atomic-replace write (old or new file, never torn)
                    payload = file.read_text()
                except OSError:
                    entry = None
                else:
                    entry = self._load_entry(file, payload)
                    if entry is not None:
                        self._memory[key] = entry
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        with self._lock:
            self._memory[key] = entry
            if self.path is not None:
                self.path.mkdir(parents=True, exist_ok=True)
                target = self._file_for(key)
                # write-to-temp + atomic rename: concurrent readers (other
                # compile workers sharing this directory) see either the
                # complete old entry or the complete new one, never a
                # partial write; the temp name is per-process *and*
                # per-thread so two writers never collide on it either
                # (last replace wins, and both entries are identical by
                # content-addressing anyway)
                tmp = target.with_suffix(
                    f".tmp.{os.getpid()}.{threading.get_ident()}"
                )
                payload = entry.to_json()
                payload["digest"] = _digest(payload)
                tmp.write_text(json.dumps(payload, indent=2))
                os.replace(tmp, target)

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            if self.path is not None and self.path.exists():
                for file in self.path.glob("*.json"):
                    file.unlink(missing_ok=True)
                for file in self.path.glob("*.json.corrupt"):
                    file.unlink(missing_ok=True)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory or disk (0.0 if none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._memory)

    def __repr__(self) -> str:
        where = f"disk={self.path}" if self.path else "memory"
        return (
            f"CompileCache({where}, entries={len(self._memory)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
