"""Pluggable execution backends for compiled kernels.

Two ship built-in, selected by name:

* ``interpreter`` — Quill's behavioural model over plain numpy vectors
  (:mod:`repro.quill.interpreter`): instant, noiseless, ideal for
  functional checks and CI.
* ``he`` — real BFV encryption through
  :class:`repro.runtime.executor.HEExecutor`: the ground truth, with
  noise budgets and wall-clock latency.

Both accept *logical* inputs (one array per layout input), pack them
according to the kernel's layout, execute, unpack the output, and compare
against the plaintext reference — so backend parity is directly
checkable.  Third-party backends register through
:func:`register_backend`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.he.errors import NoiseBudgetExhausted
from repro.quill.interpreter import evaluate
from repro.quill.ir import Program
from repro.spec.reference import Spec


@dataclass
class BackendResult:
    """One execution: decrypted/evaluated output versus the reference."""

    backend: str
    kernel: str
    logical_output: np.ndarray
    expected_output: np.ndarray
    matches_reference: bool
    wall_time: float
    noise_budget: int | None = None
    details: dict = field(default_factory=dict)


@dataclass
class BatchResult:
    """One batched execution: per-run results plus amortized timings."""

    backend: str
    kernel: str
    results: list[BackendResult]
    batch_size: int
    total_seconds: float
    setup_seconds: float = 0.0

    @property
    def all_match(self) -> bool:
        return all(r.matches_reference for r in self.results)

    @property
    def seconds_per_run(self) -> float:
        return self.total_seconds / max(1, self.batch_size)

    @property
    def runs_per_second(self) -> float:
        return (
            self.batch_size / self.total_seconds if self.total_seconds else 0.0
        )


class ExecutionBackend(Protocol):
    """What the session needs from an execution backend."""

    name: str

    def execute(
        self, program: Program, spec: Spec, logical_env: dict[str, np.ndarray]
    ) -> BackendResult:
        ...  # pragma: no cover - protocol


def _expected(spec: Spec, logical_env: dict[str, np.ndarray]) -> np.ndarray:
    return np.array(
        spec.reference_output(logical_env), dtype=np.int64
    ).reshape(spec.layout.output_shape)


class InterpreterBackend:
    """Evaluate on plain integer vectors (no encryption, no noise)."""

    name = "interpreter"

    def execute(
        self, program: Program, spec: Spec, logical_env: dict[str, np.ndarray]
    ) -> BackendResult:
        ct_env, pt_env = spec.packed_env(logical_env)
        started = time.perf_counter()
        model_output = evaluate(program, ct_env, pt_env)
        wall = time.perf_counter() - started
        logical_output = spec.layout.unpack_output(model_output)
        expected = _expected(spec, logical_env)
        return BackendResult(
            backend=self.name,
            kernel=program.name,
            logical_output=logical_output,
            expected_output=expected,
            matches_reference=bool(np.array_equal(logical_output, expected)),
            wall_time=wall,
        )

    def execute_many(
        self,
        program: Program,
        spec: Spec,
        logical_envs: list[dict[str, np.ndarray]],
    ) -> BatchResult:
        started = time.perf_counter()
        results = [self.execute(program, spec, env) for env in logical_envs]
        return BatchResult(
            backend=self.name,
            kernel=program.name,
            results=results,
            batch_size=len(results),
            total_seconds=time.perf_counter() - started,
        )


class HEBackend:
    """Execute under real BFV encryption; executors are reused per spec.

    ``slow_reference=True`` runs on the retained big-integer BFV paths
    (the oracle/baseline implementation).  ``params`` overrides the
    spec's parameter preset by name (``"toy"``/``"small"``/``"large"``) —
    the serving benchmark's quick mode runs on toy parameters this way.

    Noise safety: ``guard`` turns on runtime noise-budget guards (see
    :class:`~repro.runtime.executor.NoiseGuardPolicy`),
    ``noise_margin_bits`` enables predictive admission at tape-compile
    time, and with ``escalate`` (the default) a
    :class:`~repro.he.errors.NoiseBudgetExhausted` from either is
    recovered transparently by recompiling and re-running on the
    next-larger preset up the :data:`~repro.he.params.PRESET_LADDER`.
    """

    name = "he"

    def __init__(
        self,
        seed: int | None = None,
        slow_reference: bool = False,
        params: str | None = None,
        domain_plan: bool = False,
        exec_workers: int = 1,
        guard=None,
        noise_margin_bits: float | None = None,
        escalate: bool = True,
        max_escalations: int | None = None,
    ):
        self.seed = seed
        self.slow_reference = slow_reference
        self.params_preset = params
        self.domain_plan = domain_plan
        self.exec_workers = exec_workers
        self.guard = guard
        self.noise_margin_bits = noise_margin_bits
        self.escalate = escalate
        self.max_escalations = max_escalations
        self._executors: dict[tuple[str, str], object] = {}
        # escalations not yet collected by drain_escalations() (the
        # serving tier folds them into its MetricsRegistry per batch)
        self._unreported_escalations = 0
        # preset the most recent escalated run actually landed on
        self.last_escalation_params_name: str | None = None

    def _make_executor(self, spec: Spec, params):
        from repro.runtime.executor import HEExecutor

        return HEExecutor(
            spec,
            params=params,
            seed=self.seed,
            slow_reference=self.slow_reference,
            domain_plan=self.domain_plan,
            exec_workers=self.exec_workers,
            guard=self.guard,
            noise_margin_bits=self.noise_margin_bits,
        )

    def _executor_for(self, spec: Spec, params=None):
        """The cached executor for ``spec`` (per parameter set).

        ``params`` selects an explicit :class:`BFVParams` (the escalation
        path); by default the backend's preset override or the spec's own
        preset applies.
        """
        if params is None and self.params_preset is not None:
            from repro.he.errors import InvalidParameterError
            from repro.he.params import preset_params

            try:
                params = preset_params(self.params_preset)
            except InvalidParameterError:
                raise ValueError(
                    f"unknown params preset {self.params_preset!r}; "
                    "available: toy, small, large"
                ) from None
        key = (spec.name, params.name if params is not None else "")
        executor = self._executors.get(key)
        if executor is None:
            executor = self._make_executor(spec, params)
            self._executors[key] = executor
        return executor

    # -- graceful degradation -------------------------------------------

    def _escalation_ladder(self, spec: Spec, params) -> list:
        """Presets strictly above ``params`` whose rows fit the vector."""
        from repro.he.params import next_larger_params

        ladder = []
        current = params
        while True:
            current = next_larger_params(current)
            if current is None:
                break
            if spec.layout.vector_size <= current.row_size:
                ladder.append(current)
        if self.max_escalations is not None:
            ladder = ladder[: self.max_escalations]
        return ladder

    def _run_escalated(self, spec: Spec, base_executor, attempt, error):
        """Walk the preset ladder until one attempt survives its guards."""
        for params in self._escalation_ladder(spec, base_executor.params):
            executor = self._executor_for(spec, params=params)
            executor.stats.noise_escalations += 1
            self._unreported_escalations += 1
            try:
                result = attempt(executor)
            except NoiseBudgetExhausted as next_error:
                error = next_error
                continue
            self.last_escalation_params_name = params.name
            return result
        raise error

    def drain_escalations(self) -> int:
        """Escalations since the last drain (serving metrics hook)."""
        count = self._unreported_escalations
        self._unreported_escalations = 0
        return count

    def arm_tape_fault(self, spec: Spec, fault: tuple | None) -> None:
        """Arm a one-shot runtime corruption on the spec's executor."""
        self._executor_for(spec).arm_tape_fault(fault)

    def executor_stats(self):
        """Merged :class:`~repro.runtime.profiler.ExecutorStats` across
        every executor this backend has built."""
        from repro.runtime.profiler import ExecutorStats

        merged = ExecutorStats(exec_workers=self.exec_workers)
        for executor in self._executors.values():
            merged = merged.merge(executor.stats)
        return merged

    def pin(self, program: Program, spec: Spec) -> None:
        """Keep a hot program's compiled tape resident across evictions."""
        self._executor_for(spec).pin(program)

    def _to_result(self, program: Program, report) -> BackendResult:
        return BackendResult(
            backend=self.name,
            kernel=program.name,
            logical_output=report.logical_output,
            expected_output=report.expected_output,
            matches_reference=report.matches_reference,
            wall_time=report.wall_time,
            noise_budget=report.output_noise_budget,
            details={"instruction_seconds": report.instruction_seconds},
        )

    def execute(
        self, program: Program, spec: Spec, logical_env: dict[str, np.ndarray]
    ) -> BackendResult:
        def attempt(executor) -> BackendResult:
            return self._to_result(program, executor.run(program, logical_env))

        executor = self._executor_for(spec)
        try:
            return attempt(executor)
        except NoiseBudgetExhausted as error:
            if not self.escalate:
                raise
            return self._run_escalated(spec, executor, attempt, error)

    def execute_many(
        self,
        program: Program,
        spec: Spec,
        logical_envs: list[dict[str, np.ndarray]],
    ) -> BatchResult:
        """One lockstep encrypted execution over the whole batch."""

        def attempt(executor) -> BatchResult:
            batch = executor.run_many(program, logical_envs)
            return BatchResult(
                backend=self.name,
                kernel=program.name,
                results=[
                    self._to_result(program, report)
                    for report in batch.reports
                ],
                batch_size=batch.batch_size,
                total_seconds=batch.total_seconds,
                setup_seconds=batch.setup_seconds,
            )

        executor = self._executor_for(spec)
        try:
            return attempt(executor)
        except NoiseBudgetExhausted as error:
            if not self.escalate:
                raise
            return self._run_escalated(spec, executor, attempt, error)


_BACKEND_FACTORIES: dict[str, Callable[..., ExecutionBackend]] = {
    "interpreter": InterpreterBackend,
    "he": HEBackend,
}


def register_backend(
    name: str, factory: Callable[..., ExecutionBackend]
) -> None:
    """Make ``name`` selectable in :meth:`Porcupine.run`."""
    _BACKEND_FACTORIES[name] = factory


def backend_names() -> list[str]:
    return list(_BACKEND_FACTORIES)


def get_backend(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a backend by name."""
    try:
        factory = _BACKEND_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {', '.join(backend_names())}"
        ) from None
    return factory(**kwargs)
