"""Pluggable execution backends for compiled kernels.

Two ship built-in, selected by name:

* ``interpreter`` — Quill's behavioural model over plain numpy vectors
  (:mod:`repro.quill.interpreter`): instant, noiseless, ideal for
  functional checks and CI.
* ``he`` — real BFV encryption through
  :class:`repro.runtime.executor.HEExecutor`: the ground truth, with
  noise budgets and wall-clock latency.

Both accept *logical* inputs (one array per layout input), pack them
according to the kernel's layout, execute, unpack the output, and compare
against the plaintext reference — so backend parity is directly
checkable.  Third-party backends register through
:func:`register_backend`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.quill.interpreter import evaluate
from repro.quill.ir import Program
from repro.spec.reference import Spec


@dataclass
class BackendResult:
    """One execution: decrypted/evaluated output versus the reference."""

    backend: str
    kernel: str
    logical_output: np.ndarray
    expected_output: np.ndarray
    matches_reference: bool
    wall_time: float
    noise_budget: int | None = None
    details: dict = field(default_factory=dict)


@dataclass
class BatchResult:
    """One batched execution: per-run results plus amortized timings."""

    backend: str
    kernel: str
    results: list[BackendResult]
    batch_size: int
    total_seconds: float
    setup_seconds: float = 0.0

    @property
    def all_match(self) -> bool:
        return all(r.matches_reference for r in self.results)

    @property
    def seconds_per_run(self) -> float:
        return self.total_seconds / max(1, self.batch_size)

    @property
    def runs_per_second(self) -> float:
        return (
            self.batch_size / self.total_seconds if self.total_seconds else 0.0
        )


class ExecutionBackend(Protocol):
    """What the session needs from an execution backend."""

    name: str

    def execute(
        self, program: Program, spec: Spec, logical_env: dict[str, np.ndarray]
    ) -> BackendResult:
        ...  # pragma: no cover - protocol


def _expected(spec: Spec, logical_env: dict[str, np.ndarray]) -> np.ndarray:
    return np.array(
        spec.reference_output(logical_env), dtype=np.int64
    ).reshape(spec.layout.output_shape)


class InterpreterBackend:
    """Evaluate on plain integer vectors (no encryption, no noise)."""

    name = "interpreter"

    def execute(
        self, program: Program, spec: Spec, logical_env: dict[str, np.ndarray]
    ) -> BackendResult:
        ct_env, pt_env = spec.packed_env(logical_env)
        started = time.perf_counter()
        model_output = evaluate(program, ct_env, pt_env)
        wall = time.perf_counter() - started
        logical_output = spec.layout.unpack_output(model_output)
        expected = _expected(spec, logical_env)
        return BackendResult(
            backend=self.name,
            kernel=program.name,
            logical_output=logical_output,
            expected_output=expected,
            matches_reference=bool(np.array_equal(logical_output, expected)),
            wall_time=wall,
        )

    def execute_many(
        self,
        program: Program,
        spec: Spec,
        logical_envs: list[dict[str, np.ndarray]],
    ) -> BatchResult:
        started = time.perf_counter()
        results = [self.execute(program, spec, env) for env in logical_envs]
        return BatchResult(
            backend=self.name,
            kernel=program.name,
            results=results,
            batch_size=len(results),
            total_seconds=time.perf_counter() - started,
        )


class HEBackend:
    """Execute under real BFV encryption; executors are reused per spec.

    ``slow_reference=True`` runs on the retained big-integer BFV paths
    (the oracle/baseline implementation).  ``params`` overrides the
    spec's parameter preset by name (``"toy"``/``"small"``/``"large"``) —
    the serving benchmark's quick mode runs on toy parameters this way.
    """

    name = "he"

    def __init__(
        self,
        seed: int | None = None,
        slow_reference: bool = False,
        params: str | None = None,
        domain_plan: bool = False,
        exec_workers: int = 1,
    ):
        self.seed = seed
        self.slow_reference = slow_reference
        self.params_preset = params
        self.domain_plan = domain_plan
        self.exec_workers = exec_workers
        self._executors: dict[str, object] = {}

    def _executor_for(self, spec: Spec):
        from repro.runtime.executor import HEExecutor

        executor = self._executors.get(spec.name)
        if executor is None:
            params = None
            if self.params_preset is not None:
                from repro.he.params import (
                    large_params,
                    small_params,
                    toy_params,
                )

                presets = {
                    "toy": toy_params,
                    "small": small_params,
                    "large": large_params,
                }
                try:
                    params = presets[self.params_preset]()
                except KeyError:
                    raise ValueError(
                        f"unknown params preset {self.params_preset!r}; "
                        f"available: {', '.join(presets)}"
                    ) from None
            executor = HEExecutor(
                spec,
                params=params,
                seed=self.seed,
                slow_reference=self.slow_reference,
                domain_plan=self.domain_plan,
                exec_workers=self.exec_workers,
            )
            self._executors[spec.name] = executor
        return executor

    def executor_stats(self):
        """Merged :class:`~repro.runtime.profiler.ExecutorStats` across
        every executor this backend has built."""
        from repro.runtime.profiler import ExecutorStats

        merged = ExecutorStats(exec_workers=self.exec_workers)
        for executor in self._executors.values():
            merged = merged.merge(executor.stats)
        return merged

    def pin(self, program: Program, spec: Spec) -> None:
        """Keep a hot program's compiled tape resident across evictions."""
        self._executor_for(spec).pin(program)

    def _to_result(self, program: Program, report) -> BackendResult:
        return BackendResult(
            backend=self.name,
            kernel=program.name,
            logical_output=report.logical_output,
            expected_output=report.expected_output,
            matches_reference=report.matches_reference,
            wall_time=report.wall_time,
            noise_budget=report.output_noise_budget,
            details={"instruction_seconds": report.instruction_seconds},
        )

    def execute(
        self, program: Program, spec: Spec, logical_env: dict[str, np.ndarray]
    ) -> BackendResult:
        executor = self._executor_for(spec)
        return self._to_result(program, executor.run(program, logical_env))

    def execute_many(
        self,
        program: Program,
        spec: Spec,
        logical_envs: list[dict[str, np.ndarray]],
    ) -> BatchResult:
        """One lockstep encrypted execution over the whole batch."""
        executor = self._executor_for(spec)
        batch = executor.run_many(program, logical_envs)
        return BatchResult(
            backend=self.name,
            kernel=program.name,
            results=[
                self._to_result(program, report) for report in batch.reports
            ],
            batch_size=batch.batch_size,
            total_seconds=batch.total_seconds,
            setup_seconds=batch.setup_seconds,
        )


_BACKEND_FACTORIES: dict[str, Callable[..., ExecutionBackend]] = {
    "interpreter": InterpreterBackend,
    "he": HEBackend,
}


def register_backend(
    name: str, factory: Callable[..., ExecutionBackend]
) -> None:
    """Make ``name`` selectable in :meth:`Porcupine.run`."""
    _BACKEND_FACTORIES[name] = factory


def backend_names() -> list[str]:
    return list(_BACKEND_FACTORIES)


def get_backend(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a backend by name."""
    try:
        factory = _BACKEND_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {', '.join(backend_names())}"
        ) from None
    return factory(**kwargs)
