"""Instruction latency and synthesis-throughput profiling.

The paper derives Quill's per-instruction latencies by profiling SEAL
(section 4.2); this module does the same against :mod:`repro.he`.  The
resulting table can be checked into :mod:`repro.quill.latency` so that
synthesis stays deterministic across machines — only relative magnitudes
matter to the cost model.

:class:`SchedulerStats` is the serving-side profile: one metrics shape
shared by the ``porcupine serve`` batch scheduler, the ``stats`` wire
op, the serving benchmark (``BENCH_serving.json``), and the CLI's
``--timings`` report — batches formed, mean batch occupancy, the
coalesce ratio (fraction of requests that shared their tape pass with at
least one other request), compile cache hit rate, and request-latency
percentiles.  It lives here, next to :class:`SearchStats`, so online
serving and offline reporting never drift apart in what they count.

:class:`SearchStats` is the synthesis-side profile: it aggregates the
per-run statistics of every engine :class:`~repro.solver.engine.SearchOutcome`
a CEGIS run issued (counterexample rounds, length increments, parallel
chunks) into the numbers reported by ``BENCH_synthesis.json``, the
session's per-pass timing report, and the CLI's ``--timings`` flag:
nodes/sec, per-pruning-rule skip counters (``pruned``), cross-round
reuse (``reused_values``, ``appended_columns``, ``ranks_skipped``), the
value store's shift-cache high-water mark (``shift_cache_peak``), and
the work-stealing driver's ``chunks``/``steals``/``bound_updates``.  It
lives beside :class:`~repro.solver.engine.SearchOutcome` (so the
synthesis path never imports the HE substrate) and is re-exported here
as part of the profiling surface.  All wall-clock figures come from
``time.perf_counter``; ``SearchStats.minus`` clamps every field at zero
so per-phase shares stay well-ordered under clock granularity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.solver.engine import SearchStats  # noqa: F401  (profiling surface)

if TYPE_CHECKING:  # pragma: no cover - synthesis-only imports stay light
    from repro.he.params import BFVParams

from repro.quill.ir import Opcode
from repro.quill.latency import LatencyModel


@dataclass
class SchedulerStats:
    """Batch-scheduler counters: the one serving metrics shape.

    Produced by ``repro.serve`` (per kernel, per tenant, and globally),
    embedded verbatim in ``BENCH_serving.json``, returned by the
    ``stats`` wire op, and rendered by ``porcupine serve --timings`` —
    so a dashboard reading the bench file and an operator reading the
    server's shutdown report see identical fields.
    """

    requests: int = 0  # accepted run requests
    responses: int = 0  # completed (ok) responses
    errors: int = 0
    batches: int = 0  # lockstep tape passes formed
    batched_requests: int = 0  # requests served through those batches
    coalesced_requests: int = 0  # requests in a batch of size >= 2
    max_batch: int = 0  # largest batch formed
    queue_peak: int = 0  # high-water pending-queue depth
    compile_hits: int = 0
    compile_misses: int = 0
    deadline_exceeded: int = 0  # requests that ran out of budget
    overloaded: int = 0  # requests rejected by admission control
    retried_requests: int = 0  # client-declared retry attempts
    pool_restarts: int = 0  # compile-pool respawns after worker crashes
    executor_restarts: int = 0  # execution-thread supervisor restarts
    degraded_compiles: int = 0  # compiles served in-process (pool down)
    noise_budget_errors: int = 0  # requests failed with NOISE_BUDGET
    guard_trips: int = 0  # runtime noise guards that fired while serving
    noise_escalations: int = 0  # transparent re-runs at a larger preset
    shadow_checks: int = 0  # batches cross-checked against the interpreter
    shadow_mismatches: int = 0  # shadow checks that caught a wrong output
    latency_ms: list[float] = field(default_factory=list, repr=False)

    @property
    def mean_occupancy(self) -> float:
        """Average requests per formed batch (1.0 = no coalescing won)."""
        return self.batched_requests / self.batches if self.batches else 0.0

    @property
    def coalesce_ratio(self) -> float:
        """Fraction of requests that shared a tape pass with another."""
        return (
            self.coalesced_requests / self.batched_requests
            if self.batched_requests
            else 0.0
        )

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of compile requests served from the shared cache."""
        total = self.compile_hits + self.compile_misses
        return self.compile_hits / total if total else 0.0

    def percentile_ms(self, q: float) -> float | None:
        """Latency percentile (``q`` in [0, 100]) over recorded samples."""
        if not self.latency_ms:
            return None
        return float(np.percentile(np.asarray(self.latency_ms), q))

    def record(self, batch_size: int) -> None:
        """Count one formed batch of ``batch_size`` requests."""
        self.batches += 1
        self.batched_requests += batch_size
        if batch_size >= 2:
            self.coalesced_requests += batch_size
        self.max_batch = max(self.max_batch, batch_size)

    def merge(self, other: "SchedulerStats") -> "SchedulerStats":
        """Pointwise sum (per-kernel stats fold into the global row)."""
        merged = SchedulerStats(
            requests=self.requests + other.requests,
            responses=self.responses + other.responses,
            errors=self.errors + other.errors,
            batches=self.batches + other.batches,
            batched_requests=self.batched_requests + other.batched_requests,
            coalesced_requests=(
                self.coalesced_requests + other.coalesced_requests
            ),
            max_batch=max(self.max_batch, other.max_batch),
            queue_peak=max(self.queue_peak, other.queue_peak),
            compile_hits=self.compile_hits + other.compile_hits,
            compile_misses=self.compile_misses + other.compile_misses,
            deadline_exceeded=(
                self.deadline_exceeded + other.deadline_exceeded
            ),
            overloaded=self.overloaded + other.overloaded,
            retried_requests=(
                self.retried_requests + other.retried_requests
            ),
            pool_restarts=self.pool_restarts + other.pool_restarts,
            executor_restarts=(
                self.executor_restarts + other.executor_restarts
            ),
            degraded_compiles=(
                self.degraded_compiles + other.degraded_compiles
            ),
            noise_budget_errors=(
                self.noise_budget_errors + other.noise_budget_errors
            ),
            guard_trips=self.guard_trips + other.guard_trips,
            noise_escalations=(
                self.noise_escalations + other.noise_escalations
            ),
            shadow_checks=self.shadow_checks + other.shadow_checks,
            shadow_mismatches=(
                self.shadow_mismatches + other.shadow_mismatches
            ),
        )
        merged.latency_ms = self.latency_ms + other.latency_ms
        return merged

    def summary(self) -> dict:
        """JSON-ready snapshot (the serving bench/report schema)."""
        return {
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "mean_occupancy": round(self.mean_occupancy, 3),
            "coalesce_ratio": round(self.coalesce_ratio, 3),
            "max_batch": self.max_batch,
            "queue_peak": self.queue_peak,
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 3),
            "deadline_exceeded": self.deadline_exceeded,
            "overloaded": self.overloaded,
            "retried_requests": self.retried_requests,
            "pool_restarts": self.pool_restarts,
            "executor_restarts": self.executor_restarts,
            "degraded_compiles": self.degraded_compiles,
            "noise_budget_errors": self.noise_budget_errors,
            "guard_trips": self.guard_trips,
            "noise_escalations": self.noise_escalations,
            "shadow_checks": self.shadow_checks,
            "shadow_mismatches": self.shadow_mismatches,
            "p50_ms": _round_or_none(self.percentile_ms(50)),
            "p99_ms": _round_or_none(self.percentile_ms(99)),
        }


@dataclass
class ExecutorStats:
    """HE-executor transform/memory counters (the planner's scoreboard).

    Accumulated across every ``run``/``run_many`` of one
    :class:`~repro.runtime.executor.HEExecutor`; surfaced by
    ``porcupine run --timings`` and the serve ``stats`` op next to
    :class:`SchedulerStats`.  ``ntts_performed`` counts measured NTT row
    transforms (one length-``N`` butterfly pass) inside tape execution;
    ``ntts_planned``/``ntts_elided`` are the domain plan's predicted
    rows and its savings versus the lazy policy, scaled by batch size —
    when planning is on, ``ntts_performed == ntts_planned`` holds
    exactly (the property tests pin it).  ``arena_bytes`` is the
    high-water scratch footprint across the executor's arenas.
    """

    runs: int = 0  # tape executions (a batched run counts once)
    ntts_performed: int = 0
    ntts_planned: int = 0
    ntts_elided: int = 0
    arena_bytes: int = 0  # high-water bytes held by scratch arenas
    exec_workers: int = 1  # widest lockstep worker pool used
    guard_checks: int = 0  # mid-tape noise-budget samples taken
    guard_trips: int = 0  # guard checks (mid-tape or output) that raised
    noise_escalations: int = 0  # re-runs at the next-larger preset
    min_output_budget: int | None = None  # lowest output budget seen, bits

    def merge(self, other: "ExecutorStats") -> "ExecutorStats":
        """Pointwise fold (per-kernel executor rows into a global row)."""
        budgets = [
            b
            for b in (self.min_output_budget, other.min_output_budget)
            if b is not None
        ]
        return ExecutorStats(
            runs=self.runs + other.runs,
            ntts_performed=self.ntts_performed + other.ntts_performed,
            ntts_planned=self.ntts_planned + other.ntts_planned,
            ntts_elided=self.ntts_elided + other.ntts_elided,
            arena_bytes=max(self.arena_bytes, other.arena_bytes),
            exec_workers=max(self.exec_workers, other.exec_workers),
            guard_checks=self.guard_checks + other.guard_checks,
            guard_trips=self.guard_trips + other.guard_trips,
            noise_escalations=(
                self.noise_escalations + other.noise_escalations
            ),
            min_output_budget=min(budgets) if budgets else None,
        )

    def summary(self) -> dict:
        """JSON-ready snapshot (bench / stats-op / --timings schema)."""
        return {
            "runs": self.runs,
            "ntts_performed": self.ntts_performed,
            "ntts_planned": self.ntts_planned,
            "ntts_elided": self.ntts_elided,
            "arena_bytes": self.arena_bytes,
            "exec_workers": self.exec_workers,
            "guard_checks": self.guard_checks,
            "guard_trips": self.guard_trips,
            "noise_escalations": self.noise_escalations,
            "min_output_budget": self.min_output_budget,
        }


def format_executor_stats(stats: ExecutorStats) -> str:
    """Render executor counters the way ``--timings`` renders timings."""
    budget = (
        "n/a"
        if stats.min_output_budget is None
        else f"{stats.min_output_budget} bits"
    )
    return (
        "executor stats:\n"
        f"  tape runs          {stats.runs}\n"
        f"  ntts performed     {stats.ntts_performed}\n"
        f"  ntts planned       {stats.ntts_planned}\n"
        f"  ntts elided        {stats.ntts_elided}\n"
        f"  arena bytes        {stats.arena_bytes}\n"
        f"  exec workers       {stats.exec_workers}\n"
        f"  guard checks       {stats.guard_checks}\n"
        f"  guard trips        {stats.guard_trips}\n"
        f"  noise escalations  {stats.noise_escalations}\n"
        f"  min output budget  {budget}"
    )


def format_search_stats(summary: dict) -> str:
    """Render a ``SearchStats.summary()`` dict the way ``--timings``
    renders the other stat blocks (lemma-store and seed-bound counters
    included when any are non-zero)."""
    lines = [
        "search stats:",
        f"  nodes              {summary.get('nodes', 0)}",
        f"  nodes/s            {summary.get('nodes_per_sec', 0):,.0f}",
        f"  runs               {summary.get('runs', 0)}",
        f"  dedup hits         {summary.get('dedup_hits', 0)}",
    ]
    if summary.get("lemma_hits") or summary.get("lemma_misses"):
        lines.append(
            f"  lemma store        {summary.get('lemma_hits', 0)} hit(s) / "
            f"{summary.get('lemma_misses', 0)} miss(es) / "
            f"{summary.get('lemma_skips', 0)} skip(s)"
        )
    if summary.get("seed_bounds"):
        lines.append(
            f"  seeded bounds      {summary.get('seed_bounds', 0)} "
            f"({summary.get('seed_retries', 0)} unseeded retry(ies))"
        )
    return "\n".join(lines)


def _round_or_none(value: float | None, digits: int = 3) -> float | None:
    return round(value, digits) if value is not None else None


def format_scheduler_table(
    overall: SchedulerStats, per_kernel: dict[str, SchedulerStats]
) -> str:
    """Render serving stats the way ``--timings`` renders pass timings."""
    lines = [
        "scheduler stats:",
        f"  {'kernel':18s} {'reqs':>6s} {'batches':>8s} {'occ':>6s} "
        f"{'coal':>6s} {'hit%':>6s} {'p50ms':>9s} {'p99ms':>9s}",
    ]

    def row(name: str, stats: SchedulerStats) -> str:
        p50, p99 = stats.percentile_ms(50), stats.percentile_ms(99)
        return (
            f"  {name:18s} {stats.requests:6d} {stats.batches:8d} "
            f"{stats.mean_occupancy:6.2f} {stats.coalesce_ratio:6.2f} "
            f"{stats.cache_hit_rate * 100:5.0f}% "
            f"{p50 if p50 is not None else float('nan'):9.2f} "
            f"{p99 if p99 is not None else float('nan'):9.2f}"
        )

    for name in sorted(per_kernel):
        lines.append(row(name, per_kernel[name]))
    lines.append(row("(all)", overall))
    return "\n".join(lines)


def profile_instructions(
    params: BFVParams, repeats: int = 5, seed: int = 0
) -> LatencyModel:
    """Measure the median latency of every Quill opcode in microseconds."""
    # imported here so synthesis-only users of this module (SearchStats
    # flows into every CEGIS run) never pay for the BFV substrate
    from repro.he import BFVContext

    ctx = BFVContext(params, seed=seed)
    rng = np.random.default_rng(seed)
    n = min(64, params.row_size)
    a = ctx.encrypt_vector(rng.integers(-20, 21, n))
    b = ctx.encrypt_vector(rng.integers(-20, 21, n))
    pt = ctx.encode(rng.integers(-20, 21, n))
    # pre-generate the rotation key so key generation is not measured
    ctx.generate_galois_key(ctx.encoder.galois_element_for_rotation(1))
    # warm the plaintext lift cache the same way repeated execution would
    ctx.multiply_plain(a, pt)

    product = ctx.multiply(a, b, relinearize=False)  # 3-part relin operand
    operations = {
        Opcode.ADD_CC: lambda: ctx.add(a, b),
        Opcode.SUB_CC: lambda: ctx.sub(a, b),
        Opcode.MUL_CC: lambda: ctx.multiply(a, b),
        Opcode.ADD_CP: lambda: ctx.add_plain(a, pt),
        Opcode.SUB_CP: lambda: ctx.sub_plain(a, pt),
        Opcode.MUL_CP: lambda: ctx.multiply_plain(a, pt),
        Opcode.ROTATE: lambda: ctx.rotate_rows(a, 1),
        Opcode.RELIN: lambda: ctx.relinearize(product),
    }
    table: dict[Opcode, float] = {}
    for opcode, operation in operations.items():
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            operation()
            samples.append((time.perf_counter() - t0) * 1e6)
        table[opcode] = float(np.median(samples))
    return LatencyModel(table, name=f"profiled-{params.name}")


def format_latency_table(model: LatencyModel) -> str:
    """Render a profiled table as Python source for checking in."""
    lines = [f"# profiled on preset {model.name}", "{"]
    for opcode, latency in model.table.items():
        lines.append(f"    Opcode.{opcode.name}: {latency:_.1f},")
    lines.append("}")
    return "\n".join(lines)
