"""Instruction latency and synthesis-throughput profiling.

The paper derives Quill's per-instruction latencies by profiling SEAL
(section 4.2); this module does the same against :mod:`repro.he`.  The
resulting table can be checked into :mod:`repro.quill.latency` so that
synthesis stays deterministic across machines — only relative magnitudes
matter to the cost model.

:class:`SearchStats` is the synthesis-side profile: it aggregates the
per-run statistics of every engine :class:`~repro.solver.engine.SearchOutcome`
a CEGIS run issued (counterexample rounds, length increments, parallel
chunks) into the numbers reported by ``BENCH_synthesis.json``, the
session's per-pass timing report, and the CLI's ``--timings`` flag:
nodes/sec, per-pruning-rule skip counters (``pruned``), cross-round
reuse (``reused_values``, ``appended_columns``, ``ranks_skipped``), the
value store's shift-cache high-water mark (``shift_cache_peak``), and
the work-stealing driver's ``chunks``/``steals``/``bound_updates``.  It
lives beside :class:`~repro.solver.engine.SearchOutcome` (so the
synthesis path never imports the HE substrate) and is re-exported here
as part of the profiling surface.  All wall-clock figures come from
``time.perf_counter``; ``SearchStats.minus`` clamps every field at zero
so per-phase shares stay well-ordered under clock granularity.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.solver.engine import SearchStats  # noqa: F401  (profiling surface)

if TYPE_CHECKING:  # pragma: no cover - synthesis-only imports stay light
    from repro.he.params import BFVParams

from repro.quill.ir import Opcode
from repro.quill.latency import LatencyModel


def profile_instructions(
    params: BFVParams, repeats: int = 5, seed: int = 0
) -> LatencyModel:
    """Measure the median latency of every Quill opcode in microseconds."""
    # imported here so synthesis-only users of this module (SearchStats
    # flows into every CEGIS run) never pay for the BFV substrate
    from repro.he import BFVContext

    ctx = BFVContext(params, seed=seed)
    rng = np.random.default_rng(seed)
    n = min(64, params.row_size)
    a = ctx.encrypt_vector(rng.integers(-20, 21, n))
    b = ctx.encrypt_vector(rng.integers(-20, 21, n))
    pt = ctx.encode(rng.integers(-20, 21, n))
    # pre-generate the rotation key so key generation is not measured
    ctx.generate_galois_key(ctx.encoder.galois_element_for_rotation(1))
    # warm the plaintext lift cache the same way repeated execution would
    ctx.multiply_plain(a, pt)

    product = ctx.multiply(a, b, relinearize=False)  # 3-part relin operand
    operations = {
        Opcode.ADD_CC: lambda: ctx.add(a, b),
        Opcode.SUB_CC: lambda: ctx.sub(a, b),
        Opcode.MUL_CC: lambda: ctx.multiply(a, b),
        Opcode.ADD_CP: lambda: ctx.add_plain(a, pt),
        Opcode.SUB_CP: lambda: ctx.sub_plain(a, pt),
        Opcode.MUL_CP: lambda: ctx.multiply_plain(a, pt),
        Opcode.ROTATE: lambda: ctx.rotate_rows(a, 1),
        Opcode.RELIN: lambda: ctx.relinearize(product),
    }
    table: dict[Opcode, float] = {}
    for opcode, operation in operations.items():
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            operation()
            samples.append((time.perf_counter() - t0) * 1e6)
        table[opcode] = float(np.median(samples))
    return LatencyModel(table, name=f"profiled-{params.name}")


def format_latency_table(model: LatencyModel) -> str:
    """Render a profiled table as Python source for checking in."""
    lines = [f"# profiled on preset {model.name}", "{"]
    for opcode, latency in model.table.items():
        lines.append(f"    Opcode.{opcode.name}: {latency:_.1f},")
    lines.append("}")
    return "\n".join(lines)
