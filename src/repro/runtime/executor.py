"""Execute Quill programs homomorphically and validate against the spec.

Model-to-ciphertext mapping: the model vector (layout slots) occupies the
first ``vector_size`` slots of batching row 0 of a BFV ciphertext, with
the rest of the row zero.  Quill's shift-with-zero-fill rotation equals
true cyclic row rotation *provided data never crosses the model window's
edges*; ``check_displacement`` verifies that statically from the layout's
margins before execution, so a passing run is genuine evidence of
equivalence, not luck.

Programs are compiled once into a flat instruction tape
(:class:`CompiledProgram`): the displacement check runs at compile time,
the Galois keys a program needs are generated up front, program constants
are encoded and frozen, and wires are assigned to a minimal set of slots
by liveness analysis, so dead intermediates are released as soon as their
last consumer has run.  :meth:`HEExecutor.run_many` executes one tape over
a whole batch of user inputs at once — the inputs are encrypted as
``(batch, k, N)`` residue stacks and every homomorphic instruction
broadcasts over the batch axis, which is the serving story: key
generation, constant encoding, tape setup, *and* numpy dispatch overhead
are all amortized across the batch.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.he import BFVContext
from repro.he.arena import ExecCounters, ScratchArena, execution_scope
from repro.he.context import Ciphertext
from repro.he.errors import NoiseBudgetExhausted
from repro.he.params import BFVParams
from repro.quill.ir import (
    CtInput,
    Opcode,
    Program,
    PtConst,
    PtInput,
    Ref,
    Wire,
)
from repro.quill.noise import multiplicative_depth
from repro.runtime.planner import DomainPlan, plan_tape
from repro.runtime.profiler import ExecutorStats
from repro.spec.reference import Spec


class DisplacementError(Exception):
    """Raised when a program could push packed data beyond its margins."""


def _wire_displacements(program: Program) -> list[tuple[int, int]]:
    """Per-wire worst-case (left, right) slot displacement."""
    bounds: list[tuple[int, int]] = []

    def of(ref: Ref) -> tuple[int, int]:
        if isinstance(ref, Wire):
            return bounds[ref.index]
        return (0, 0)

    for instr in program.instructions:
        if instr.opcode is Opcode.ROTATE:
            left, right = of(instr.operands[0])
            if instr.amount > 0:
                left += instr.amount
            else:
                right -= instr.amount
            bounds.append((left, right))
        else:
            lefts, rights = zip(*(of(r) for r in instr.operands))
            bounds.append((max(lefts), max(rights)))
    return bounds


def displacement_bounds(program: Program) -> tuple[int, int]:
    """Worst-case (left, right) slot displacement of the output."""
    if not isinstance(program.output, Wire):
        return (0, 0)
    return _wire_displacements(program)[program.output.index]


@dataclass(frozen=True)
class DisplacementReport:
    """How far a program moves packed data versus the layout's margins.

    Conservative: the maxima range over every wire, not just the output,
    since every intermediate must stay inside the model window.
    """

    max_left: int
    max_right: int
    budget_left: int
    budget_right: int

    @property
    def ok(self) -> bool:
        return (
            self.max_left <= self.budget_left
            and self.max_right <= self.budget_right
        )

    def summary(self) -> dict:
        return {
            "max_left": self.max_left,
            "max_right": self.max_right,
            "budget_left": self.budget_left,
            "budget_right": self.budget_right,
            "ok": self.ok,
        }


def displacement_report(program: Program, spec: Spec) -> DisplacementReport:
    """Measure worst-case data movement against the layout's margins."""
    bounds = _wire_displacements(program)
    max_left = max((b[0] for b in bounds), default=0)
    max_right = max((b[1] for b in bounds), default=0)
    budget_left, budget_right = spec.layout.max_displacement_budget()
    return DisplacementReport(max_left, max_right, budget_left, budget_right)


def check_displacement(program: Program, spec: Spec) -> DisplacementReport:
    """Assert the layout margins absorb the program's data movement."""
    report = displacement_report(program, spec)
    if not report.ok:
        raise DisplacementError(
            f"program moves data {report.max_left} left / "
            f"{report.max_right} right but the layout margins allow only "
            f"{report.budget_left} / {report.budget_right}; "
            "shift semantics would diverge from cyclic rotation"
        )
    return report


# one tape entry: (opcode, fetch a, fetch b | None, rotation amount,
# destination slot, slots freed after this step).  Fetch descriptors are
# ("slot", i) | ("ct", name) | ("pt", name).
TapeStep = tuple[Opcode, tuple, tuple | None, int, int, tuple[int, ...]]


@dataclass(frozen=True)
class NoiseGuardPolicy:
    """Where and how an executor samples noise budgets at runtime.

    BFV noise exhaustion decrypts to garbage, not an error (paper section
    2.2), so without guards a dead ciphertext silently propagates to the
    caller.  Guards trade a budget measurement (one decrypt-cost pass per
    check) for a typed :class:`NoiseBudgetExhausted` naming the tape step
    and batch element the moment the budget bottoms out.

    Attributes:
        after_multiplies: sample after every ct-ct multiply, the only
            opcode with multiplicative noise growth.
        every_n_ops: additionally sample after every N tape steps.
        check_output: also gate the output decrypt on a positive budget
            instead of returning garbage.
        min_budget_bits: trip threshold; budgets at or below this raise.
    """

    after_multiplies: bool = False
    every_n_ops: int | None = None
    check_output: bool = True
    min_budget_bits: int = 0

    @classmethod
    def coerce(
        cls, guard: "NoiseGuardPolicy | str | int | None"
    ) -> "NoiseGuardPolicy | None":
        """Normalize the user-facing knob: off | output | mul | every-N."""
        if guard is None or guard == "off":
            return None
        if isinstance(guard, cls):
            return guard
        if guard == "output":
            return cls()
        if guard == "mul":
            return cls(after_multiplies=True)
        if isinstance(guard, int) and not isinstance(guard, bool):
            if guard < 1:
                raise ValueError("guard interval must be >= 1")
            return cls(every_n_ops=guard)
        raise ValueError(
            f"unknown noise guard {guard!r}; expected 'off', 'output', "
            "'mul', an op interval, or a NoiseGuardPolicy"
        )


@dataclass
class CompiledProgram:
    """A Quill program lowered onto one executor: checked, keyed, encoded.

    Produced once per program by :meth:`HEExecutor.compile`; every
    :meth:`HEExecutor.run` / :meth:`HEExecutor.run_many` replays the tape.

    Attributes:
        program: the source program.
        steps: the flat instruction tape with liveness-resolved slots.
        slot_count: size of the wire buffer pool (<= instruction count;
            liveness analysis reuses slots whose wire died).
        output: fetch descriptor for the program result.
        galois_elements: every Galois key the tape's rotations need
            (generated at compile time, so runs never pay key generation).
        constants: program constants, encoded and frozen.
    """

    program: Program
    steps: list[TapeStep]
    slot_count: int
    output: tuple
    galois_elements: tuple[int, ...]
    constants: dict[str, object]
    extra_outputs: tuple[tuple, ...] = ()  # fetch descriptors, extras only
    # NTT-domain residency plan for the tape (None on the slow-reference
    # oracle); executed only when the executor's domain_plan flag is set
    plan: DomainPlan | None = None
    # worst-case predicted output budget under this executor's params
    # (Fan-Vercauteren bounds, bits); the admission margin gates on it
    predicted_noise_budget: float | None = None

    def describe(self) -> str:
        return (
            f"CompiledProgram({self.program.name}: {len(self.steps)} steps, "
            f"{self.slot_count} slots, "
            f"{len(self.galois_elements)} galois keys)"
        )


@dataclass
class ExecutionReport:
    """Everything one homomorphic run produced."""

    model_output: np.ndarray
    logical_output: np.ndarray
    expected_output: np.ndarray
    matches_reference: bool
    output_noise_budget: int
    wall_time: float
    instruction_seconds: dict[str, float] = field(default_factory=dict)
    # decrypted model vectors of the program's extra outputs, in order
    extra_model_outputs: list[np.ndarray] = field(default_factory=list)


@dataclass
class BatchExecutionReport:
    """One :meth:`HEExecutor.run_many` call over a batch of inputs."""

    reports: list[ExecutionReport]
    batch_size: int
    setup_seconds: float  # compile + encrypt + encode (amortized)
    evaluate_seconds: float  # homomorphic tape execution
    decrypt_seconds: float
    total_seconds: float

    @property
    def all_match(self) -> bool:
        return all(r.matches_reference for r in self.reports)

    @property
    def seconds_per_run(self) -> float:
        return self.total_seconds / max(1, self.batch_size)

    @property
    def runs_per_second(self) -> float:
        return self.batch_size / self.total_seconds if self.total_seconds else 0.0


class HEExecutor:
    """Runs Quill programs under real BFV encryption.

    ``slow_reference=True`` builds the executor on the retained big-int
    BFV paths (the seed implementation) — the baseline the runtime
    benchmarks and equivalence tests compare against.
    """

    PLAINTEXT_CACHE_LIMIT = 256

    def __init__(
        self,
        spec: Spec,
        params: BFVParams | None = None,
        seed: int | None = None,
        slow_reference: bool = False,
        domain_plan: bool = False,
        exec_workers: int = 1,
        guard: NoiseGuardPolicy | str | int | None = None,
        noise_margin_bits: float | None = None,
    ):
        if exec_workers < 1:
            raise ValueError("exec_workers must be >= 1")
        self.spec = spec
        self.domain_plan = domain_plan
        self.exec_workers = exec_workers
        self.guard = NoiseGuardPolicy.coerce(guard)
        # predictive admission: compile() rejects programs whose predicted
        # budget falls below this margin (None disables admission)
        self.noise_margin_bits = noise_margin_bits
        self._tape_fault: tuple | None = None
        if params is None:
            from repro.he.params import large_params, small_params

            params = {
                "n4096-depth1": small_params,
                "n8192-depth3": large_params,
            }.get(spec.params_name, small_params)()
        if spec.layout.vector_size > params.row_size:
            raise ValueError(
                "model vector does not fit one batching row; "
                "choose a larger polynomial degree"
            )
        self.params = params
        self.ctx = BFVContext(params, seed=seed, slow_reference=slow_reference)
        self._plaintext_cache: dict[bytes, object] = {}
        self._compiled: dict[int, CompiledProgram] = {}
        self._pinned: set[int] = set()
        self._arena = ScratchArena()
        self._worker_arenas: dict[int, ScratchArena] = {}
        self.stats = ExecutorStats(exec_workers=exec_workers)

    @property
    def _planning(self) -> bool:
        """Domain plans apply only on the fast path (the oracle stays lazy)."""
        return self.domain_plan and not self.ctx.slow_reference

    # ------------------------------------------------------------------
    # Compilation: program -> tape
    # ------------------------------------------------------------------

    def compile(self, program: Program) -> CompiledProgram:
        """Lower a program onto this executor (cached per program object).

        One-time work hoisted out of every run: the displacement check,
        Galois key generation, constant encoding, and liveness-based wire
        slot assignment.
        """
        cached = self._compiled.get(id(program))
        if cached is not None and cached.program is program:
            return cached
        check_displacement(program, self.spec)
        from repro.runtime.estimator import estimate_noise_budget

        predicted = estimate_noise_budget(program, self.params)
        if (
            self.noise_margin_bits is not None
            and predicted < self.noise_margin_bits
        ):
            raise NoiseBudgetExhausted(
                f"program {program.name!r} predicted to finish with "
                f"{predicted:.1f} bits of noise budget under params "
                f"{self.params.name!r}, below the {self.noise_margin_bits}"
                f"-bit admission margin; use a larger preset",
                min_budget=predicted,
                params_name=self.params.name,
            )

        # last use of each wire (every program output counts as a final use)
        last_use: dict[int, int] = {}
        for i, instr in enumerate(program.instructions):
            for ref in instr.operands:
                if isinstance(ref, Wire):
                    last_use[ref.index] = i
        for out in program.outputs:
            if isinstance(out, Wire):
                last_use[out.index] = len(program.instructions)

        slot_of: dict[int, int] = {}
        free: list[int] = []
        slot_count = 0
        steps: list[TapeStep] = []
        galois: list[int] = []

        def fetch(ref: Ref) -> tuple:
            if isinstance(ref, Wire):
                return ("slot", slot_of[ref.index])
            if isinstance(ref, CtInput):
                return ("ct", ref.name)
            assert isinstance(ref, (PtInput, PtConst))
            return ("pt", ref.name)

        for i, instr in enumerate(program.instructions):
            a = fetch(instr.operands[0])
            b = fetch(instr.operands[1]) if len(instr.operands) > 1 else None
            amount = 0
            if instr.opcode is Opcode.ROTATE:
                amount = instr.amount
                g = self.ctx.encoder.galois_element_for_rotation(amount)
                if g not in galois:
                    galois.append(g)
            # release slots of wires whose last consumer is this step;
            # the freed slot may immediately host this step's result
            dying = [
                slot_of.pop(ref.index)
                for ref in instr.operands
                if isinstance(ref, Wire) and last_use.get(ref.index) == i
                and ref.index in slot_of
            ]
            free.extend(dying)
            if last_use.get(i, -1) >= i:  # result is consumed somewhere
                if free:
                    out_slot = free.pop()
                else:
                    out_slot = slot_count
                    slot_count += 1
                slot_of[i] = out_slot
            else:  # dead instruction: still executed, result dropped
                out_slot = -1
            steps.append((instr.opcode, a, b, amount, out_slot, tuple(dying)))

        for g in galois:
            self.ctx.generate_galois_key(g)

        constants = {
            name: self._encode_cached(
                np.array(program.constant_vector(name), dtype=np.int64)
            )
            for name in program.constants
        }
        output_desc = fetch(program.output)
        extra_descs = tuple(fetch(ref) for ref in program.extra_outputs)
        plan = None
        if not self.ctx.slow_reference:
            plan = plan_tape(
                steps,
                output_desc,
                extra_descs,
                eager=not program.is_explicit_relin,
                k=len(self.params.coeff_primes),
                k_ext=len(self.ctx._ext_ring.basis),
                digits=self.ctx._digit_count,
            )
        compiled = CompiledProgram(
            program=program,
            steps=steps,
            slot_count=slot_count,
            output=output_desc,
            galois_elements=tuple(galois),
            constants=constants,
            extra_outputs=extra_descs,
            plan=plan,
            predicted_noise_budget=predicted,
        )
        if len(self._compiled) >= 32:  # bound the per-program tape cache
            # pinned tapes survive the wholesale clear: the batch
            # scheduler replays the same hot programs every tick, and
            # evicting one mid-serve would silently re-pay displacement
            # checks, Galois key generation, and constant encoding
            self._compiled = {
                key: value
                for key, value in self._compiled.items()
                if key in self._pinned
            }
        self._compiled[id(program)] = compiled
        return compiled

    def pin(self, program: Program) -> CompiledProgram:
        """Compile ``program`` and keep its tape resident across evictions.

        The serving batch scheduler pins every precompiled/hot program so
        batch-stack state (tape, keys, encoded constants) is reused across
        scheduler ticks no matter how many cold programs pass through.
        """
        compiled = self.compile(program)
        self._pinned.add(id(program))
        return compiled

    def unpin(self, program: Program) -> None:
        """Allow a previously pinned program's tape to be evicted again."""
        self._pinned.discard(id(program))

    def prepare(self, program: Program) -> None:
        """Generate the Galois keys the program needs (outside timing)."""
        self.compile(program)

    # ------------------------------------------------------------------
    # Runtime fault injection (chaos testing only)
    # ------------------------------------------------------------------

    def arm_tape_fault(self, fault: tuple | None) -> None:
        """Arm a one-shot mid-tape ciphertext corruption.

        Fault shapes (see :mod:`repro.serve.faults` for the wire-level
        sites that deliver them):

        - ``("bitflip", [step], [bit])`` — XOR one evaluation-domain
          residue bit of the ciphertext produced at tape step ``step``
          (default 0).  A single flipped NTT point inverse-transforms to
          a dense ~q-scale coefficient error, so the corruption is
          exactly the silent-garbage hazard guards exist to catch.
        - ``("poison", [step])`` — replace the step's result with a
          scrambled (cyclically shifted) residue matrix: a valid-looking
          but meaningless ciphertext, as a stuck/poisoned slot would be.
        """
        self._tape_fault = tuple(fault) if fault is not None else None

    def _trip_tape_fault(self, value, index: int):
        """Apply the armed fault if this tape step is its trigger."""
        fault = self._tape_fault
        step = int(fault[1]) if len(fault) > 1 else 0
        if index != step:
            return value
        self._tape_fault = None  # one-shot
        return self._corrupt_ciphertext(value, fault)

    def _corrupt_ciphertext(self, ct: Ciphertext, fault: tuple) -> Ciphertext:
        from repro.he.poly import RingElement

        kind = fault[0]
        part = ct.parts[0]
        if kind == "bitflip":
            bit = int(fault[2]) if len(fault) > 2 else 10
            rows = np.array(part.eval_rows(), copy=True)
            flat = rows.reshape(-1)
            prime = int(self.params.coeff_primes[0])
            flat[0] = (int(flat[0]) ^ (1 << bit)) % prime
            corrupted = RingElement(part.ctx, eval_rows=rows)
        elif kind == "poison":
            residues = np.roll(np.array(part.residues, copy=True), 1, axis=-1)
            corrupted = RingElement(part.ctx, residues)
        else:
            raise ValueError(f"unknown tape fault kind {fault[0]!r}")
        return Ciphertext([corrupted, *ct.parts[1:]])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _encrypt_env(self, logical_env: dict[str, np.ndarray]):
        """Pack and encrypt one logical environment."""
        ct_env, pt_env = self.spec.packed_env(logical_env)
        encrypted = {
            name: self.ctx.encrypt_vector(vec) for name, vec in ct_env.items()
        }
        plain = {
            name: self._encode_cached(vec) for name, vec in pt_env.items()
        }
        return encrypted, plain

    def _execute_tape(
        self,
        compiled: CompiledProgram,
        encrypted: dict,
        plain: dict,
        planned: bool = False,
    ):
        """Replay the instruction tape; returns (output ct, per-op seconds).

        ``planned=True`` executes the compiled domain plan: per-step
        residency hints plus planned rotation routing.  Transforms are
        exact bijections, so both modes are bit-identical.

        Returns ``(output ct, extra cts, per-op seconds, guard checks)``.
        """
        ctx = self.ctx
        guard = self.guard
        guard_checks = 0
        slots: list = [None] * compiled.slot_count
        per_opcode: dict[str, float] = {}
        plan = compiled.plan if planned else None
        # explicit-relin programs defer the fold to their RELIN steps;
        # eager programs keep the historical relinearize-every-multiply
        eager = not compiled.program.is_explicit_relin
        dispatch = {
            Opcode.ADD_CC: ctx.add,
            Opcode.SUB_CC: ctx.sub,
            Opcode.ADD_CP: ctx.add_plain,
            Opcode.SUB_CP: ctx.sub_plain,
        }

        def resolve(desc):
            kind, key = desc
            if kind == "slot":
                return slots[key]
            if kind == "ct":
                return encrypted[key]
            return plain[key]

        for index, (opcode, a, b, amount, out_slot, frees) in enumerate(
            compiled.steps
        ):
            hint = plan.hints[index] if plan is not None else None
            t0 = time.perf_counter()
            if opcode is Opcode.ROTATE:
                value = ctx.rotate_rows(
                    resolve(a), amount, planned=plan is not None
                )
            elif opcode is Opcode.RELIN:
                value = ctx.relinearize(resolve(a), out_domain=hint)
            elif opcode is Opcode.MUL_CC:
                value = ctx.multiply(
                    resolve(a),
                    resolve(b),
                    relinearize=eager,
                    out_domain=hint,
                )
            elif opcode is Opcode.MUL_CP:
                value = ctx.multiply_plain(resolve(a), resolve(b))
            else:
                value = dispatch[opcode](resolve(a), resolve(b), hint)
            elapsed = time.perf_counter() - t0
            key = opcode.value
            per_opcode[key] = per_opcode.get(key, 0.0) + elapsed
            if self._tape_fault is not None:
                value = self._trip_tape_fault(value, index)
            if guard is not None and (
                (guard.after_multiplies and opcode is Opcode.MUL_CC)
                or (
                    guard.every_n_ops is not None
                    and (index + 1) % guard.every_n_ops == 0
                )
            ):
                guard_checks += 1
                budgets = ctx.noise_budgets(value)
                low = min(budgets)
                if low <= guard.min_budget_bits:
                    # the run aborts here, so account the checks that
                    # _record_stats will never see
                    self.stats.guard_checks += guard_checks
                    self.stats.guard_trips += 1
                    worst = budgets.index(low)
                    raise NoiseBudgetExhausted(
                        f"noise guard tripped at tape step {index} "
                        f"({opcode.value}): budget {low} bits at batch "
                        f"element {worst} under params {self.params.name!r}",
                        min_budget=low,
                        batch_index=worst,
                        op_index=index,
                        params_name=self.params.name,
                    )
            for slot in frees:
                if slot != out_slot:
                    slots[slot] = None  # release dead intermediates
            if out_slot >= 0:
                slots[out_slot] = value
        extras = [resolve(desc) for desc in compiled.extra_outputs]
        return resolve(compiled.output), extras, per_opcode, guard_checks

    def run(
        self,
        program: Program,
        logical_env: dict[str, np.ndarray],
        check: bool = True,
    ) -> ExecutionReport:
        """Encrypt, evaluate homomorphically, decrypt, and compare.

        ``check`` is kept for backwards compatibility; the displacement
        check always runs, but only once per program at compile time.
        """
        compiled = self.compile(program)
        layout = self.spec.layout
        encrypted, plain = self._encrypt_env(logical_env)
        plain.update(compiled.constants)

        planned = self._planning
        counters = ExecCounters()
        start = time.perf_counter()
        with execution_scope(self._arena, counters):
            output_ct, extra_cts, per_opcode, guard_checks = (
                self._execute_tape(compiled, encrypted, plain, planned=planned)
            )
        wall = time.perf_counter() - start
        self._record_stats(
            compiled, counters, batch=1, planned=planned,
            guard_checks=guard_checks,
        )

        plaintext, budgets = self.ctx.decrypt_with_budgets(
            output_ct, check_budget=False
        )
        self._note_output_budgets(budgets)
        budget = min(budgets)
        decrypted = self.ctx.decode(plaintext)
        model_output = decrypted[: layout.vector_size]
        logical_output = layout.unpack_output(model_output)
        expected = np.array(
            self.spec.reference_output(logical_env), dtype=np.int64
        ).reshape(layout.output_shape)
        # extras mirror the primary's epilogue: no budget gate (the
        # report carries the primary's budget) and no budget scan
        extra_model_outputs = [
            self.ctx.decode(self.ctx.decrypt(ct, check_budget=False))[
                : layout.vector_size
            ]
            for ct in extra_cts
        ]
        return ExecutionReport(
            model_output=model_output,
            logical_output=logical_output,
            expected_output=expected,
            matches_reference=bool(np.array_equal(logical_output, expected)),
            output_noise_budget=budget,
            wall_time=wall,
            instruction_seconds=per_opcode,
            extra_model_outputs=extra_model_outputs,
        )

    def run_many(
        self,
        program: Program,
        logical_envs: list[dict[str, np.ndarray]],
        check: bool = True,
        workers: int | None = None,
    ) -> BatchExecutionReport:
        """Execute one program over a batch of inputs in lockstep.

        The batch is encrypted into ``(batch, k, N)`` residue stacks and
        the tape runs *once*: every homomorphic instruction broadcasts
        over the batch axis.  Key generation, constant encoding, tape
        setup, and numpy dispatch overhead are all paid once for the
        whole batch.

        With ``workers > 1`` (argument or the executor's ``exec_workers``)
        the encrypted batch axis is sharded across a thread pool after
        the single batched encryption — every worker replays the same
        tape over its contiguous slice with a private scratch arena, so
        outputs, parts, and noise budgets are bit-identical to the
        single-worker pass (the numpy/NTT hot loops release the GIL, so
        shards genuinely overlap on multicore hosts).
        """
        if not logical_envs:
            raise ValueError(
                "run_many needs at least one environment (got an empty "
                "batch); call run() for single requests or pass envs"
            )
        self._validate_envs(logical_envs)
        t_start = time.perf_counter()
        compiled = self.compile(program)
        layout = self.spec.layout
        batch = len(logical_envs)
        if workers is None:
            workers = self.exec_workers
        if workers < 1:
            raise ValueError("workers must be >= 1")
        workers = min(workers, batch)

        # pack every environment, stack per input name, encrypt batched
        ct_rows: dict[str, list[np.ndarray]] = {}
        pt_envs: list[dict[str, np.ndarray]] = []
        for env in logical_envs:
            ct_env, pt_env = self.spec.packed_env(env)
            for name, vec in ct_env.items():
                ct_rows.setdefault(name, []).append(vec)
            pt_envs.append(pt_env)
        encrypted = {
            name: self.ctx.encrypt_vector(np.stack(rows))
            for name, rows in ct_rows.items()
        }
        # symbolic plaintext inputs must agree across the batch (they are
        # server-side operands); per-env values would need per-env tapes
        plain: dict[str, object] = {}
        for name in pt_envs[0]:
            first = pt_envs[0][name]
            for other in pt_envs[1:]:
                if not np.array_equal(other[name], first):
                    raise ValueError(
                        f"plaintext input {name!r} differs across the batch; "
                        "run_many shares server-side plaintexts"
                    )
            plain[name] = self._encode_cached(first)
        plain.update(compiled.constants)
        t_setup = time.perf_counter()

        planned = self._planning
        counters = ExecCounters()
        if workers == 1:
            with execution_scope(self._arena, counters):
                output_ct, extra_cts, per_opcode, guard_checks = (
                    self._execute_tape(
                        compiled, encrypted, plain, planned=planned
                    )
                )
            t_eval = time.perf_counter()
            plaintext, budgets = self.ctx.decrypt_with_budgets(
                output_ct, check_budget=False
            )
            decrypted = self.ctx.decode(plaintext)
            extra_decrypted = [
                self.ctx.decode(self.ctx.decrypt(ct, check_budget=False))
                for ct in extra_cts
            ]
            t_done = time.perf_counter()
        else:
            decrypted, budgets, extra_decrypted, per_opcode, guard_checks = (
                self._run_sharded(
                    compiled, encrypted, plain, batch, workers, counters,
                    planned,
                )
            )
            # workers decrypt their own shards, so evaluation and
            # decryption share the pool's wall time
            t_eval = t_done = time.perf_counter()
        self._record_stats(
            compiled, counters, batch=batch, planned=planned, workers=workers,
            guard_checks=guard_checks,
        )
        self._note_output_budgets(budgets)

        share = (t_eval - t_setup) / batch
        reports = []
        for i, env in enumerate(logical_envs):
            model_output = decrypted[i][: layout.vector_size]
            logical_output = layout.unpack_output(model_output)
            expected = np.array(
                self.spec.reference_output(env), dtype=np.int64
            ).reshape(layout.output_shape)
            reports.append(
                ExecutionReport(
                    model_output=model_output,
                    logical_output=logical_output,
                    expected_output=expected,
                    matches_reference=bool(
                        np.array_equal(logical_output, expected)
                    ),
                    output_noise_budget=budgets[i],
                    wall_time=share,
                    instruction_seconds={
                        k: v / batch for k, v in per_opcode.items()
                    },
                    extra_model_outputs=[
                        vecs[i][: layout.vector_size]
                        for vecs in extra_decrypted
                    ],
                )
            )
        return BatchExecutionReport(
            reports=reports,
            batch_size=batch,
            setup_seconds=t_setup - t_start,
            evaluate_seconds=t_eval - t_setup,
            decrypt_seconds=t_done - t_eval,
            total_seconds=t_done - t_start,
        )

    def _run_sharded(
        self,
        compiled: CompiledProgram,
        encrypted: dict,
        plain: dict,
        batch: int,
        workers: int,
        counters: ExecCounters,
        planned: bool,
    ):
        """Shard the encrypted batch axis across a lockstep thread pool.

        The whole batch is already encrypted (one RNG stream, identical
        to the single-worker path); shards are contiguous views of the
        ``(batch, k, N)`` stacks, so no ciphertext bytes are copied.
        Workers share the read-only tape/keys/plaintexts and own a
        private arena + counters; results are stitched back in batch
        order.  Every homomorphic op is elementwise along the batch
        axis, so shard boundaries cannot change any output bit.
        """
        bounds = [
            (batch * w) // workers for w in range(workers + 1)
        ]
        shards = [
            (w, bounds[w], bounds[w + 1])
            for w in range(workers)
            if bounds[w] < bounds[w + 1]
        ]
        for w, _lo, _hi in shards:
            self._worker_arenas.setdefault(w, ScratchArena())

        def run_shard(shard):
            w, lo, hi = shard
            shard_cts = {
                name: Ciphertext(
                    [part.batch_slice(lo, hi) for part in ct.parts]
                )
                for name, ct in encrypted.items()
            }
            shard_counters = ExecCounters()
            try:
                with execution_scope(self._worker_arenas[w], shard_counters):
                    output_ct, extra_cts, per_opcode, guard_checks = (
                        self._execute_tape(
                            compiled, shard_cts, plain, planned=planned
                        )
                    )
            except NoiseBudgetExhausted as error:
                # re-raise with the batch index rebased from shard-local
                # to global, so the caller can name the offending element
                index = error.batch_index
                raise NoiseBudgetExhausted(
                    f"{error} [shard covering batch elements {lo}:{hi}]",
                    min_budget=error.min_budget,
                    batch_index=None if index is None else lo + index,
                    op_index=error.op_index,
                    params_name=error.params_name,
                ) from error
            plaintext, budgets = self.ctx.decrypt_with_budgets(
                output_ct, check_budget=False
            )
            decrypted = self.ctx.decode(plaintext)
            extra_decrypted = [
                self.ctx.decode(self.ctx.decrypt(ct, check_budget=False))
                for ct in extra_cts
            ]
            return decrypted, budgets, extra_decrypted, per_opcode, (
                shard_counters
            ), guard_checks

        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            results = list(pool.map(run_shard, shards))

        decrypted = np.concatenate([r[0] for r in results])
        budgets = [b for r in results for b in r[1]]
        extra_count = len(compiled.extra_outputs)
        extra_decrypted = [
            np.concatenate([r[2][j] for r in results])
            for j in range(extra_count)
        ]
        per_opcode: dict[str, float] = {}
        guard_checks = 0
        for r in results:
            for key, seconds in r[3].items():
                per_opcode[key] = per_opcode.get(key, 0.0) + seconds
            counters.merge(r[4])
            guard_checks += r[5]
        return decrypted, budgets, extra_decrypted, per_opcode, guard_checks

    def _record_stats(
        self,
        compiled: CompiledProgram,
        counters: ExecCounters,
        batch: int,
        planned: bool,
        workers: int = 1,
        guard_checks: int = 0,
    ) -> None:
        """Fold one tape execution into the executor's running counters."""
        stats = self.stats
        stats.runs += 1
        stats.guard_checks += guard_checks
        stats.ntts_performed += counters.ntt_rows
        if planned and compiled.plan is not None:
            stats.ntts_planned += compiled.plan.ntts_planned * batch
            stats.ntts_elided += compiled.plan.ntts_elided * batch
        arena_bytes = self._arena.bytes_held + sum(
            arena.bytes_held for arena in self._worker_arenas.values()
        )
        stats.arena_bytes = max(stats.arena_bytes, arena_bytes)
        stats.exec_workers = max(stats.exec_workers, workers)

    def _note_output_budgets(self, budgets: list[int]) -> None:
        """Track the output-budget low-water mark and gate on the guard.

        With ``check_output`` set the executor refuses to hand back a
        decryption whose budget bottomed out — the typed raise replaces
        the silent garbage BFV would otherwise return.
        """
        low = min(budgets)
        stats = self.stats
        if stats.min_output_budget is None or low < stats.min_output_budget:
            stats.min_output_budget = int(low)
        guard = self.guard
        if (
            guard is not None
            and guard.check_output
            and low <= guard.min_budget_bits
        ):
            stats.guard_trips += 1
            worst = budgets.index(low)
            raise NoiseBudgetExhausted(
                f"output noise budget exhausted: {low} bits at batch "
                f"element {worst} of {len(budgets)} under params "
                f"{self.params.name!r}; decryption would return garbage",
                min_budget=low,
                batch_index=worst,
                params_name=self.params.name,
            )

    def _validate_envs(
        self, logical_envs: list[dict[str, np.ndarray]]
    ) -> None:
        """Reject malformed batches with a clear error, not a shape crash.

        Every environment must bind exactly the layout's input names; a
        missing or extra name in env ``i`` is reported by name and index
        instead of surfacing later as a ``KeyError`` or a numpy stacking
        failure halfway through encryption.
        """
        expected = {p.name for p in self.spec.layout.inputs}
        for i, env in enumerate(logical_envs):
            names = set(env)
            if names == expected:
                continue
            missing = sorted(expected - names)
            extra = sorted(names - expected)
            problems = []
            if missing:
                problems.append(f"missing input(s) {missing}")
            if extra:
                problems.append(f"unexpected input(s) {extra}")
            raise ValueError(
                f"run_many environment {i} of {len(logical_envs)} does not "
                f"match spec {self.spec.name!r}: {'; '.join(problems)} "
                f"(expected exactly {sorted(expected)})"
            )

    # ------------------------------------------------------------------
    # Plaintext cache
    # ------------------------------------------------------------------

    def _encode_cached(self, vec: np.ndarray):
        """Encode a vector, caching by content.

        The cache is bounded (cleared wholesale past
        ``PLAINTEXT_CACHE_LIMIT`` entries, mirroring the solver's shift
        cache policy) and cached plaintexts are frozen so no caller can
        mutate a shared entry.
        """
        key = vec.tobytes()
        cached = self._plaintext_cache.get(key)
        if cached is None:
            if len(self._plaintext_cache) >= self.PLAINTEXT_CACHE_LIMIT:
                self._plaintext_cache.clear()
            cached = self.ctx.encode(vec).freeze()
            self._plaintext_cache[key] = cached
        return cached

    def sanity_check(self, program: Program, seed: int = 0) -> ExecutionReport:
        """One end-to-end encrypted run on random in-range inputs."""
        rng = np.random.default_rng(seed)
        logical = {}
        for packed in self.spec.layout.inputs:
            logical[packed.name] = rng.integers(
                0, self.spec.backend_bound + 1, packed.shape, dtype=np.int64
            )
        report = self.run(program, logical)
        if multiplicative_depth(program) > 0 and report.output_noise_budget <= 0:
            raise RuntimeError("noise budget exhausted during sanity check")
        return report
