"""Execute Quill programs homomorphically and validate against the spec.

Model-to-ciphertext mapping: the model vector (layout slots) occupies the
first ``vector_size`` slots of batching row 0 of a BFV ciphertext, with
the rest of the row zero.  Quill's shift-with-zero-fill rotation equals
true cyclic row rotation *provided data never crosses the model window's
edges*; ``check_displacement`` verifies that statically from the layout's
margins before execution, so a passing run is genuine evidence of
equivalence, not luck.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.he import BFVContext
from repro.he.params import BFVParams
from repro.quill.ir import (
    CtInput,
    Opcode,
    Program,
    PtConst,
    PtInput,
    Ref,
    Wire,
)
from repro.quill.noise import multiplicative_depth
from repro.spec.reference import Spec


class DisplacementError(Exception):
    """Raised when a program could push packed data beyond its margins."""


def displacement_bounds(program: Program) -> tuple[int, int]:
    """Worst-case (left, right) slot displacement of any data element."""
    bounds: list[tuple[int, int]] = []

    def of(ref: Ref) -> tuple[int, int]:
        if isinstance(ref, Wire):
            return bounds[ref.index]
        return (0, 0)

    for instr in program.instructions:
        if instr.opcode is Opcode.ROTATE:
            left, right = of(instr.operands[0])
            if instr.amount > 0:
                left += instr.amount
            else:
                right -= instr.amount
            bounds.append((left, right))
        else:
            lefts, rights = zip(*(of(r) for r in instr.operands))
            bounds.append((max(lefts), max(rights)))
    if not isinstance(program.output, Wire):
        return (0, 0)
    return bounds[program.output.index]


def check_displacement(program: Program, spec: Spec) -> None:
    """Assert the layout margins absorb the program's data movement.

    Conservative: takes the worst bound over every wire, not just the
    output, since every intermediate must stay inside the model window.
    """
    max_left = max_right = 0
    bounds: list[tuple[int, int]] = []

    def of(ref: Ref) -> tuple[int, int]:
        if isinstance(ref, Wire):
            return bounds[ref.index]
        return (0, 0)

    for instr in program.instructions:
        if instr.opcode is Opcode.ROTATE:
            left, right = of(instr.operands[0])
            if instr.amount > 0:
                left += instr.amount
            else:
                right -= instr.amount
            bounds.append((left, right))
        else:
            lefts, rights = zip(*(of(r) for r in instr.operands))
            bounds.append((max(lefts), max(rights)))
        max_left = max(max_left, bounds[-1][0])
        max_right = max(max_right, bounds[-1][1])
    budget_left, budget_right = spec.layout.max_displacement_budget()
    if max_left > budget_left or max_right > budget_right:
        raise DisplacementError(
            f"program moves data {max_left} left / {max_right} right but the "
            f"layout margins allow only {budget_left} / {budget_right}; "
            "shift semantics would diverge from cyclic rotation"
        )


@dataclass
class ExecutionReport:
    """Everything one homomorphic run produced."""

    model_output: np.ndarray
    logical_output: np.ndarray
    expected_output: np.ndarray
    matches_reference: bool
    output_noise_budget: int
    wall_time: float
    instruction_seconds: dict[str, float] = field(default_factory=dict)


class HEExecutor:
    """Runs Quill programs under real BFV encryption."""

    def __init__(
        self,
        spec: Spec,
        params: BFVParams | None = None,
        seed: int | None = None,
    ):
        self.spec = spec
        if params is None:
            from repro.he.params import large_params, small_params

            params = {
                "n4096-depth1": small_params,
                "n8192-depth3": large_params,
            }.get(spec.params_name, small_params)()
        if spec.layout.vector_size > params.row_size:
            raise ValueError(
                "model vector does not fit one batching row; "
                "choose a larger polynomial degree"
            )
        self.params = params
        self.ctx = BFVContext(params, seed=seed)
        self._plaintext_cache: dict[bytes, object] = {}

    def prepare(self, program: Program) -> None:
        """Generate the Galois keys the program needs (outside timing)."""
        check_displacement(program, self.spec)
        for instr in program.instructions:
            if instr.opcode is Opcode.ROTATE:
                g = self.ctx.encoder.galois_element_for_rotation(instr.amount)
                self.ctx.generate_galois_key(g)

    def run(
        self,
        program: Program,
        logical_env: dict[str, np.ndarray],
        check: bool = True,
    ) -> ExecutionReport:
        """Encrypt, evaluate homomorphically, decrypt, and compare."""
        if check:
            check_displacement(program, self.spec)
        layout = self.spec.layout
        ct_env, pt_env = self.spec.packed_env(logical_env)
        encrypted = {
            name: self.ctx.encrypt_vector(vec) for name, vec in ct_env.items()
        }
        plain = {
            name: self._encode_cached(vec) for name, vec in pt_env.items()
        }
        for name in program.constants:
            plain[name] = self._encode_cached(
                np.array(program.constant_vector(name), dtype=np.int64)
            )
        self.prepare(program)

        ctx = self.ctx
        wires = []
        per_opcode: dict[str, float] = {}
        start = time.perf_counter()

        def fetch_ct(ref: Ref):
            if isinstance(ref, Wire):
                return wires[ref.index]
            assert isinstance(ref, CtInput)
            return encrypted[ref.name]

        for instr in program.instructions:
            t0 = time.perf_counter()
            if instr.opcode is Opcode.ROTATE:
                value = ctx.rotate_rows(fetch_ct(instr.operands[0]), instr.amount)
            else:
                a = fetch_ct(instr.operands[0])
                second = instr.operands[1]
                if isinstance(second, (PtInput, PtConst)):
                    pt = plain[second.name]
                    op = {
                        Opcode.ADD_CP: ctx.add_plain,
                        Opcode.SUB_CP: ctx.sub_plain,
                        Opcode.MUL_CP: ctx.multiply_plain,
                    }[instr.opcode]
                    value = op(a, pt)
                else:
                    b = fetch_ct(second)
                    op = {
                        Opcode.ADD_CC: ctx.add,
                        Opcode.SUB_CC: ctx.sub,
                        Opcode.MUL_CC: ctx.multiply,
                    }[instr.opcode]
                    value = op(a, b)
            elapsed = time.perf_counter() - t0
            key = instr.opcode.value
            per_opcode[key] = per_opcode.get(key, 0.0) + elapsed
            wires.append(value)
        wall = time.perf_counter() - start

        output_ct = fetch_ct(program.output)
        budget = ctx.noise_budget(output_ct)
        decrypted = ctx.decrypt_vector(output_ct)
        model_output = decrypted[: layout.vector_size]
        logical_output = layout.unpack_output(model_output)
        expected = np.array(
            self.spec.reference_output(logical_env), dtype=np.int64
        ).reshape(layout.output_shape)
        return ExecutionReport(
            model_output=model_output,
            logical_output=logical_output,
            expected_output=expected,
            matches_reference=bool(np.array_equal(logical_output, expected)),
            output_noise_budget=budget,
            wall_time=wall,
            instruction_seconds=per_opcode,
        )

    def _encode_cached(self, vec: np.ndarray):
        key = vec.tobytes()
        cached = self._plaintext_cache.get(key)
        if cached is None:
            cached = self.ctx.encode(vec)
            self._plaintext_cache[key] = cached
        return cached

    def sanity_check(self, program: Program, seed: int = 0) -> ExecutionReport:
        """One end-to-end encrypted run on random in-range inputs."""
        rng = np.random.default_rng(seed)
        logical = {}
        for packed in self.spec.layout.inputs:
            logical[packed.name] = rng.integers(
                0, self.spec.backend_bound + 1, packed.shape, dtype=np.int64
            )
        report = self.run(program, logical)
        if multiplicative_depth(program) > 0 and report.output_noise_budget <= 0:
            raise RuntimeError("noise budget exhausted during sanity check")
        return report
