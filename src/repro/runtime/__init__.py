"""Runtime: executing Quill kernels on the real BFV backend.

The executor plays the role of SEAL in the paper's toolchain: it encrypts
packed inputs, maps each Quill instruction onto the corresponding
homomorphic operation, decrypts the result, and checks it against the
plaintext reference — including that the noise budget never ran out.  The
profiler measures per-instruction latencies to (re)generate the latency
tables in :mod:`repro.quill.latency`.
"""

from repro.runtime.executor import ExecutionReport, HEExecutor
from repro.runtime.profiler import profile_instructions

__all__ = ["ExecutionReport", "HEExecutor", "profile_instructions"]
