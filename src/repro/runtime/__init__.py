"""Runtime: executing Quill kernels on the real BFV backend.

The executor plays the role of SEAL in the paper's toolchain: it encrypts
packed inputs, maps each Quill instruction onto the corresponding
homomorphic operation, decrypts the result, and checks it against the
plaintext reference — including that the noise budget never ran out.  The
profiler measures per-instruction latencies to (re)generate the latency
tables in :mod:`repro.quill.latency`.

Exports resolve lazily (PEP 562) so that synthesis-only users — e.g.
anything importing :mod:`repro.runtime.profiler` for
:class:`~repro.solver.engine.SearchStats` — never pay for the BFV
substrate the executor drags in.
"""

from importlib import import_module

_EXPORTS = {
    "BatchExecutionReport": "repro.runtime.executor",
    "ExecutionReport": "repro.runtime.executor",
    "HEExecutor": "repro.runtime.executor",
    "SchedulerStats": "repro.runtime.profiler",
    "SearchStats": "repro.runtime.profiler",
    "format_scheduler_table": "repro.runtime.profiler",
    "profile_instructions": "repro.runtime.profiler",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: resolve each name once
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
