"""Conservative noise-budget estimation and parameter auto-selection.

Porcupine's cost model penalises multiplicative depth because deeper
kernels force larger HE parameters (paper section 3.3).  This module
closes that loop for the runtime: given a Quill program and a BFV
parameter set, it walks the dataflow with standard worst-case noise-growth
heuristics (Fan-Vercauteren style bounds, in log2 space) and predicts how
many bits of invariant-noise budget the output ciphertext will have left.

The estimate is deliberately *conservative* — tests assert it never
predicts more budget than a real encrypted execution measures — so
``recommended_params`` can safely pick the smallest 128-bit-secure preset
for a kernel.
"""

from __future__ import annotations

import math

from repro.he.params import BFVParams, large_params, small_params
from repro.quill.ir import Opcode, Program, Ref, Wire


def _fresh_noise_bits(params: BFVParams) -> float:
    """log2 of the scaled invariant noise of a fresh encryption."""
    lt = math.log2(params.plain_modulus)
    ln = math.log2(params.poly_degree)
    lb = math.log2(6 * params.error_std)
    return lt + lb + ln + 3


def _key_switch_bits(params: BFVParams) -> float:
    """log2 of the additive key-switching noise (relin and rotations)."""
    digits = math.ceil(
        params.coeff_modulus.bit_length() / params.decomp_bits
    )
    lt = math.log2(params.plain_modulus)
    ln = math.log2(params.poly_degree)
    lb = math.log2(6 * params.error_std)
    return lt + math.log2(digits) + ln + params.decomp_bits + lb - 1


def estimate_output_noise_bits(program: Program, params: BFVParams) -> float:
    """Worst-case log2 scaled-noise of the program's output ciphertext.

    Relin-placement-aware: in an explicit-relin program a ct-ct multiply
    contributes only its multiplicative growth, and the key-switching
    noise lands where the ``RELIN`` instructions actually are.  Eager
    programs fold both into every multiply, exactly as the seed executor
    ran them.  Multi-output programs report the noisiest output.
    """
    fresh = _fresh_noise_bits(params)
    ks = _key_switch_bits(params)
    lt = math.log2(params.plain_modulus)
    ln = math.log2(params.poly_degree)
    explicit = program.is_explicit_relin
    bits: list[float] = []

    def of(ref: Ref) -> float:
        if isinstance(ref, Wire):
            return bits[ref.index]
        return fresh

    for instr in program.instructions:
        if instr.opcode is Opcode.ROTATE:
            value = _log2_sum(of(instr.operands[0]), ks)
        elif instr.opcode is Opcode.RELIN:
            value = _log2_sum(of(instr.operands[0]), ks)
        elif instr.opcode in (Opcode.ADD_CC, Opcode.SUB_CC):
            value = max(of(instr.operands[0]), of(instr.operands[1])) + 1
        elif instr.opcode in (Opcode.ADD_CP, Opcode.SUB_CP):
            value = of(instr.operands[0]) + 0.5
        elif instr.opcode is Opcode.MUL_CP:
            value = of(instr.operands[0]) + lt + ln / 2 + 1
        else:  # MUL_CC: multiplicative growth (+ relin noise when eager)
            grown = max(of(instr.operands[0]), of(instr.operands[1]))
            value = grown + lt + ln + 3
            if not explicit:
                value = _log2_sum(value, ks)
        bits.append(value)
    wire_outputs = [o for o in program.outputs if isinstance(o, Wire)]
    if not wire_outputs:
        return fresh
    return max(bits[o.index] for o in wire_outputs)


def estimate_noise_budget(program: Program, params: BFVParams) -> float:
    """Predicted bits of budget left after running ``program``.

    Comparable to :meth:`repro.he.context.BFVContext.noise_budget`: the
    output decrypts correctly while this stays above zero.
    """
    logq = math.log2(params.coeff_modulus)
    return logq - 1 - estimate_output_noise_bits(program, params)


def fits(program: Program, params: BFVParams, margin_bits: float = 0.0) -> bool:
    """Whether the program is predicted to decrypt under these parameters."""
    return estimate_noise_budget(program, params) > margin_bits


def recommended_params(
    program: Program, margin_bits: float = 5.0
) -> BFVParams:
    """Smallest 128-bit-secure preset predicted to run the program.

    Also requires the program's model vector to fit one batching row.
    Raises ``ValueError`` when no preset suffices (e.g. depth > 3).
    """
    for make in (small_params, large_params):
        params = make()
        if program.vector_size > params.row_size:
            continue
        if fits(program, params, margin_bits):
            return params
    raise ValueError(
        f"no 128-bit preset supports {program.name!r} "
        f"(estimated budget at N=8192: "
        f"{estimate_noise_budget(program, large_params()):.1f} bits)"
    )


def _log2_sum(a: float, b: float) -> float:
    """log2(2^a + 2^b), numerically stable."""
    hi, lo = (a, b) if a >= b else (b, a)
    return hi + math.log2(1 + 2 ** (lo - hi))
