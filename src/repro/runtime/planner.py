"""Compile-time NTT-domain planning over the executor's instruction tape.

The lazy ring layer decides coeff<->eval residency per operation, at run
time: whatever forms an operand happens to carry determine whether a
transform fires.  That policy is locally reasonable and globally wasteful
— a relinearized product that feeds another multiply is pushed into the
evaluation domain only to be pulled straight back, and every rotation of
an NTT-form ciphertext re-pays the inverse transform its key-switch
digits need.  EVA and HEIR treat conversion placement as a *compiler*
decision; this module does the same at the tape level.

The planner runs two exact simulations of the tape over per-part domain
state machines (which of ``{coeff, eval}`` each ciphertext part carries,
mirroring :mod:`repro.he.context` op for op):

* the **lazy** simulation reproduces the unplanned executor and counts
  the NTT row transforms it performs, and
* the **planned** simulation resolves one domain hint per step — greedy
  over (immediate transform cost + k rows per demanded-but-missing form
  on the result, from a backward demand pass) — and counts again.

Counts are in *row* units (one length-``N`` transform; a ``(k, N)``
element costs ``k`` rows, a key-switch digit stack ``digits * k``, the
multiply tensor ``7 * k_ext``) per batch element, so a measured run must
equal the prediction times its batch size — the property tests pin
exactly that.  Because the NTT is an exact linear bijection mod each
prime and automorphisms commute with it, *any* hint assignment yields
bit-identical residues; the plan changes only where transforms happen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quill.ir import Opcode

_C = "C"  # coefficient domain
_E = "E"  # evaluation (NTT) domain

_CC_OPS = (Opcode.ADD_CC, Opcode.SUB_CC)
_CP_OPS = (Opcode.ADD_CP, Opcode.SUB_CP)

# public hint vocabulary (what HEExecutor passes to BFVContext ops)
_DOMAIN_OF = {_C: "coeff", _E: "eval"}


@dataclass(frozen=True)
class DomainPlan:
    """Per-step domain hints plus the predicted transform economics.

    ``hints[i]`` is ``None`` (keep the lazy policy), ``"coeff"`` or
    ``"eval"`` for step ``i``; rotations are always executed in planned
    routing (cost is never worse than the lazy hoist).  Row counts are
    per batch element: a ``run_many`` over ``B`` inputs performs
    ``ntts_planned * B`` rows planned and ``ntts_lazy * B`` unplanned.
    """

    hints: tuple
    ntts_planned: int
    ntts_lazy: int

    @property
    def ntts_elided(self) -> int:
        return self.ntts_lazy - self.ntts_planned

    def summary(self) -> dict:
        return {
            "steps": len(self.hints),
            "hinted_steps": sum(1 for h in self.hints if h is not None),
            "ntts_planned": self.ntts_planned,
            "ntts_lazy": self.ntts_lazy,
            "ntts_elided": self.ntts_elided,
        }


class _Sim:
    """One exact pass of the tape over per-part domain-form sets.

    Mutable state mirrors what the runtime actually caches: slot values
    and ciphertext inputs hold per-part form sets (forcing a missing form
    caches it, like ``RingElement`` lazy materialisation), plaintext
    lifts hold one persistent form set per name (the ``Plaintext._lift``
    cache), and transient operands (the scaled plaintext in add_plain,
    the rotated c1 under lazy routing) pay their transform without
    caching anything.
    """

    def __init__(self, k: int, k_ext: int, digits: int):
        self.k = k
        self.k_ext = k_ext
        self.digits = digits
        self.rows = 0
        self.slots: dict[int, list[set]] = {}
        self.ct_inputs: dict[str, list[set]] = {}
        self.pt_lifts: dict[str, set] = {}

    # -- state access ---------------------------------------------------

    def ct_value(self, desc: tuple) -> list[set]:
        kind, key = desc
        if kind == "slot":
            return self.slots[key]
        # fresh encryptions arrive in NTT form (encrypt primes the masking
        # sums' caches and the public-key products are pointwise)
        return self.ct_inputs.setdefault(key, [{_E}, {_E}])

    def pt_value(self, name: str) -> set:
        return self.pt_lifts.setdefault(name, {_C})

    # -- primitives -----------------------------------------------------

    def force(self, forms: set, dom: str) -> None:
        """Materialise ``dom`` on a persistent value (transform + cache)."""
        if dom not in forms:
            self.rows += self.k
            forms.add(dom)

    def force_transient(self, forms: set, dom: str) -> None:
        """Materialise ``dom`` on a value that dies after this op."""
        if dom not in forms:
            self.rows += self.k

    def binary(
        self, a: set, b: set, hint: str | None, b_transient: bool = False
    ) -> set:
        """Mirror ``RingElement._binary``: domains computed and forced."""
        force_b = self.force_transient if b_transient else self.force
        if hint == "coeff":
            self.force(a, _C)
            force_b(b, _C)
            return {_C}
        if hint == "eval":
            self.force(a, _E)
            force_b(b, _E)
            return {_E}
        out = set()
        if _C in a and _C in b:
            out.add(_C)
        if _E in a and _E in b:
            out.add(_E)
        if not out:  # mixed domains: the lazy policy prefers evaluation
            self.force(a, _E)
            force_b(b, _E)
            out.add(_E)
        return out

    def relinearize(self, parts: list[set], hint: str | None) -> list[set]:
        self.force(parts[2], _C)  # digit decomposition reads coefficients
        self.rows += self.digits * self.k  # batched digit-stack forward
        if hint == "coeff":
            self.rows += 2 * self.k  # prime_coeffs on the two accumulators
            self.force(parts[0], _C)
            self.force(parts[1], _C)
            return [{_C}, {_C}]
        self.force(parts[0], _E)  # prime_evals on both target parts
        self.force(parts[1], _E)
        return [{_E}, {_E}]

    # -- one tape step --------------------------------------------------

    def apply(
        self,
        opcode: Opcode,
        a_desc: tuple,
        b_desc: tuple | None,
        hint: str | None,
        planned: bool,
        eager: bool,
    ) -> list[set]:
        if opcode in _CC_OPS:
            a = self.ct_value(a_desc)
            b = self.ct_value(b_desc)
            return [self.binary(p, q, hint) for p, q in zip(a, b)]
        if opcode in _CP_OPS:
            a = self.ct_value(a_desc)
            lift = self.pt_value(b_desc[1])
            if hint == "eval":
                self.force(lift, _E)  # prime the cached lift, paid once
            scaled = set(lift)  # scalar_mul copies every cached form
            head = self.binary(a[0], scaled, hint, b_transient=True)
            return [head] + [set(p) for p in a[1:]]
        if opcode is Opcode.MUL_CP:
            a = self.ct_value(a_desc)
            lift = self.pt_value(b_desc[1])
            self.force(lift, _E)
            for p in a:
                self.force(p, _E)
            return [{_E} for _ in a]
        if opcode is Opcode.MUL_CC:
            a = self.ct_value(a_desc)
            b = self.ct_value(b_desc)
            for j in (0, 1):  # the tensor stacks coefficient residues
                self.force(a[j], _C)
                self.force(b[j], _C)
            self.rows += 7 * self.k_ext  # 4 forward + 3 inverse, ext basis
            product = [{_C}, {_C}, {_C}]
            if eager:
                return self.relinearize(product, hint)
            return product
        if opcode is Opcode.RELIN:
            return self.relinearize(self.ct_value(a_desc), hint)
        assert opcode is Opcode.ROTATE
        a = self.ct_value(a_desc)
        if planned:
            # c0 permutes evaluation rows; c1 routes through coefficients
            # (the decomposition needs them) *cached on the input wire*,
            # so repeated rotations of one value pay the inverse once
            self.force(a[0], _E)
            self.force(a[1], _C)
        else:
            self.force(a[0], _E)  # the lazy hoist
            # lazy c1 is a fresh permuted element: its coefficient form is
            # recomputed per rotation and never cached on the input
            self.force_transient(a[1], _C)
        self.rows += self.digits * self.k
        return [{_E}, {_E}]

    def run_step(self, step, hint, planned, eager) -> None:
        opcode, a, b, _amount, out_slot, _frees = step
        result = self.apply(opcode, a, b, hint, planned, eager)
        if out_slot >= 0:
            self.slots[out_slot] = result


def _wiring(steps, output: tuple, extras: tuple, eager: bool):
    """Producer step of each operand, part counts, and output producers."""
    producers: list[tuple[int | None, int | None]] = []
    part_counts: list[int] = []
    slot_prod: dict[int, int] = {}
    for i, (opcode, a, b, _amount, out_slot, _frees) in enumerate(steps):
        pa = slot_prod.get(a[1]) if a[0] == "slot" else None
        pb = slot_prod.get(b[1]) if (b is not None and b[0] == "slot") else None
        producers.append((pa, pb))
        if opcode is Opcode.MUL_CC and not eager:
            count = 3
        elif opcode in _CC_OPS or opcode in _CP_OPS or opcode is Opcode.MUL_CP:
            count = part_counts[pa] if pa is not None else 2
        else:  # ROTATE, RELIN, eager MUL_CC
            count = 2
        part_counts.append(count)
        if out_slot >= 0:
            slot_prod[out_slot] = i
    out_producers = [
        slot_prod.get(desc[1])
        for desc in (output, *extras)
        if desc[0] == "slot"
    ]
    return producers, part_counts, out_producers


def _demands(steps, producers, part_counts, out_producers, eager):
    """Backward pass: which domains each step's result parts must serve.

    Demand guides the greedy hint choice only — correctness never depends
    on it.  Program outputs demand the evaluation domain (decryption's
    ``c0 + c1*s`` is a pointwise product)."""
    demand = [[set() for _ in range(part_counts[i])] for i in range(len(steps))]

    def want(producer, part, doms):
        if producer is not None and doms:
            demand[producer][part] |= doms

    for producer in out_producers:
        if producer is not None:
            for part in range(part_counts[producer]):
                demand[producer][part].add(_E)
    for i in range(len(steps) - 1, -1, -1):
        opcode = steps[i][0]
        pa, pb = producers[i]
        dm = demand[i]
        if opcode is Opcode.ROTATE:
            want(pa, 0, {_E})
            want(pa, 1, {_C})
        elif opcode is Opcode.MUL_CC:
            for j in (0, 1):
                want(pa, j, {_C})
                want(pb, j, {_C})
        elif opcode is Opcode.RELIN:
            want(pa, 0, dm[0])
            want(pa, 1, dm[1])
            want(pa, 2, {_C})
        elif opcode is Opcode.MUL_CP:
            if pa is not None:
                for j in range(part_counts[pa]):
                    want(pa, j, {_E})
        else:  # ADD/SUB, ct-ct and ct-pt: linear, demand passes through
            for j, doms in enumerate(dm):
                if pa is not None and j < part_counts[pa]:
                    want(pa, j, doms)
                if pb is not None and j < part_counts[pb]:
                    want(pb, j, doms)
    return demand


def _candidates(opcode: Opcode, dm: list[set]) -> list[str | None]:
    union = set().union(*dm) if dm else set()
    if opcode is Opcode.MUL_CC or opcode is Opcode.RELIN:
        # the only planned variant folds the key-switch result back into
        # the coefficient domain; worth it when no consumer wants eval
        return ["coeff", None] if union == {_C} else [None, "coeff"]
    if len(union) == 1:
        dom = _DOMAIN_OF[next(iter(union))]
        rest = [h for h in (None, "coeff", "eval") if h != dom]
        return [dom] + rest
    return [None, "coeff", "eval"]


def _probe_cost(sim: _Sim, step, hint, eager, dm) -> int:
    """Immediate rows of ``hint`` plus a k-row penalty per demanded form
    the result would not carry — evaluated on copies, no state mutated."""
    opcode, a_desc, b_desc, _amount, _out, _frees = step
    probe = _Sim(sim.k, sim.k_ext, sim.digits)
    probe.slots = {
        key: [set(p) for p in parts] for key, parts in sim.slots.items()
    }
    probe.ct_inputs = {
        key: [set(p) for p in parts] for key, parts in sim.ct_inputs.items()
    }
    probe.pt_lifts = {key: set(v) for key, v in sim.pt_lifts.items()}
    result = probe.apply(opcode, a_desc, b_desc, hint, True, eager)
    deferred = sum(
        sim.k * len(doms - forms) for doms, forms in zip(dm, result)
    )
    return probe.rows + deferred


def plan_tape(
    steps: list,
    output: tuple,
    extras: tuple,
    eager: bool,
    k: int,
    k_ext: int,
    digits: int,
) -> DomainPlan:
    """Plan domain residency for one compiled tape.

    ``k``/``k_ext`` are the coefficient- and extension-basis prime counts,
    ``digits`` the key-switch digit depth; ``eager`` mirrors the
    executor's relinearize-every-multiply mode.
    """
    producers, part_counts, out_producers = _wiring(
        steps, output, extras, eager
    )
    demand = _demands(steps, producers, part_counts, out_producers, eager)

    lazy = _Sim(k, k_ext, digits)
    for step in steps:
        lazy.run_step(step, None, False, eager)

    greedy = _Sim(k, k_ext, digits)
    hints: list[str | None] = []
    for i, step in enumerate(steps):
        opcode = step[0]
        if opcode is Opcode.ROTATE or opcode is Opcode.MUL_CP:
            hint = None  # fixed routing; nothing to choose
        else:
            options = _candidates(opcode, demand[i])
            hint = min(
                options,
                key=lambda h: _probe_cost(greedy, step, h, eager, demand[i]),
            )
        hints.append(hint)
        greedy.run_step(step, hint, True, eager)

    # Planned routing with no hints is provably never costlier than lazy
    # (forms only accumulate; rotation caching strictly helps), so a
    # greedy plan that somehow loses falls back to it.
    if greedy.rows > lazy.rows:
        baseline = _Sim(k, k_ext, digits)
        for step in steps:
            baseline.run_step(step, None, True, eager)
        return DomainPlan(
            hints=tuple(None for _ in steps),
            ntts_planned=baseline.rows,
            ntts_lazy=lazy.rows,
        )
    return DomainPlan(
        hints=tuple(hints),
        ntts_planned=greedy.rows,
        ntts_lazy=lazy.rows,
    )
