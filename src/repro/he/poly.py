"""Ring elements of ``R_q = Z_q[x]/(x^N + 1)`` in RNS representation.

A :class:`RingElement` stores one residue row per RNS prime (shape
``(k, N)`` int64) and keeps both representations of that matrix lazily:

* the **coefficient** domain (natural order), needed for automorphisms on
  coefficients, digit decomposition, and scheme boundaries, and
* the **evaluation** (NTT) domain, where ring multiplication is a
  pointwise product.

Whichever domain an element was produced in is kept; the other is
materialised on demand through the ring's batched NTT and then cached, so
chains of add / rotate / multiply never forward- or inverse-transform the
same polynomial twice.  Galois automorphisms act in *either* domain: as the
classic signed coefficient permutation, or as an unsigned permutation of
evaluation points (``f(psi^e) -> f(psi^{e*g})``).  Big-integer coefficient
views are materialised only at scheme boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.he.ntt import BatchNTT, NTTContext
from repro.he.rns import RNSBasis


class RingContext:
    """Shared tables for one polynomial ring: basis primes + NTT contexts."""

    def __init__(self, n: int, primes: list[int]):
        self.n = n
        self.basis = RNSBasis(primes)
        self.ntts = [NTTContext(n, p) for p in primes]
        self.batch_ntt = BatchNTT(self.ntts)
        self._primes_col = np.array(primes, dtype=np.int64)[:, None]
        self._automorphism_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._eval_perm_cache: dict[int, np.ndarray] = {}
        self._eval_exponents: list[int] | None = None

    @property
    def modulus(self) -> int:
        return self.basis.modulus

    def zero(self) -> "RingElement":
        shape = (len(self.basis), self.n)
        return RingElement(self, np.zeros(shape, dtype=np.int64))

    def from_int_coeffs(self, coeffs) -> "RingElement":
        """Build an element from integer coefficients (any magnitude/sign).

        Accepts a single length-``n`` vector or a ``(..., n)`` stack (the
        batched execution path encrypts whole input batches at once).
        """
        if np.shape(coeffs)[-1] != self.n:
            raise ValueError(f"expected {self.n} coefficients")
        return RingElement(self, self.basis.decompose(coeffs))

    def from_residues(self, residues: np.ndarray) -> "RingElement":
        return RingElement(self, residues % self._primes_col)

    def from_eval(self, eval_rows: np.ndarray) -> "RingElement":
        """Build an element already in the NTT (evaluation) domain."""
        return RingElement(self, eval_rows=eval_rows % self._primes_col)

    def constant(self, value: int) -> "RingElement":
        coeffs = [value] + [0] * (self.n - 1)
        return self.from_int_coeffs(coeffs)

    def automorphism_tables(self, galois_elt: int):
        """Permutation/sign tables for ``x -> x^g`` on coefficient vectors.

        Coefficient ``i`` of the input lands at position ``i*g mod 2N``; the
        negacyclic relation ``x^N = -1`` folds positions >= N back with a
        sign flip.
        """
        if galois_elt % 2 == 0:
            raise ValueError("Galois elements must be odd")
        cached = self._automorphism_cache.get(galois_elt)
        if cached is not None:
            return cached
        n = self.n
        pos = np.arange(n, dtype=np.int64) * galois_elt % (2 * n)
        dest = np.where(pos < n, pos, pos - n)
        sign = np.where(pos < n, 1, -1).astype(np.int64)
        self._automorphism_cache[galois_elt] = (dest, sign)
        return dest, sign

    def evaluation_exponents(self) -> list[int]:
        """Exponent ``e_j`` of the evaluation point at output position ``j``.

        The butterfly network's output ordering is a pure index pattern, so
        the exponent list is identical for every prime of the basis (the
        equivalence tests assert this); it is derived once from the first
        NTT context and shared.
        """
        if self._eval_exponents is None:
            self._eval_exponents = self.ntts[0].evaluation_exponents()
        return self._eval_exponents

    def prime_evals(self, elements: list["RingElement"]) -> None:
        """Fill the NTT caches of several same-shape elements in one pass."""
        pending = [e for e in elements if e._eval is None]
        if not pending:
            return
        evals = self.batch_ntt.forward(
            np.stack([e._coeff for e in pending]), assume_reduced=True
        )
        for element, rows in zip(pending, evals):
            element._eval = rows

    def prime_coeffs(self, elements: list["RingElement"]) -> None:
        """Fill the coefficient caches of several elements in one pass.

        The inverse-domain twin of :meth:`prime_evals`, used by the
        domain planner when a value's consumers all demand coefficients
        (e.g. a relinearized product feeding another multiply)."""
        pending = [e for e in elements if e._coeff is None]
        if not pending:
            return
        coeffs = self.batch_ntt.inverse(
            np.stack([e._eval for e in pending]), assume_reduced=True
        )
        for element, rows in zip(pending, coeffs):
            element._coeff = rows

    def eval_automorphism_table(self, galois_elt: int) -> np.ndarray:
        """Permutation realising ``x -> x^g`` directly on evaluation rows.

        The automorphism maps ``f`` to ``f(x^g)``, whose value at the point
        ``psi^e`` is ``f(psi^{e*g mod 2N})`` — a sign-free permutation of
        evaluation positions (``g`` odd keeps the odd-exponent point set
        closed).  Rotating a ciphertext that is already in NTT form
        therefore needs no transform at all.
        """
        if galois_elt % 2 == 0:
            raise ValueError("Galois elements must be odd")
        cached = self._eval_perm_cache.get(galois_elt)
        if cached is not None:
            return cached
        exps = self.evaluation_exponents()
        position_of = {e: j for j, e in enumerate(exps)}
        two_n = 2 * self.n
        perm = np.array(
            [position_of[e * galois_elt % two_n] for e in exps],
            dtype=np.int64,
        )
        perm.flags.writeable = False
        self._eval_perm_cache[galois_elt] = perm
        return perm


class RingElement:
    """One polynomial of ``R_q``, stored as an RNS residue matrix.

    Carries the coefficient-domain matrix, the evaluation-domain matrix, or
    both; missing forms are materialised lazily and cached.  Elements are
    value-immutable: every operation returns a new element, and the cached
    forms of an operand are never written to.
    """

    __slots__ = ("ctx", "_coeff", "_eval")

    def __init__(
        self,
        ctx: RingContext,
        residues: np.ndarray | None = None,
        *,
        eval_rows: np.ndarray | None = None,
    ):
        if residues is None and eval_rows is None:
            raise ValueError("RingElement needs residues or eval_rows")
        self.ctx = ctx
        self._coeff = residues
        self._eval = eval_rows

    @property
    def residues(self) -> np.ndarray:
        """Coefficient-domain residue matrix (materialised on demand)."""
        if self._coeff is None:
            # cached forms are canonical by construction (every producer
            # reduces), so the transform skips its defensive entry mod
            self._coeff = self.ctx.batch_ntt.inverse(
                self._eval, assume_reduced=True
            )
        return self._coeff

    def eval_rows(self) -> np.ndarray:
        """Evaluation-domain residue matrix (materialised on demand)."""
        if self._eval is None:
            self._eval = self.ctx.batch_ntt.forward(
                self._coeff, assume_reduced=True
            )
        return self._eval

    @property
    def shape(self) -> tuple:
        """Residue-stack shape, read from whichever form is present
        (never forces a transform)."""
        form = self._coeff if self._coeff is not None else self._eval
        return form.shape

    @property
    def has_eval(self) -> bool:
        return self._eval is not None

    @property
    def has_coeff(self) -> bool:
        return self._coeff is not None

    def copy(self) -> "RingElement":
        return RingElement(
            self.ctx,
            None if self._coeff is None else self._coeff.copy(),
            eval_rows=None if self._eval is None else self._eval.copy(),
        )

    def batch_slice(self, lo: int, hi: int) -> "RingElement":
        """A view of batch elements ``[lo, hi)`` of a batched element.

        Slices every cached form along the leading batch axis without
        copying; elements are value-immutable, so sharing the underlying
        arrays with the parent is safe.  Used by the lockstep executor to
        shard one encrypted ``(batch, k, N)`` stack across workers."""
        return RingElement(
            self.ctx,
            None if self._coeff is None else self._coeff[lo:hi],
            eval_rows=None if self._eval is None else self._eval[lo:hi],
        )

    @staticmethod
    def _mod_add(a: np.ndarray, b: np.ndarray, p: np.ndarray) -> np.ndarray:
        """``(a + b) mod p`` for canonical operands, division-free.

        Sums of two residues in ``[0, p)`` land in ``[0, 2p)``; one
        conditional subtract restores the canonical range — bit-identical
        to ``%`` and ~2x faster (int64 division is the expensive pass).
        The fix-up runs per prime row with a scalar modulus: the
        conditional's temporaries then stay row-sized instead of
        whole-stack-sized, which keeps batched adds out of the allocator
        (a fresh ``(batch, k, n)`` temp per op is page-fault-bound).
        """
        s = a + b
        for i in range(p.shape[0]):
            row = s[..., i, :]
            pi = p[i, 0]
            row -= (row >= pi) * pi
        return s

    @staticmethod
    def _mod_sub(a: np.ndarray, b: np.ndarray, p: np.ndarray) -> np.ndarray:
        """``(a - b) mod p`` for canonical operands, division-free."""
        d = a - b
        for i in range(p.shape[0]):
            row = d[..., i, :]
            pi = p[i, 0]
            row += (row < 0) * pi
        return d

    def _binary(
        self, other: "RingElement", op, out_domain: str | None = None
    ) -> "RingElement":
        """Apply a linear op in whichever domain avoids a transform.

        ``out_domain=None`` keeps the historical lazy policy: both forms
        present on both operands -> compute both (cheap numpy adds) so
        downstream consumers of either domain stay transform-free.  A
        domain plan passes ``"coeff"``/``"eval"`` to compute exactly the
        form its consumers demand — transforms are exact bijections and
        the op is linear, so every choice yields bit-identical values.
        """
        p = self.ctx._primes_col
        fn = self._mod_add if op is np.add else self._mod_sub
        if out_domain == "coeff":
            return RingElement(self.ctx, fn(self.residues, other.residues, p))
        if out_domain == "eval":
            return RingElement(
                self.ctx, eval_rows=fn(self.eval_rows(), other.eval_rows(), p)
            )
        coeff = None
        eval_rows = None
        if self._coeff is not None and other._coeff is not None:
            coeff = fn(self._coeff, other._coeff, p)
        if self._eval is not None and other._eval is not None:
            eval_rows = fn(self._eval, other._eval, p)
        if coeff is None and eval_rows is None:
            # mixed domains: prefer evaluation (keeps hot chains in NTT form)
            eval_rows = fn(self.eval_rows(), other.eval_rows(), p)
        return RingElement(self.ctx, coeff, eval_rows=eval_rows)

    def add(
        self, other: "RingElement", out_domain: str | None = None
    ) -> "RingElement":
        return self._binary(other, np.add, out_domain)

    def sub(
        self, other: "RingElement", out_domain: str | None = None
    ) -> "RingElement":
        return self._binary(other, np.subtract, out_domain)

    def __add__(self, other: "RingElement") -> "RingElement":
        return self._binary(other, np.add)

    def __sub__(self, other: "RingElement") -> "RingElement":
        return self._binary(other, np.subtract)

    def __neg__(self) -> "RingElement":
        p = self.ctx._primes_col
        return RingElement(
            self.ctx,
            None if self._coeff is None else (-self._coeff) % p,
            eval_rows=None if self._eval is None else (-self._eval) % p,
        )

    def __mul__(self, other: "RingElement") -> "RingElement":
        """Negacyclic product: pointwise in the (cached) NTT domain."""
        p = self.ctx._primes_col
        product = self.eval_rows() * other.eval_rows() % p
        return RingElement(self.ctx, eval_rows=product)

    def scalar_mul(self, scalar: int) -> "RingElement":
        p = self.ctx._primes_col
        scalars = np.array(
            [scalar % pi for pi in self.ctx.basis.primes], dtype=np.int64
        )[:, None]
        return RingElement(
            self.ctx,
            None if self._coeff is None else self._coeff * scalars % p,
            eval_rows=(
                None if self._eval is None else self._eval * scalars % p
            ),
        )

    def automorphism(
        self, galois_elt: int, domains: str | None = None
    ) -> "RingElement":
        """``x -> x^g``, applied in every domain the element already has.

        ``domains`` narrows the work under a domain plan: ``"coeff"`` /
        ``"eval"`` produce exactly that form (materialising the source
        form if missing), instead of permuting every cached form.  The
        automorphism commutes with the NTT, so all choices agree.
        """
        want_coeff = (
            self._coeff is not None if domains is None else domains == "coeff"
        )
        want_eval = (
            self._eval is not None if domains is None else domains == "eval"
        )
        coeff = None
        eval_rows = None
        if want_coeff:
            dest, sign = self.ctx.automorphism_tables(galois_elt)
            out = np.empty_like(self._coeff if self._coeff is not None else self.residues)
            # sign is +-1, so the signed residues sit in (-p, p); one
            # conditional add restores canonical form without a division
            signed = self.residues * sign
            signed += self.ctx._primes_col * (signed < 0)
            out[..., dest] = signed
            coeff = out
        if want_eval:
            perm = self.ctx.eval_automorphism_table(galois_elt)
            eval_rows = self.eval_rows()[..., perm]
        return RingElement(self.ctx, coeff, eval_rows=eval_rows)

    def to_int_coeffs(self) -> list[int]:
        """Coefficients in ``[0, q)``."""
        return self.ctx.basis.compose(self.residues)

    def to_centered_coeffs(self) -> list[int]:
        """Coefficients in ``(-q/2, q/2]`` (the noise-minimal lift)."""
        return self.ctx.basis.compose_centered(self.residues)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RingElement):
            return NotImplemented
        return bool(np.array_equal(self.residues, other.residues))

    def __repr__(self) -> str:
        return f"RingElement(n={self.ctx.n}, k={len(self.ctx.basis)})"


def exact_negacyclic_product(
    a_coeffs: list[int],
    b_coeffs: list[int],
    ext_ring: RingContext,
    schoolbook: bool = False,
) -> list[int]:
    """Exact integer negacyclic product of two coefficient vectors.

    Used by the *reference* BFV multiplication path, whose tensor step must
    be computed over the integers (not mod q) before rescaling by ``t/q``.
    The product is taken in an extended RNS basis large enough to hold
    every coefficient of the result, then reconstructed with centered CRT
    (``schoolbook=True`` keeps the reconstruction on the seed's
    per-coefficient Garner loop, for the ``slow_reference`` oracle).

    The caller is responsible for passing centered inputs and an extension
    ring whose modulus exceeds ``2 * N * max|a| * max|b|``.
    """
    a = ext_ring.from_int_coeffs(a_coeffs)
    b = ext_ring.from_int_coeffs(b_coeffs)
    if schoolbook:
        # the seed's eager per-prime convolution loop, kept verbatim
        out = np.empty_like(a.residues)
        for i, ntt in enumerate(ext_ring.ntts):
            fa = ntt.forward(a.residues[i])
            fb = ntt.forward(b.residues[i])
            out[i] = ntt.inverse(fa * fb % ntt.prime)
        return ext_ring.basis.compose_centered_schoolbook(out)
    return (a * b).to_centered_coeffs()
