"""Ring elements of ``R_q = Z_q[x]/(x^N + 1)`` in RNS representation.

A :class:`RingElement` stores one residue row per RNS prime (shape
``(k, N)`` int64), so additions, negacyclic multiplications (via NTT), and
Galois automorphisms are all vectorized numpy operations.  Big-integer
coefficient views are materialised only at scheme boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.he.ntt import NTTContext
from repro.he.rns import RNSBasis


class RingContext:
    """Shared tables for one polynomial ring: basis primes + NTT contexts."""

    def __init__(self, n: int, primes: list[int]):
        self.n = n
        self.basis = RNSBasis(primes)
        self.ntts = [NTTContext(n, p) for p in primes]
        self._primes_col = np.array(primes, dtype=np.int64)[:, None]
        self._automorphism_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def modulus(self) -> int:
        return self.basis.modulus

    def zero(self) -> "RingElement":
        shape = (len(self.basis), self.n)
        return RingElement(self, np.zeros(shape, dtype=np.int64))

    def from_int_coeffs(self, coeffs) -> "RingElement":
        """Build an element from integer coefficients (any magnitude/sign)."""
        if len(coeffs) != self.n:
            raise ValueError(f"expected {self.n} coefficients")
        return RingElement(self, self.basis.decompose(coeffs))

    def from_residues(self, residues: np.ndarray) -> "RingElement":
        return RingElement(self, residues % self._primes_col)

    def constant(self, value: int) -> "RingElement":
        coeffs = [value] + [0] * (self.n - 1)
        return self.from_int_coeffs(coeffs)

    def automorphism_tables(self, galois_elt: int):
        """Permutation/sign tables for ``x -> x^g`` on coefficient vectors.

        Coefficient ``i`` of the input lands at position ``i*g mod 2N``; the
        negacyclic relation ``x^N = -1`` folds positions >= N back with a
        sign flip.
        """
        if galois_elt % 2 == 0:
            raise ValueError("Galois elements must be odd")
        cached = self._automorphism_cache.get(galois_elt)
        if cached is not None:
            return cached
        n = self.n
        dest = np.empty(n, dtype=np.int64)
        sign = np.empty(n, dtype=np.int64)
        for i in range(n):
            d = i * galois_elt % (2 * n)
            if d < n:
                dest[i] = d
                sign[i] = 1
            else:
                dest[i] = d - n
                sign[i] = -1
        self._automorphism_cache[galois_elt] = (dest, sign)
        return dest, sign


class RingElement:
    """One polynomial of ``R_q``, stored as an RNS residue matrix."""

    __slots__ = ("ctx", "residues")

    def __init__(self, ctx: RingContext, residues: np.ndarray):
        self.ctx = ctx
        self.residues = residues

    def copy(self) -> "RingElement":
        return RingElement(self.ctx, self.residues.copy())

    def __add__(self, other: "RingElement") -> "RingElement":
        res = (self.residues + other.residues) % self.ctx._primes_col
        return RingElement(self.ctx, res)

    def __sub__(self, other: "RingElement") -> "RingElement":
        res = (self.residues - other.residues) % self.ctx._primes_col
        return RingElement(self.ctx, res)

    def __neg__(self) -> "RingElement":
        return RingElement(self.ctx, (-self.residues) % self.ctx._primes_col)

    def __mul__(self, other: "RingElement") -> "RingElement":
        """Negacyclic product via per-prime NTT convolution."""
        out = np.empty_like(self.residues)
        for i, ntt in enumerate(self.ctx.ntts):
            fa = ntt.forward(self.residues[i])
            fb = ntt.forward(other.residues[i])
            out[i] = ntt.inverse(fa * fb % ntt.prime)
        return RingElement(self.ctx, out)

    def scalar_mul(self, scalar: int) -> "RingElement":
        scalars = np.array(
            [scalar % p for p in self.ctx.basis.primes], dtype=np.int64
        )[:, None]
        return RingElement(
            self.ctx, self.residues * scalars % self.ctx._primes_col
        )

    def automorphism(self, galois_elt: int) -> "RingElement":
        dest, sign = self.ctx.automorphism_tables(galois_elt)
        out = np.empty_like(self.residues)
        signed = self.residues * sign[None, :] % self.ctx._primes_col
        out[:, dest] = signed
        return RingElement(self.ctx, out)

    def to_int_coeffs(self) -> list[int]:
        """Coefficients in ``[0, q)``."""
        return self.ctx.basis.compose(self.residues)

    def to_centered_coeffs(self) -> list[int]:
        """Coefficients in ``(-q/2, q/2]`` (the noise-minimal lift)."""
        return self.ctx.basis.compose_centered(self.residues)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RingElement):
            return NotImplemented
        return bool(np.array_equal(self.residues, other.residues))

    def __repr__(self) -> str:
        return f"RingElement(n={self.ctx.n}, k={len(self.ctx.basis)})"


def exact_negacyclic_product(
    a_coeffs: list[int], b_coeffs: list[int], ext_ring: RingContext
) -> list[int]:
    """Exact integer negacyclic product of two coefficient vectors.

    Used by BFV multiplication, whose tensor step must be computed over the
    integers (not mod q) before rescaling by ``t/q``.  The product is taken
    in an extended RNS basis large enough to hold every coefficient of the
    result, then reconstructed with centered CRT.

    The caller is responsible for passing centered inputs and an extension
    ring whose modulus exceeds ``2 * N * max|a| * max|b|``.
    """
    a = ext_ring.from_int_coeffs(a_coeffs)
    b = ext_ring.from_int_coeffs(b_coeffs)
    return (a * b).to_centered_coeffs()
