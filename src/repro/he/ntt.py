"""Negacyclic number-theoretic transforms, numpy-vectorized.

Implements the merged-psi Cooley-Tukey forward / Gentleman-Sande inverse
NTT pair (Longa & Naehrig, "Speeding up the Number Theoretic Transform for
Faster Ideal Lattice-Based Cryptography"): the forward transform consumes
natural coefficient order and produces bit-reversed evaluation order, the
inverse consumes bit-reversed order and restores natural order, and the
scaling by powers of the 2N-th root psi is folded into the twiddle tables.

Pointwise products in the bit-reversed domain realise negacyclic
convolution, i.e. multiplication in ``Z_p[x]/(x^N + 1)``.

Every butterfly operates on int64 numpy arrays; with primes below 2^31 the
intermediate products stay below 2^62 and never overflow.
"""

from __future__ import annotations

import numpy as np

from repro.he.primes import primitive_root_of_unity


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


class NTTContext:
    """Per-prime transform tables for a fixed size ``n`` (a power of two)."""

    def __init__(self, n: int, prime: int):
        if n & (n - 1) != 0 or n < 2:
            raise ValueError("NTT size must be a power of two >= 2")
        if (prime - 1) % (2 * n) != 0:
            raise ValueError(f"prime {prime} is not 1 mod {2 * n}")
        if prime >= 1 << 31:
            raise ValueError("NTT primes must be below 2^31 for int64 math")
        self.n = n
        self.prime = prime
        self.psi = primitive_root_of_unity(2 * n, prime)
        self.psi_inv = pow(self.psi, -1, prime)
        self.n_inv = pow(n, -1, prime)
        bits = n.bit_length() - 1
        rev = [bit_reverse(i, bits) for i in range(n)]
        self.psi_rev = np.array(
            [pow(self.psi, r, prime) for r in rev], dtype=np.int64
        )
        self.psi_inv_rev = np.array(
            [pow(self.psi_inv, r, prime) for r in rev], dtype=np.int64
        )

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Natural-order coefficients -> bit-reversed negacyclic evaluations."""
        a = np.array(coeffs, dtype=np.int64) % self.prime
        p = self.prime
        n = self.n
        t = n
        m = 1
        while m < n:
            t //= 2
            block = a.reshape(m, 2 * t)
            twiddle = self.psi_rev[m : 2 * m, None]
            upper = block[:, :t].copy()
            lower = block[:, t:] * twiddle % p
            block[:, :t] = (upper + lower) % p
            block[:, t:] = (upper - lower) % p
            m *= 2
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Bit-reversed negacyclic evaluations -> natural-order coefficients."""
        a = np.array(values, dtype=np.int64) % self.prime
        p = self.prime
        n = self.n
        t = 1
        m = n
        while m > 1:
            h = m // 2
            block = a.reshape(h, 2 * t)
            twiddle = self.psi_inv_rev[h : 2 * h, None]
            upper = block[:, :t].copy()
            lower = block[:, t:].copy()
            block[:, :t] = (upper + lower) % p
            block[:, t:] = (upper - lower) % p * twiddle % p
            t *= 2
            m = h
        return a * self.n_inv % p

    def convolve(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic convolution: ``a * b mod (x^n + 1, p)``."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(fa * fb % self.prime)

    def evaluation_exponents(self) -> list[int]:
        """Odd exponent ``e_j`` with ``forward(f)[j] == f(psi^{e_j})``.

        Derived empirically by transforming the monomial ``x`` and taking
        discrete logs of the outputs, so the result stays correct whatever
        ordering convention the butterfly network produces.  Used by the
        batching encoder to map SIMD slots onto evaluation points.
        """
        probe = np.zeros(self.n, dtype=np.int64)
        probe[1] = 1
        outputs = self.forward(probe)
        dlog = {}
        acc = 1
        for e in range(2 * self.n):
            dlog[acc] = e
            acc = acc * self.psi % self.prime
        return [dlog[int(v)] for v in outputs]


def naive_negacyclic_convolve(a, b, prime: int) -> np.ndarray:
    """Reference O(n^2) negacyclic convolution, used only in tests."""
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            term = int(a[i]) * int(b[j])
            if k >= n:
                out[k - n] -= term
            else:
                out[k] += term
    return np.array([c % prime for c in out], dtype=np.int64)
