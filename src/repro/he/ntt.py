"""Negacyclic number-theoretic transforms, numpy-vectorized.

Implements the merged-psi Cooley-Tukey forward / Gentleman-Sande inverse
NTT pair (Longa & Naehrig, "Speeding up the Number Theoretic Transform for
Faster Ideal Lattice-Based Cryptography"): the forward transform consumes
natural coefficient order and produces bit-reversed evaluation order, the
inverse consumes bit-reversed order and restores natural order, and the
scaling by powers of the 2N-th root psi is folded into the twiddle tables.

Pointwise products in the bit-reversed domain realise negacyclic
convolution, i.e. multiplication in ``Z_p[x]/(x^N + 1)``.

Every butterfly operates on int64 numpy arrays; with primes below 2^31 the
intermediate products stay below 2^62 and never overflow.  Both
:class:`NTTContext` and the multi-prime :class:`BatchNTT` transform any
``(..., n)`` / ``(..., k, n)`` stack in one pass of the butterfly loop, so
stacked workloads (all RNS primes of a ring, all digits of a key switch)
cost one Python-level loop of ``log2 n`` vectorized stages total.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.he.arena import count_ntt_rows, current_arena
from repro.he.primes import primitive_root_of_unity


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


@lru_cache(maxsize=None)
def bit_reverse_indices(n: int) -> np.ndarray:
    """Bit-reversal permutation of ``range(n)`` (``n`` a power of two).

    Computed vectorized (``log2 n`` shift/or passes over the whole index
    vector) and cached per size, so every per-prime NTT context of a ring
    — and every ring of the same degree — shares one read-only table.
    """
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    rev.flags.writeable = False
    return rev


def _power_table(base: int, exponents: np.ndarray, prime: int) -> np.ndarray:
    """``base ** exponents mod prime`` via a vectorized square-and-multiply."""
    result = np.ones(len(exponents), dtype=np.int64)
    acc = base % prime
    e = exponents.copy()
    while e.any():
        odd = (e & 1).astype(bool)
        result[odd] = result[odd] * acc % prime
        acc = acc * acc % prime
        e >>= 1
    return result


class NTTContext:
    """Per-prime transform tables for a fixed size ``n`` (a power of two)."""

    def __init__(self, n: int, prime: int):
        if n & (n - 1) != 0 or n < 2:
            raise ValueError("NTT size must be a power of two >= 2")
        if (prime - 1) % (2 * n) != 0:
            raise ValueError(f"prime {prime} is not 1 mod {2 * n}")
        if prime >= 1 << 31:
            raise ValueError("NTT primes must be below 2^31 for int64 math")
        self.n = n
        self.prime = prime
        self.psi = primitive_root_of_unity(2 * n, prime)
        self.psi_inv = pow(self.psi, -1, prime)
        self.n_inv = pow(n, -1, prime)
        rev = bit_reverse_indices(n)
        self.psi_rev = _power_table(self.psi, rev, prime)
        self.psi_inv_rev = _power_table(self.psi_inv, rev, prime)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Natural-order coefficients -> bit-reversed negacyclic evaluations.

        Transforms the last axis; any leading axes ride along vectorized.
        """
        a = np.asarray(coeffs, dtype=np.int64) % self.prime
        p = self.prime
        n = self.n
        t = n
        m = 1
        while m < n:
            t //= 2
            block = a.reshape(a.shape[:-1] + (m, 2 * t))
            twiddle = self.psi_rev[m : 2 * m, None]
            upper = block[..., :t].copy()
            lower = block[..., t:] * twiddle % p
            block[..., :t] = (upper + lower) % p
            block[..., t:] = (upper - lower) % p
            m *= 2
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Bit-reversed negacyclic evaluations -> natural-order coefficients.

        Transforms the last axis; any leading axes ride along vectorized.
        """
        a = np.asarray(values, dtype=np.int64) % self.prime
        p = self.prime
        n = self.n
        t = 1
        m = n
        while m > 1:
            h = m // 2
            block = a.reshape(a.shape[:-1] + (h, 2 * t))
            twiddle = self.psi_inv_rev[h : 2 * h, None]
            upper = block[..., :t].copy()
            lower = block[..., t:].copy()
            block[..., :t] = (upper + lower) % p
            block[..., t:] = (upper - lower) % p * twiddle % p
            t *= 2
            m = h
        return a * self.n_inv % p

    def convolve(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic convolution: ``a * b mod (x^n + 1, p)``."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(fa * fb % self.prime)

    def evaluation_exponents(self) -> list[int]:
        """Odd exponent ``e_j`` with ``forward(f)[j] == f(psi^{e_j})``.

        Derived empirically by transforming the monomial ``x`` and taking
        discrete logs of the outputs, so the result stays correct whatever
        ordering convention the butterfly network produces.  Used by the
        batching encoder to map SIMD slots onto evaluation points.
        """
        probe = np.zeros(self.n, dtype=np.int64)
        probe[1] = 1
        outputs = self.forward(probe)
        dlog = {}
        acc = 1
        for e in range(2 * self.n):
            dlog[acc] = e
            acc = acc * self.psi % self.prime
        return [dlog[int(v)] for v in outputs]


class BatchNTT:
    """All per-prime transforms of one ring, fused into single numpy passes.

    Operates on stacked residue arrays of shape ``(..., k, n)`` — one row
    per RNS prime, any number of leading batch axes (ciphertext parts,
    key-switch digits).  Twiddle tables are stacked ``(k, n)`` views of the
    per-prime :class:`NTTContext` tables, so a whole ring (or a whole
    ``(digits, k, n)`` digit stack) is transformed by one ``log2 n``-stage
    butterfly loop instead of ``k`` (or ``digits * k``) separate ones.

    The butterflies are lazy in the Harvey style: twiddle products use
    Shoup's precomputed-quotient trick (``w_shoup = floor(w * 2^31 / p)``,
    one multiply-shift-multiply-subtract instead of an integer division)
    and sums are left unreduced while the running magnitude bound stays
    below ``2^31``; a full reduction is interleaved only when the bound
    would overflow and once at the end.  ``np.mod`` — by far the most
    expensive vectorized pass — all but disappears from the hot loop.
    Stages are processed two at a time (fused radix-4 passes) on a
    transposed ``(n, batch, k)`` layout, so every numpy operation streams
    contiguous ``batch * k`` runs even in the smallest sub-blocks.
    Results are bit-identical to the eager per-prime transforms.
    """

    _LIMIT = 1 << 31  # Shoup operands must stay below 2^31

    def __init__(self, ntts: list[NTTContext]):
        if not ntts:
            raise ValueError("BatchNTT needs at least one NTT context")
        self.n = ntts[0].n
        if any(c.n != self.n for c in ntts):
            raise ValueError("all NTT contexts must share one size")
        self.primes = np.array([c.prime for c in ntts], dtype=np.int64)
        self._p_col = self.primes[:, None]  # (k, 1) for (..., k, n)
        self._pmax = int(self.primes.max())
        self._pmin = int(self.primes.min())
        psi_rev = np.stack([c.psi_rev for c in ntts])
        psi_inv_rev = np.stack([c.psi_inv_rev for c in ntts])
        self._n_inv = np.array([c.n_inv for c in ntts], dtype=np.int64)
        # transposed twiddle tables (n, k) plus their Shoup companions
        # floor(w << 31 / p); w < 2^31 keeps w << 31 < 2^62 in int64
        self._w_fwd = np.ascontiguousarray(psi_rev.T)
        self._ws_fwd = np.ascontiguousarray(((psi_rev << 31) // self._p_col).T)
        self._w_inv = np.ascontiguousarray(psi_inv_rev.T)
        self._ws_inv = np.ascontiguousarray(
            ((psi_inv_rev << 31) // self._p_col).T
        )
        # per batch-width expansions of the tables (twiddles/moduli tiled
        # across the collapsed batch*k trailing axis, so every numpy inner
        # loop runs the full width instead of k elements)
        self._expanded: dict[int, tuple] = {}
        # Fused radix-4 stages push Shoup operands up to 4p; primes above
        # 2^29 must take the radix-2 path so operands stay below 2^31.
        self._radix4 = 4 * self._pmax < self._LIMIT

    # -- layout helpers -------------------------------------------------

    def _tables_for(self, batch: int) -> tuple:
        cached = self._expanded.get(batch)
        if cached is None:
            cached = (
                np.tile(self._w_fwd, (1, batch)),
                np.tile(self._ws_fwd, (1, batch)),
                np.tile(self._w_inv, (1, batch)),
                np.tile(self._ws_inv, (1, batch)),
                np.tile(self.primes, batch),
                np.tile(self._n_inv, batch),
            )
            if len(self._expanded) < 8:  # bound the per-shape cache
                self._expanded[batch] = cached
        return cached

    def _to_cols(
        self, residues: np.ndarray, tag: str
    ) -> tuple[np.ndarray, tuple]:
        """``(..., k, n) -> (n, batch*k)`` contiguous working copy.

        Inside an active :func:`~repro.he.arena.execution_scope` the copy
        lands in a reused arena buffer (the butterfly loop mutates it in
        place), so steady-state transforms allocate no fresh workspace.
        """
        a = np.asarray(residues, dtype=np.int64)
        shape = a.shape
        flat = a.reshape(-1, self.n).T
        arena = current_arena()
        if arena is None:
            return np.ascontiguousarray(flat), shape
        buf = arena.take(tag, flat.shape)
        np.copyto(buf, flat)
        return buf, shape

    def _from_cols(
        self, x: np.ndarray, shape: tuple, out: np.ndarray | None = None
    ) -> np.ndarray:
        if out is not None:
            if out.shape != shape:
                raise ValueError(
                    f"out has shape {out.shape}, expected {shape}"
                )
            np.copyto(out.reshape(-1, self.n), x.T)
            return out
        return np.ascontiguousarray(x.T).reshape(shape)

    @staticmethod
    def _shoup(y, w, ws, p):
        """``y * w mod p`` up to one extra ``p``: result in ``[0, 2p)``.

        Requires ``y < 2^31``; callers track magnitude bounds to
        guarantee it.  No integer division anywhere.
        """
        return y * w - ((y * ws) >> 31) * p

    @staticmethod
    def _twiddle(table, lo, hi, step=1):
        """Slice rows ``[lo:hi:step]`` shaped for ``(m, t, batch*k)``."""
        return table[lo:hi:step][:, None, :]

    # -- transforms -----------------------------------------------------

    def forward(
        self,
        residues: np.ndarray,
        reduce_output: bool = True,
        assume_reduced: bool = False,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Coefficient stack ``(..., k, n)`` -> evaluation stack.

        ``reduce_output=False`` skips the final canonical reduction; the
        result is congruent mod each prime but only bounded by ``2^31``
        (for consumers that fold the reduction into their own accumulate).
        ``assume_reduced=True`` promises the input is already canonical
        (every residue in ``[0, p)``), skipping the defensive entry
        reduction — callers inside the ring layer uphold this invariant
        by construction.  ``out`` receives the result in place (it must
        match the input's shape).
        """
        x, shape = self._to_cols(residues, "fwd")
        n = self.n
        count_ntt_rows(x.shape[1])
        w_fwd, ws_fwd, _, _, p, _ = self._tables_for(x.shape[1] // len(self.primes))
        two_p = 2 * p
        pmax = self._pmax
        if not assume_reduced:
            np.mod(x, p, out=x)
        bound = pmax
        m, t = 1, n
        while m < n:
            # every Shoup operand this stage stays below bound + 2*pmax
            if bound + 2 * pmax >= self._LIMIT:
                np.mod(x, p, out=x)
                bound = pmax
            if t >= 4 and self._radix4:
                t4 = t // 4
                v = x.reshape(m, 4, t4, -1)
                # stage-A twiddle w[m+i] is shared by both pairs of the
                # group, so one Shoup call covers the contiguous (x2, x3)
                # half; stage-B twiddles w[2m+2i], w[2m+2i+1] interleave
                # naturally into a (m, 2) pair via reshape.
                w_a = w_fwd[m : 2 * m][:, None, None, :]
                ws_a = ws_fwd[m : 2 * m][:, None, None, :]
                w_b = w_fwd[2 * m : 4 * m].reshape(m, 2, 1, -1)
                ws_b = ws_fwd[2 * m : 4 * m].reshape(m, 2, 1, -1)
                ta = self._shoup(v[:, 2:4], w_a, ws_a, p)  # (m, 2, t4, W)
                upper = v[:, 0:2] + ta
                lower = v[:, 0:2] - ta + two_p
                pair = np.stack([upper[:, 1], lower[:, 1]], axis=1)
                tb = self._shoup(pair, w_b, ws_b, p)
                v[:, 0] = upper[:, 0] + tb[:, 0]
                v[:, 1] = upper[:, 0] - tb[:, 0] + two_p
                v[:, 2] = lower[:, 0] + tb[:, 1]
                v[:, 3] = lower[:, 0] - tb[:, 1] + two_p
                bound += 4 * pmax
                m *= 4
                t = t4
            else:
                t2 = t // 2
                v = x.reshape(m, 2, t2, -1)
                w = self._twiddle(w_fwd, m, 2 * m)
                ws = self._twiddle(ws_fwd, m, 2 * m)
                x0 = v[:, 0]
                tv = self._shoup(v[:, 1], w, ws, p)
                diff = x0 - tv + two_p
                np.add(x0, tv, out=v[:, 0])
                v[:, 1] = diff
                bound += 2 * pmax
                m *= 2
                t = t2
        if reduce_output:
            np.mod(x, p, out=x)
        return self._from_cols(x, shape, out=out)

    def inverse(
        self,
        values: np.ndarray,
        assume_reduced: bool = False,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Evaluation stack ``(..., k, n)`` -> coefficient stack.

        ``assume_reduced`` / ``out`` behave as in :meth:`forward`.
        """
        x, shape = self._to_cols(values, "inv")
        n = self.n
        count_ntt_rows(x.shape[1])
        _, _, w_inv, ws_inv, p, n_inv = self._tables_for(
            x.shape[1] // len(self.primes)
        )
        pmax = self._pmax
        pmin = self._pmin
        if not assume_reduced:
            np.mod(x, p, out=x)
        bound = pmax
        m, t = n, 1
        while m > 1:
            if m >= 4 and self._radix4:
                lift1 = -(-bound // pmin)  # ceil: offset keeping diffs >= 0
                lift2 = -(-2 * bound // pmin)
                if (
                    bound + lift1 * pmax >= self._LIMIT
                    or 2 * bound + lift2 * pmax >= self._LIMIT
                ):
                    np.mod(x, p, out=x)
                    bound = pmax
                    lift1, lift2 = 1, 2
                h = m // 4
                # pairs-of-pairs view: vv[:, j, 0/1] are the two halves of
                # stage-1 block 2i+j; the interleaved twiddles
                # w[m/2+2i], w[m/2+2i+1] pair up via reshape.
                vv = x.reshape(h, 2, 2, t, -1)
                w1 = w_inv[m // 2 : m].reshape(h, 2, 1, -1)
                ws1 = ws_inv[m // 2 : m].reshape(h, 2, 1, -1)
                w2 = w_inv[h : m // 2][:, None, None, :]
                ws2 = ws_inv[h : m // 2][:, None, None, :]
                sums = vv[:, :, 0] + vv[:, :, 1]  # (h, 2, t, W)
                diffs = self._shoup(
                    vv[:, :, 0] - vv[:, :, 1] + lift1 * p, w1, ws1, p
                )
                pair = np.stack(
                    [
                        sums[:, 0] - sums[:, 1] + lift2 * p,
                        diffs[:, 0] - diffs[:, 1] + 2 * p,
                    ],
                    axis=1,
                )
                low = self._shoup(pair, w2, ws2, p)
                vv[:, 0, 0] = sums[:, 0] + sums[:, 1]
                vv[:, 1, 0] = low[:, 0]
                vv[:, 0, 1] = diffs[:, 0] + diffs[:, 1]
                vv[:, 1, 1] = low[:, 1]
                bound = max(4 * bound, 4 * pmax)
                m //= 4
                t *= 4
            else:
                lift = -(-bound // pmin)
                if 2 * bound >= self._LIMIT or bound + lift * pmax >= self._LIMIT:
                    np.mod(x, p, out=x)
                    bound = pmax
                    lift = 1
                v = x.reshape(m // 2, 2, t, -1)
                w = self._twiddle(w_inv, m // 2, m)
                ws = self._twiddle(ws_inv, m // 2, m)
                q0, q1 = v[:, 0], v[:, 1]
                total = q0 + q1
                v[:, 1] = self._shoup(q0 - q1 + lift * p, w, ws, p)
                v[:, 0] = total
                bound = max(2 * bound, 2 * pmax)
                m //= 2
                t *= 2
        np.multiply(x, n_inv, out=x)
        np.mod(x, p, out=x)
        return self._from_cols(x, shape, out=out)


def naive_negacyclic_convolve(a, b, prime: int) -> np.ndarray:
    """Reference O(n^2) negacyclic convolution, used only in tests."""
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            term = int(a[i]) * int(b[j])
            if k >= n:
                out[k - n] -= term
            else:
                out[k] += term
    return np.array([c % prime for c in out], dtype=np.int64)
