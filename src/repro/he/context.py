"""The BFV cryptosystem: keygen, encryption, and homomorphic evaluation.

This module is the substrate equivalent of SEAL's ``Evaluator`` /
``Encryptor`` / ``Decryptor`` stack.  It implements textbook BFV (Fan &
Vercauteren 2012, the paper's reference [16]) with:

* public-key encryption ``ct = (p0*u + e1 + Delta*m, p1*u + e2)``,
* ciphertext-ciphertext and ciphertext-plaintext add/sub/multiply,
* relinearization of the 3-part product ciphertext using base-T digit
  decomposition,
* SIMD slot rotation via Galois automorphisms plus key switching,
* invariant-noise-budget measurement mirroring SEAL's diagnostics.

All ring arithmetic is RNS/NTT-based (:mod:`repro.he.poly`); exact integer
arithmetic appears only where BFV requires it (the tensor-and-rescale step
of multiplication, decryption rounding, digit decomposition).
"""

from __future__ import annotations

import math

import numpy as np

from repro.he.encoder import BatchEncoder
from repro.he.errors import HEError, NoiseBudgetExhausted
from repro.he.keys import GaloisKeys, KSwitchKey, PublicKey, SecretKey
from repro.he.params import BFVParams
from repro.he.poly import RingContext, RingElement, exact_negacyclic_product
from repro.he.primes import find_ntt_primes
from repro.he.rns import centered


class Plaintext:
    """A plaintext polynomial (coefficients mod t) with a cached ring lift."""

    __slots__ = ("coeffs", "_lift")

    def __init__(self, coeffs: np.ndarray):
        self.coeffs = np.asarray(coeffs, dtype=np.int64)
        self._lift: RingElement | None = None

    def lift(self, ring: RingContext, t: int) -> RingElement:
        """Centered lift of the plaintext into R_q (noise-minimal)."""
        if self._lift is None:
            half = t // 2
            signed = np.where(self.coeffs > half, self.coeffs - t, self.coeffs)
            self._lift = ring.from_int_coeffs([int(c) for c in signed])
        return self._lift


class Ciphertext:
    """A BFV ciphertext: 2 (or transiently 3) ring elements."""

    __slots__ = ("parts",)

    def __init__(self, parts: list[RingElement]):
        if len(parts) not in (2, 3):
            raise HEError("ciphertexts must have 2 or 3 parts")
        self.parts = parts

    @property
    def size(self) -> int:
        return len(self.parts)

    def copy(self) -> "Ciphertext":
        return Ciphertext([p.copy() for p in self.parts])


class BFVContext:
    """One key pair plus every homomorphic operation over it."""

    def __init__(self, params: BFVParams, seed: int | None = None):
        self.params = params
        self.ring = RingContext(params.poly_degree, list(params.coeff_primes))
        self.encoder = BatchEncoder(params)
        self._rng = np.random.default_rng(seed)
        self.q = params.coeff_modulus
        self.t = params.plain_modulus
        self.delta = self.q // self.t
        self._digit_count = math.ceil(self.q.bit_length() / params.decomp_bits)
        self._ext_ring = self._build_extension_ring()
        self._keygen()
        self.galois_keys = GaloisKeys()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _build_extension_ring(self) -> RingContext:
        """RNS basis big enough for exact integer tensor products.

        BFV multiplication forms integer products of centered ciphertext
        polynomials; coefficients are bounded by ``N * q^2`` (Karatsuba
        operand sums reach ``q``), so the extension modulus must exceed
        ``4 * N * q^2`` to allow a centered reconstruction with margin.
        """
        n = self.params.poly_degree
        needed_bits = 2 * self.q.bit_length() + n.bit_length() + 3
        count = needed_bits // 25 + 1
        primes = find_ntt_primes(count, 26, 2 * n)
        overlap = set(primes) & set(self.params.coeff_primes)
        if overlap:
            raise HEError(f"extension primes collide with coeff primes: {overlap}")
        return RingContext(n, primes)

    def _sample_ternary(self) -> RingElement:
        coeffs = self._rng.integers(-1, 2, self.params.poly_degree)
        return self.ring.from_int_coeffs([int(c) for c in coeffs])

    def _sample_error(self) -> RingElement:
        std = self.params.error_std
        raw = self._rng.normal(0.0, std, self.params.poly_degree)
        clipped = np.clip(np.rint(raw), -6 * std, 6 * std).astype(np.int64)
        return self.ring.from_int_coeffs([int(c) for c in clipped])

    def _sample_uniform(self) -> RingElement:
        rows = [
            self._rng.integers(0, p, self.params.poly_degree, dtype=np.int64)
            for p in self.params.coeff_primes
        ]
        return RingElement(self.ring, np.stack(rows, axis=0))

    def _keygen(self) -> None:
        s = self._sample_ternary()
        a = self._sample_uniform()
        e = self._sample_error()
        self.secret_key = SecretKey(s)
        self.public_key = PublicKey(p0=-(a * s + e), p1=a)
        self.relin_key = self._make_kswitch_key(s * s)

    def _make_kswitch_key(self, source_secret: RingElement) -> KSwitchKey:
        """Key switching ``source_secret -> s`` with base-T digits."""
        pairs = []
        factor = 1
        for _ in range(self._digit_count):
            a = self._sample_uniform()
            e = self._sample_error()
            k0 = -(a * self.secret_key.s + e) + source_secret.scalar_mul(factor)
            pairs.append((k0, a))
            factor <<= self.params.decomp_bits
        return KSwitchKey(pairs)

    def generate_galois_key(self, galois_elt: int) -> None:
        if galois_elt not in self.galois_keys:
            rotated_secret = self.secret_key.s.automorphism(galois_elt)
            self.galois_keys.add(galois_elt, self._make_kswitch_key(rotated_secret))

    # ------------------------------------------------------------------
    # Encode / encrypt / decrypt
    # ------------------------------------------------------------------

    def encode(self, values) -> Plaintext:
        return Plaintext(self.encoder.encode(values))

    def decode(self, plaintext: Plaintext, signed: bool = True) -> np.ndarray:
        return self.encoder.decode(plaintext.coeffs, signed=signed)

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        u = self._sample_ternary()
        e1 = self._sample_error()
        e2 = self._sample_error()
        m_scaled = plaintext.lift(self.ring, self.t).scalar_mul(self.delta)
        c0 = self.public_key.p0 * u + e1 + m_scaled
        c1 = self.public_key.p1 * u + e2
        return Ciphertext([c0, c1])

    def encrypt_vector(self, values) -> Ciphertext:
        return self.encrypt(self.encode(values))

    def _noise_poly(self, ct: Ciphertext) -> list[int]:
        """Coefficients of ``c0 + c1*s (+ c2*s^2)`` in ``[0, q)``."""
        s = self.secret_key.s
        acc = ct.parts[0] + ct.parts[1] * s
        if ct.size == 3:
            acc = acc + ct.parts[2] * (s * s)
        return acc.to_int_coeffs()

    def decrypt(self, ct: Ciphertext, check_budget: bool = True) -> Plaintext:
        if check_budget and self.noise_budget(ct) <= 0:
            raise NoiseBudgetExhausted(
                "ciphertext noise budget exhausted; decryption would corrupt"
            )
        q, t = self.q, self.t
        w = self._noise_poly(ct)
        coeffs = np.array(
            [(t * c + q // 2) // q % t for c in w], dtype=np.int64
        )
        return Plaintext(coeffs)

    def decrypt_vector(self, ct: Ciphertext, signed: bool = True) -> np.ndarray:
        return self.decode(self.decrypt(ct), signed=signed)

    def noise_budget(self, ct: Ciphertext) -> int:
        """Bits of invariant-noise headroom (0 means decryption may fail)."""
        q, t = self.q, self.t
        max_u = 0
        for c in self._noise_poly(ct):
            u = abs(centered(t * c % q, q))
            if u > max_u:
                max_u = u
        if max_u == 0:
            return q.bit_length() - 1
        budget = (q // (2 * max_u)).bit_length() - 1
        return max(0, budget)

    # ------------------------------------------------------------------
    # Homomorphic operations
    # ------------------------------------------------------------------

    def add(self, ct1: Ciphertext, ct2: Ciphertext) -> Ciphertext:
        self._check_sizes(ct1, ct2)
        return Ciphertext([a + b for a, b in zip(ct1.parts, ct2.parts)])

    def sub(self, ct1: Ciphertext, ct2: Ciphertext) -> Ciphertext:
        self._check_sizes(ct1, ct2)
        return Ciphertext([a - b for a, b in zip(ct1.parts, ct2.parts)])

    def negate(self, ct: Ciphertext) -> Ciphertext:
        return Ciphertext([-p for p in ct.parts])

    def add_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        m_scaled = pt.lift(self.ring, self.t).scalar_mul(self.delta)
        parts = [ct.parts[0] + m_scaled] + [p.copy() for p in ct.parts[1:]]
        return Ciphertext(parts)

    def sub_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        m_scaled = pt.lift(self.ring, self.t).scalar_mul(self.delta)
        parts = [ct.parts[0] - m_scaled] + [p.copy() for p in ct.parts[1:]]
        return Ciphertext(parts)

    def multiply_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        lift = pt.lift(self.ring, self.t)
        return Ciphertext([p * lift for p in ct.parts])

    def multiply(
        self, ct1: Ciphertext, ct2: Ciphertext, relinearize: bool = True
    ) -> Ciphertext:
        """BFV multiply: exact integer tensor, rescale by t/q, relinearize."""
        if ct1.size != 2 or ct2.size != 2:
            raise HEError("multiply expects relinearized (2-part) operands")
        a0 = ct1.parts[0].to_centered_coeffs()
        a1 = ct1.parts[1].to_centered_coeffs()
        b0 = ct2.parts[0].to_centered_coeffs()
        b1 = ct2.parts[1].to_centered_coeffs()
        # Karatsuba: three exact products instead of four.
        p00 = exact_negacyclic_product(a0, b0, self._ext_ring)
        p11 = exact_negacyclic_product(a1, b1, self._ext_ring)
        asum = [x + y for x, y in zip(a0, a1)]
        bsum = [x + y for x, y in zip(b0, b1)]
        pss = exact_negacyclic_product(asum, bsum, self._ext_ring)
        p01 = [s - x - y for s, x, y in zip(pss, p00, p11)]
        parts = [
            self._rescale_to_ring(p00),
            self._rescale_to_ring(p01),
            self._rescale_to_ring(p11),
        ]
        product = Ciphertext(parts)
        if relinearize:
            product = self.relinearize(product)
        return product

    def _rescale_to_ring(self, coeffs: list[int]) -> RingElement:
        """``round(t * v / q) mod q`` applied coefficient-wise."""
        q, t = self.q, self.t
        scaled = [(t * v + q // 2) // q for v in coeffs]
        return self.ring.from_int_coeffs(scaled)

    def relinearize(self, ct: Ciphertext) -> Ciphertext:
        """Fold the quadratic part of a 3-part ciphertext back to 2 parts."""
        if ct.size == 2:
            return ct.copy()
        d0, d1 = self._key_switch(ct.parts[2], self.relin_key)
        return Ciphertext([ct.parts[0] + d0, ct.parts[1] + d1])

    def rotate_rows(self, ct: Ciphertext, steps: int) -> Ciphertext:
        """Rotate both batching rows left by ``steps`` (negative = right)."""
        if ct.size != 2:
            raise HEError("rotate expects a relinearized (2-part) ciphertext")
        steps = steps % self.encoder.row_size
        if steps == 0:
            return ct.copy()
        g = self.encoder.galois_element_for_rotation(steps)
        return self._apply_galois(ct, g)

    def rotate_columns(self, ct: Ciphertext) -> Ciphertext:
        """Swap the two batching rows."""
        if ct.size != 2:
            raise HEError("rotate expects a relinearized (2-part) ciphertext")
        return self._apply_galois(ct, self.encoder.galois_element_row_swap)

    def _apply_galois(self, ct: Ciphertext, galois_elt: int) -> Ciphertext:
        self.generate_galois_key(galois_elt)
        key = self.galois_keys.get(galois_elt)
        c0g = ct.parts[0].automorphism(galois_elt)
        c1g = ct.parts[1].automorphism(galois_elt)
        d0, d1 = self._key_switch(c1g, key)
        return Ciphertext([c0g + d0, d1])

    def _key_switch(
        self, poly: RingElement, key: KSwitchKey
    ) -> tuple[RingElement, RingElement]:
        """Inner product of base-T digits with an NTT-domain switch key."""
        ring = self.ring
        bits = self.params.decomp_bits
        mask = (1 << bits) - 1
        coeffs = poly.to_int_coeffs()
        primes_col = ring._primes_col
        acc0 = np.zeros_like(poly.residues)
        acc1 = np.zeros_like(poly.residues)
        for j in range(len(key)):
            shift = bits * j
            digit = np.array(
                [(c >> shift) & mask for c in coeffs], dtype=np.int64
            )
            digit_res = digit[None, :] % primes_col
            digit_eval = np.stack(
                [ntt.forward(digit_res[i]) for i, ntt in enumerate(ring.ntts)]
            )
            acc0 = (acc0 + digit_eval * key._ntt_cache_0[j]) % primes_col
            acc1 = (acc1 + digit_eval * key._ntt_cache_1[j]) % primes_col
        out0 = np.stack(
            [ntt.inverse(acc0[i]) for i, ntt in enumerate(ring.ntts)]
        )
        out1 = np.stack(
            [ntt.inverse(acc1[i]) for i, ntt in enumerate(ring.ntts)]
        )
        return RingElement(ring, out0), RingElement(ring, out1)

    @staticmethod
    def _check_sizes(ct1: Ciphertext, ct2: Ciphertext) -> None:
        if ct1.size != ct2.size:
            raise HEError(
                f"ciphertext sizes differ ({ct1.size} vs {ct2.size}); "
                "relinearize first"
            )
