"""The BFV cryptosystem: keygen, encryption, and homomorphic evaluation.

This module is the substrate equivalent of SEAL's ``Evaluator`` /
``Encryptor`` / ``Decryptor`` stack.  It implements textbook BFV (Fan &
Vercauteren 2012, the paper's reference [16]) with:

* public-key encryption ``ct = (p0*u + e1 + Delta*m, p1*u + e2)``,
* ciphertext-ciphertext and ciphertext-plaintext add/sub/multiply,
* relinearization of the 3-part product ciphertext using base-T digit
  decomposition,
* SIMD slot rotation via Galois automorphisms plus key switching,
* invariant-noise-budget measurement mirroring SEAL's diagnostics.

The hot path is RNS-native: ciphertext multiplication lifts the operands
into an extended RNS basis with an exact vectorized base conversion,
tensors them with batched NTTs, and performs the ``round(t/q * .)``
rescale entirely on int64 residue matrices; key switching decomposes
digits vectorized and runs one batched NTT over the whole
``(digits, k, N)`` stack.  Both are bit-for-bit identical to the textbook
big-integer formulation, which is retained behind
``BFVContext(..., slow_reference=True)`` as the equivalence oracle (and as
the baseline the runtime benchmarks measure speedups against).
"""

from __future__ import annotations

import math

import numpy as np

from repro.he.encoder import BatchEncoder
from repro.he.errors import HEError, NoiseBudgetExhausted
from repro.he.keys import GaloisKeys, KSwitchKey, PublicKey, SecretKey
from repro.he.params import BFVParams
from repro.he.poly import RingContext, RingElement, exact_negacyclic_product
from repro.he.primes import find_ntt_primes
from repro.he.rns import DigitDecomposer, centered


class Plaintext:
    """A plaintext polynomial (coefficients mod t) with a cached ring lift."""

    __slots__ = ("coeffs", "_lift")

    def __init__(self, coeffs: np.ndarray):
        self.coeffs = np.asarray(coeffs, dtype=np.int64)
        self._lift: RingElement | None = None

    def freeze(self) -> "Plaintext":
        """Make the coefficient vector read-only (for shared caches)."""
        self.coeffs.flags.writeable = False
        return self

    def lift(self, ring: RingContext, t: int) -> RingElement:
        """Centered lift of the plaintext into R_q (noise-minimal)."""
        if self._lift is None:
            half = t // 2
            signed = np.where(self.coeffs > half, self.coeffs - t, self.coeffs)
            self._lift = ring.from_int_coeffs(signed)
        return self._lift


class Ciphertext:
    """A BFV ciphertext: 2 (or transiently 3) ring elements.

    Parts may carry leading batch axes (``(batch, k, N)`` residue stacks):
    every homomorphic operation broadcasts over them, so a whole batch of
    user ciphertexts moves through each instruction in one numpy pass.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: list[RingElement]):
        if len(parts) not in (2, 3):
            raise HEError("ciphertexts must have 2 or 3 parts")
        self.parts = parts

    @property
    def size(self) -> int:
        return len(self.parts)

    @property
    def batch_shape(self) -> tuple:
        """Leading batch axes of the residue stacks (empty for a single)."""
        return self.parts[0].shape[:-2]

    def copy(self) -> "Ciphertext":
        return Ciphertext([p.copy() for p in self.parts])


class BFVContext:
    """One key pair plus every homomorphic operation over it.

    ``slow_reference=True`` routes ciphertext multiplication and key
    switching through the retained big-integer textbook path; the default
    RNS-native path produces bit-identical ciphertexts (the equivalence
    tests pin this on every seed kernel).
    """

    def __init__(
        self,
        params: BFVParams,
        seed: int | None = None,
        slow_reference: bool = False,
    ):
        self.params = params
        self.slow_reference = slow_reference
        self.ring = RingContext(params.poly_degree, list(params.coeff_primes))
        self.encoder = BatchEncoder(params)
        self._rng = np.random.default_rng(seed)
        self.q = params.coeff_modulus
        self.t = params.plain_modulus
        self.delta = self.q // self.t
        self._digit_count = math.ceil(self.q.bit_length() / params.decomp_bits)
        self._digit_decomposer = DigitDecomposer(
            self.ring.basis, params.decomp_bits, self._digit_count
        )
        # key-switch MAC overflow budgets for int64 accumulation:
        # fully-lazy NTT outputs are < 2^31 + 2*pmax, reduced ones < p.
        pmax = max(params.coeff_primes)
        self._mac_needs_reduce = self._digit_count * pmax**2 >= 1 << 63
        self._mac_lazy_ok = (
            self._digit_count * ((1 << 31) + 2 * pmax) * pmax < 1 << 63
        )
        # base-T digits below every prime are already canonical residues,
        # so the key-switch digit stack can skip its reduction entirely
        self._digits_canonical = (1 << params.decomp_bits) <= min(
            params.coeff_primes
        )
        self._ext_ring = self._build_extension_ring()
        self._init_rescale_tables()
        self._keygen()
        self.galois_keys = GaloisKeys()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _build_extension_ring(self) -> RingContext:
        """RNS basis big enough for exact integer tensor products.

        BFV multiplication forms integer products of centered ciphertext
        polynomials; coefficients are bounded by ``N * q^2`` (Karatsuba
        operand sums reach ``q``), and the RNS rescale additionally needs
        headroom for ``t * tensor + q/2``, so the extension modulus exceeds
        ``t * N * q^2`` with margin.
        """
        n = self.params.poly_degree
        # |tensor| <= 1.5*N*q^2 (Karatsuba cross term), the rescale handles
        # A = t*T + q/2; two extra bits of margin on top of 2*|A|.
        needed = 12 * self.t * n * self.q * self.q
        count = needed.bit_length() // 25 + 1
        primes = find_ntt_primes(count, 26, 2 * n)
        while count > 1:
            product = 1
            for p in primes[: count - 1]:
                product *= p
            if product <= needed:
                break
            count -= 1
        primes = primes[:count]
        overlap = set(primes) & set(self.params.coeff_primes)
        if overlap:
            raise HEError(f"extension primes collide with coeff primes: {overlap}")
        return RingContext(n, primes)

    def _init_rescale_tables(self) -> None:
        """Residue tables for the RNS ``round(t/q * .)`` rescale."""
        ext = self._ext_ring
        q, t = self.q, self.t
        self._conv_q_to_ext = self.ring.basis.conversion_to(ext.basis)
        self._conv_ext_to_q = ext.basis.conversion_to(self.ring.basis)
        self._t_mod_ext = np.array(
            [t % p for p in ext.basis.primes], dtype=np.int64
        )[:, None]
        self._half_q_mod_ext = np.array(
            [(q // 2) % p for p in ext.basis.primes], dtype=np.int64
        )[:, None]
        self._q_inv_ext = np.array(
            [pow(q % p, -1, p) for p in ext.basis.primes], dtype=np.int64
        )[:, None]
        # HPS scale-and-round tables: t*(E/P_i)/q = omega_i + theta_i with
        # omega_i integer (kept mod each q-prime, 16-bit hi/lo split for
        # exact float64 BLAS dots) and theta_i in [0, 1) as float64.
        e_mod = ext.basis.modulus
        omegas = []
        thetas = []
        for w in ext.basis._m_over_p:  # E / P_i
            num = t * w
            omegas.append(num // q)
            thetas.append((num % q) / q)
        omega_mod = np.array(
            [[om % pj for om in omegas] for pj in self.params.coeff_primes],
            dtype=np.int64,
        )  # (k_q, k_ext)
        self._sr_w_hi_f = (omega_mod >> 16).astype(np.float64)
        self._sr_w_lo_f = (omega_mod & 0xFFFF).astype(np.float64)
        self._sr_theta = np.array(thetas, dtype=np.float64)
        big = t * e_mod
        self._sr_cap_omega_mod = np.array(
            [(big // q) % pj for pj in self.params.coeff_primes],
            dtype=np.int64,
        )[:, None]
        self._sr_cap_theta = float((big % q) / q)
        # decryption scale-and-round tables: t*(q/p_i)/q = omega + theta
        # with the integer parts kept mod t (t < 2^30, v < 2^31: products
        # stay float64-exact).  The alpha term t*q/q = t vanishes mod t.
        dec_omega = []
        dec_theta = []
        for w in self.ring.basis._m_over_p:  # q / p_i
            num = t * w
            dec_omega.append((num // q) % t)
            dec_theta.append((num % q) / q)
        omega_arr = np.array(dec_omega, dtype=np.int64)
        self._dec_omega_hi_f = (omega_arr >> 16).astype(np.float64)
        self._dec_omega_lo_f = (omega_arr & 0xFFFF).astype(np.float64)
        self._dec_theta = np.array(dec_theta, dtype=np.float64)
        self._t_mod_q = np.array(
            [t % p for p in self.params.coeff_primes], dtype=np.int64
        )[:, None]

    def _sample_ternary(self, lead: tuple = ()) -> RingElement:
        coeffs = self._rng.integers(-1, 2, lead + (self.params.poly_degree,))
        return self.ring.from_int_coeffs(coeffs)

    def _sample_error(self, lead: tuple = ()) -> RingElement:
        std = self.params.error_std
        raw = self._rng.normal(0.0, std, lead + (self.params.poly_degree,))
        clipped = np.clip(np.rint(raw), -6 * std, 6 * std).astype(np.int64)
        return self.ring.from_int_coeffs(clipped)

    def _sample_uniform(self, lead: tuple = ()) -> RingElement:
        rows = [
            self._rng.integers(
                0, p, lead + (self.params.poly_degree,), dtype=np.int64
            )
            for p in self.params.coeff_primes
        ]
        return RingElement(self.ring, np.stack(rows, axis=-2))

    def _keygen(self) -> None:
        s = self._sample_ternary()
        a = self._sample_uniform()
        e = self._sample_error()
        self.secret_key = SecretKey(s)
        self.public_key = PublicKey(p0=-(a * s + e), p1=a)
        self.relin_key = self._make_kswitch_key(s * s)

    def _make_kswitch_key(self, source_secret: RingElement) -> KSwitchKey:
        """Key switching ``source_secret -> s`` with base-T digits."""
        pairs = []
        factor = 1
        for _ in range(self._digit_count):
            a = self._sample_uniform()
            e = self._sample_error()
            k0 = -(a * self.secret_key.s + e) + source_secret.scalar_mul(factor)
            pairs.append((k0, a))
            factor <<= self.params.decomp_bits
        return KSwitchKey(pairs)

    def generate_galois_key(self, galois_elt: int) -> None:
        if galois_elt not in self.galois_keys:
            rotated_secret = self.secret_key.s.automorphism(galois_elt)
            self.galois_keys.add(galois_elt, self._make_kswitch_key(rotated_secret))

    # ------------------------------------------------------------------
    # Encode / encrypt / decrypt
    # ------------------------------------------------------------------

    def encode(self, values) -> Plaintext:
        return Plaintext(self.encoder.encode(values))

    def decode(self, plaintext: Plaintext, signed: bool = True) -> np.ndarray:
        return self.encoder.decode(plaintext.coeffs, signed=signed)

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        """Encrypt one plaintext — or a whole ``(batch, n)`` stack at once."""
        lead = plaintext.coeffs.shape[:-1]
        u = self._sample_ternary(lead)
        e1 = self._sample_error(lead)
        e2 = self._sample_error(lead)
        m_scaled = plaintext.lift(self.ring, self.t).scalar_mul(self.delta)
        if not self.slow_reference:
            # one batched transform primes every NTT cache the masking
            # sums need (the public-key products pull the adds into the
            # evaluation domain)
            self.ring.prime_evals([u, e1, e2, m_scaled])
        c0 = self.public_key.p0 * u + e1 + m_scaled
        c1 = self.public_key.p1 * u + e2
        return Ciphertext([c0, c1])

    def encrypt_vector(self, values) -> Ciphertext:
        return self.encrypt(self.encode(values))

    @staticmethod
    def _cols(residues: np.ndarray) -> np.ndarray:
        """``(..., k, n) -> (k, cols)`` view/copy for the RNS primitives."""
        if residues.ndim == 2:
            return residues
        return np.moveaxis(residues, -2, 0).reshape(residues.shape[-2], -1)

    def _compose(self, residues: np.ndarray) -> list[int]:
        """Exact coefficient reconstruction, seed path under the oracle."""
        cols = self._cols(residues)
        if self.slow_reference:
            return self.ring.basis.compose_schoolbook(cols)
        return self.ring.basis.compose(cols)

    def _noise_element(self, ct: Ciphertext) -> RingElement:
        """``c0 + c1*s (+ c2*s^2)`` as a ring element."""
        s = self.secret_key.s
        acc = ct.parts[0] + ct.parts[1] * s
        if ct.size == 3:
            acc = acc + ct.parts[2] * (s * s)
        return acc

    def _noise_poly(self, ct: Ciphertext) -> list[int]:
        """Coefficients of ``c0 + c1*s (+ c2*s^2)`` in ``[0, q)``.

        For batched ciphertexts the list is the concatenation of every
        batch element's coefficients, in batch order.
        """
        return self._compose(self._noise_element(ct).residues)

    def decrypt(self, ct: Ciphertext, check_budget: bool = True) -> Plaintext:
        plaintext, _ = self.decrypt_with_budgets(
            ct, check_budget=check_budget, want_budgets=check_budget
        )
        return plaintext

    def decrypt_with_budgets(
        self,
        ct: Ciphertext,
        check_budget: bool = True,
        want_budgets: bool = True,
    ) -> tuple[Plaintext, list[int] | None]:
        """Decrypt and measure noise budgets in one pass.

        Shares the ``c0 + c1*s`` evaluation between the budget check and
        the rounding step (the executor's epilogue needs both, and
        recomputing the noise element doubles the decryption cost).
        """
        q, t = self.q, self.t
        lead = ct.batch_shape + (self.params.poly_degree,)
        acc = self._noise_element(ct)
        budgets = None
        if want_budgets or check_budget:
            budgets = [
                self._budget_bits(q, u) for u in self._noise_magnitudes(ct, acc)
            ]
            if check_budget and min(budgets) <= 0:
                worst = min(range(len(budgets)), key=budgets.__getitem__)
                raise NoiseBudgetExhausted(
                    f"ciphertext noise budget exhausted: minimum budget "
                    f"{budgets[worst]} bits at batch element {worst} of "
                    f"{len(budgets)}; decryption would corrupt",
                    min_budget=budgets[worst],
                    batch_index=worst,
                    params_name=self.params.name,
                )
            if not want_budgets:
                budgets = None
        if self.slow_reference:
            w = self.ring.basis.compose_schoolbook(self._cols(acc.residues))
            coeffs = np.array(
                [(t * c + q // 2) // q % t for c in w], dtype=np.int64
            )
        else:
            coeffs = self._decrypt_round(self._cols(acc.residues))
        return Plaintext(coeffs.reshape(lead)), budgets

    def _decrypt_round(self, residues: np.ndarray) -> np.ndarray:
        """``round(t * c / q) mod t`` straight from q-basis residues.

        HPS scale-and-round with target modulus ``t``: the overflow term
        ``alpha * (t*q)/q = alpha * t`` vanishes mod ``t``, so only the
        per-prime integer parts (exact float64 dots mod ``t``) and a small
        float fractional sum remain; guard-band columns fall back to the
        big-int formula.  Bit-identical to ``(t*c + q//2) // q % t``.
        """
        q, t = self.q, self.t
        basis = self.ring.basis
        v = basis._garner_lift(residues)
        vf = v.astype(np.float64)
        s_hi = (self._dec_omega_hi_f @ vf).astype(np.int64)
        s_lo = (self._dec_omega_lo_f @ vf).astype(np.int64)
        integer = ((s_hi % t) << 16) + s_lo
        frac = self._dec_theta @ vf
        frac_floor = np.floor(frac)
        d = frac - frac_floor
        rounded = (frac_floor + (d > 0.5)).astype(np.int64)
        out = (integer + rounded) % t
        risky = np.abs(d - 0.5) < 1e-5
        if risky.any():
            cols = np.nonzero(risky)[0]
            exact = basis.compose(residues[:, cols])
            out[cols] = [(t * c + q // 2) // q % t for c in exact]
        return out

    def decrypt_vector(self, ct: Ciphertext, signed: bool = True) -> np.ndarray:
        return self.decode(self.decrypt(ct), signed=signed)

    def _noise_magnitudes(
        self, ct: Ciphertext, acc: RingElement | None = None
    ) -> list[int]:
        """Per-batch-element max invariant-noise magnitude.

        The magnitude is ``max |centered(t*c mod q, q)|`` over the
        element's coefficients; the RNS path finds the maximum through
        exact 16-bit limb reconstruction and a vectorized lexicographic
        scan, with no per-coefficient Python arithmetic.
        """
        q, t = self.q, self.t
        n = self.params.poly_degree
        if acc is None:
            acc = self._noise_element(ct)
        if self.slow_reference:
            w = self.ring.basis.compose_schoolbook(self._cols(acc.residues))
            out = []
            for start in range(0, len(w), n):
                max_u = 0
                for c in w[start : start + n]:
                    u = abs(centered(t * c % q, q))
                    if u > max_u:
                        max_u = u
                out.append(max_u)
            return out
        from repro.he.rns import _LIMB_BITS, _LIMB_MASK

        basis = self.ring.basis
        # x = t*c mod q, via residues (p_i | q keeps this exact)
        scaled = acc.residues * self._t_mod_q % self.ring._primes_col
        cols = self._cols(scaled)
        v = basis._garner_lift(cols)
        vf = v.astype(np.float64)
        plain = basis.overflow_counts(v, vf=vf)
        flip = (
            basis.overflow_counts(v, centered=True, vf=vf) != plain
        )  # x > q/2
        limbs, _ = basis._limbs(cols, vf=vf, alpha=plain)
        # q - x in limb space (borrow-propagated subtraction)
        diff = basis._modulus_limbs[:, None] - limbs
        comp = np.empty_like(diff)
        borrow = np.zeros(diff.shape[1], dtype=np.int64)
        for level in range(diff.shape[0]):
            cur = diff[level] + borrow
            comp[level] = cur & _LIMB_MASK
            borrow = cur >> _LIMB_BITS
        mags = np.where(flip[None, :], comp, limbs)
        out = []
        for start in range(0, mags.shape[1], n):
            chunk = mags[:, start : start + n]
            live = np.arange(chunk.shape[1])
            for level in range(chunk.shape[0] - 1, -1, -1):
                row = chunk[level, live]
                live = live[row == row.max()]
                if len(live) == 1:
                    break
            best = chunk[:, live[0]]
            max_u = 0
            for level in range(chunk.shape[0] - 1, -1, -1):
                max_u = (max_u << _LIMB_BITS) | int(best[level])
            out.append(max_u)
        return out

    @staticmethod
    def _budget_bits(q: int, max_u: int) -> int:
        if max_u == 0:
            return q.bit_length() - 1
        return max(0, (q // (2 * max_u)).bit_length() - 1)

    def noise_budget(self, ct: Ciphertext) -> int:
        """Bits of invariant-noise headroom (0 means decryption may fail).

        For batched ciphertexts this is the worst element's budget; use
        :meth:`noise_budgets` for the per-element view.
        """
        return min(
            self._budget_bits(self.q, u) for u in self._noise_magnitudes(ct)
        )

    def noise_budgets(self, ct: Ciphertext) -> list[int]:
        """Per-batch-element noise budgets (singletons give one entry)."""
        return [
            self._budget_bits(self.q, u) for u in self._noise_magnitudes(ct)
        ]

    # ------------------------------------------------------------------
    # Homomorphic operations
    # ------------------------------------------------------------------

    def add(
        self,
        ct1: Ciphertext,
        ct2: Ciphertext,
        out_domain: str | None = None,
    ) -> Ciphertext:
        self._check_sizes(ct1, ct2)
        return Ciphertext(
            [a.add(b, out_domain) for a, b in zip(ct1.parts, ct2.parts)]
        )

    def sub(
        self,
        ct1: Ciphertext,
        ct2: Ciphertext,
        out_domain: str | None = None,
    ) -> Ciphertext:
        self._check_sizes(ct1, ct2)
        return Ciphertext(
            [a.sub(b, out_domain) for a, b in zip(ct1.parts, ct2.parts)]
        )

    def negate(self, ct: Ciphertext) -> Ciphertext:
        return Ciphertext([-p for p in ct.parts])

    def add_plain(
        self, ct: Ciphertext, pt: Plaintext, out_domain: str | None = None
    ) -> Ciphertext:
        lift = self._plain_operand(pt, out_domain)
        m_scaled = lift.scalar_mul(self.delta)
        parts = [ct.parts[0].add(m_scaled, out_domain)]
        parts += [p.copy() for p in ct.parts[1:]]
        return Ciphertext(parts)

    def sub_plain(
        self, ct: Ciphertext, pt: Plaintext, out_domain: str | None = None
    ) -> Ciphertext:
        lift = self._plain_operand(pt, out_domain)
        m_scaled = lift.scalar_mul(self.delta)
        parts = [ct.parts[0].sub(m_scaled, out_domain)]
        parts += [p.copy() for p in ct.parts[1:]]
        return Ciphertext(parts)

    def _plain_operand(
        self, pt: Plaintext, out_domain: str | None
    ) -> RingElement:
        """The plaintext's ring lift, with its NTT cache primed if the
        plan wants the evaluation domain.

        The lazy path forward-transforms the *transient* scaled operand
        on every call; priming the cached lift instead pays the transform
        once per plaintext (``scalar_mul`` scales every cached form)."""
        lift = pt.lift(self.ring, self.t)
        if out_domain == "eval":
            lift.eval_rows()
        return lift

    def multiply_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        lift = pt.lift(self.ring, self.t)
        return Ciphertext([p * lift for p in ct.parts])

    def multiply(
        self,
        ct1: Ciphertext,
        ct2: Ciphertext,
        relinearize: bool = True,
        out_domain: str | None = None,
    ) -> Ciphertext:
        """BFV multiply: exact integer tensor, rescale by t/q, relinearize."""
        if ct1.size != 2 or ct2.size != 2:
            raise HEError("multiply expects relinearized (2-part) operands")
        if self.slow_reference:
            parts = self._tensor_reference(ct1, ct2)
        else:
            parts = self._tensor_rns(ct1, ct2)
        product = Ciphertext(parts)
        if relinearize:
            product = self.relinearize(product, out_domain=out_domain)
        return product

    def _tensor_rns(self, ct1: Ciphertext, ct2: Ciphertext) -> list[RingElement]:
        """Vectorized tensor-and-rescale in the extended RNS basis.

        The four operand parts are base-converted (exactly, centered) into
        the extension basis, tensored with one batched forward NTT and
        Karatsuba's three pointwise products, and rescaled without ever
        leaving int64 residue land.
        """
        ext = self._ext_ring
        n = self.params.poly_degree
        # one conversion call over all four parts (and any batch axes)
        stack = np.stack(
            [part.residues for ct in (ct1, ct2) for part in ct.parts]
        )  # (4, ..., k, n)
        lead = stack.shape[:-2]
        converted = self._conv_q_to_ext(self._cols(stack), centered=True)
        k_ext = len(ext.basis)
        operands = np.moveaxis(
            converted.reshape((k_ext,) + lead + (n,)), 0, -2
        )
        fa0, fa1, fb0, fb1 = ext.batch_ntt.forward(operands, assume_reduced=True)
        p_col = ext._primes_col
        fsa = RingElement._mod_add(fa0, fa1, p_col)
        fsb = RingElement._mod_add(fb0, fb1, p_col)
        products = np.stack(
            [fa0 * fb0 % p_col, fa1 * fb1 % p_col, fsa * fsb % p_col]
        )
        t00, t11, tss = ext.batch_ntt.inverse(products, assume_reduced=True)
        t01 = RingElement._mod_sub(
            RingElement._mod_sub(tss, t00, p_col), t11, p_col
        )
        # rescale all three tensor parts in one vectorized sweep
        tensors = np.stack([t00, t01, t11])  # (3, ..., k_ext, n)
        rescaled = self._rns_rescale(self._cols(tensors))
        k = len(self.ring.basis)
        parts = np.moveaxis(
            rescaled.reshape((k,) + tensors.shape[:-2] + (n,)), 0, -2
        )
        return [
            RingElement(self.ring, np.ascontiguousarray(parts[i]))
            for i in range(3)
        ]

    def _rns_rescale(self, tensor_res: np.ndarray) -> np.ndarray:
        """``round(t * T / q) mod q`` on extension-basis residues, exactly.

        HPS-style scale-and-round: with ``T = sum_i v_i*(E/P_i) - alpha*E``
        (``alpha`` exact, ``T`` centered), ``t*T/q`` splits into an integer
        part — accumulated mod each q-prime through exact float64 BLAS dot
        products against ``omega_i = floor(t*(E/P_i)/q)`` — plus a small
        real ``sum_i v_i*theta_i - alpha*Theta`` whose rounding is decided
        in float64.  ``q`` is odd so exact .5 ties are impossible; columns
        within the float guard band of a boundary are recomputed through
        the exact floor-division path.  Bit-identical to the big-integer
        ``(t*v + q//2) // q`` of the reference path, vectorized over
        however many columns the caller concatenates.
        """
        basis = self._ext_ring.basis
        v = basis._garner_lift(tensor_res)
        vf = v.astype(np.float64)
        alpha = basis.overflow_counts(v, centered=True, vf=vf)
        p_col = self.ring._primes_col
        s_hi = (self._sr_w_hi_f @ vf).astype(np.int64)
        s_lo = (self._sr_w_lo_f @ vf).astype(np.int64)
        integer = ((s_hi % p_col) << 16) + s_lo
        integer -= alpha[None, :] * self._sr_cap_omega_mod
        frac = self._sr_theta @ vf - alpha * self._sr_cap_theta
        frac_floor = np.floor(frac)
        d = frac - frac_floor
        rounded = (frac_floor + (d > 0.5)).astype(np.int64)
        out = (integer + rounded[None, :]) % p_col
        risky = np.abs(d - 0.5) < 1e-5
        if risky.any():
            cols = np.nonzero(risky)[0]
            out[:, cols] = self._rns_rescale_exact(tensor_res[:, cols])
        return out

    def _rns_rescale_exact(self, tensor_res: np.ndarray) -> np.ndarray:
        """Exact RNS floor-division rescale (guard-band fallback path).

        Writes the rounding as ``floor((t*T + q/2) / q)``: the remainder
        ``r = A mod q`` is recovered through an exact ext->q conversion
        (its q-basis residues *are* ``A mod p_i``), lifted back, and
        ``(A - r) * q^{-1}`` evaluated in the extension basis where ``q``
        is invertible.
        """
        ext = self._ext_ring
        p_col = ext._primes_col
        a = (tensor_res * self._t_mod_ext + self._half_q_mod_ext) % p_col
        r_q = self._conv_ext_to_q(a, centered=True)
        r_ext = self._conv_q_to_ext(r_q)
        quot = (a - r_ext) % p_col * self._q_inv_ext % p_col
        return self._conv_ext_to_q(quot, centered=True)

    def _tensor_reference(
        self, ct1: Ciphertext, ct2: Ciphertext
    ) -> list[RingElement]:
        """Textbook big-integer tensor-and-rescale (the equivalence oracle).

        This is the seed implementation kept byte-for-byte in behavior —
        per-coefficient Garner composition, Python-int Karatsuba sums, and
        big-int rescale — so the equivalence tests pin the RNS path to it
        and the runtime benchmarks measure speedups against it honestly.
        """
        basis = self.ring.basis
        a0 = basis.compose_centered_schoolbook(ct1.parts[0].residues)
        a1 = basis.compose_centered_schoolbook(ct1.parts[1].residues)
        b0 = basis.compose_centered_schoolbook(ct2.parts[0].residues)
        b1 = basis.compose_centered_schoolbook(ct2.parts[1].residues)
        # Karatsuba: three exact products instead of four.
        p00 = exact_negacyclic_product(a0, b0, self._ext_ring, schoolbook=True)
        p11 = exact_negacyclic_product(a1, b1, self._ext_ring, schoolbook=True)
        asum = [x + y for x, y in zip(a0, a1)]
        bsum = [x + y for x, y in zip(b0, b1)]
        pss = exact_negacyclic_product(
            asum, bsum, self._ext_ring, schoolbook=True
        )
        p01 = [s - x - y for s, x, y in zip(pss, p00, p11)]
        return [
            self._rescale_to_ring(p00),
            self._rescale_to_ring(p01),
            self._rescale_to_ring(p11),
        ]

    def _rescale_to_ring(self, coeffs: list[int]) -> RingElement:
        """``round(t * v / q) mod q`` applied coefficient-wise (big-int)."""
        q, t = self.q, self.t
        scaled = [(t * v + q // 2) // q for v in coeffs]
        return self.ring.from_int_coeffs(scaled)

    def relinearize(
        self, ct: Ciphertext, out_domain: str | None = None
    ) -> Ciphertext:
        """Fold the quadratic part of a 3-part ciphertext back to 2 parts."""
        if ct.size == 2:
            return ct.copy()
        d0, d1 = self._key_switch(ct.parts[2], self.relin_key)
        if self.slow_reference:
            return Ciphertext([ct.parts[0] + d0, ct.parts[1] + d1])
        if out_domain == "coeff":
            # the tensor parts already hold coefficients, so when every
            # consumer demands that domain it is cheaper to pull the two
            # key-switch accumulators *back* than to push the parts forward
            self.ring.prime_coeffs([d0, d1])
            return Ciphertext(
                [
                    ct.parts[0].add(d0, "coeff"),
                    ct.parts[1].add(d1, "coeff"),
                ]
            )
        # d0/d1 arrive in NTT form; prime both target parts' caches in
        # one batched transform so the adds stay in the NTT domain.
        self.ring.prime_evals([ct.parts[0], ct.parts[1]])
        return Ciphertext([ct.parts[0] + d0, ct.parts[1] + d1])

    def rotate_rows(
        self, ct: Ciphertext, steps: int, planned: bool = False
    ) -> Ciphertext:
        """Rotate both batching rows left by ``steps`` (negative = right)."""
        if ct.size != 2:
            raise HEError("rotate expects a relinearized (2-part) ciphertext")
        steps = steps % self.encoder.row_size
        if steps == 0:
            return ct.copy()
        g = self.encoder.galois_element_for_rotation(steps)
        return self._apply_galois(ct, g, planned=planned)

    def rotate_columns(self, ct: Ciphertext, planned: bool = False) -> Ciphertext:
        """Swap the two batching rows."""
        if ct.size != 2:
            raise HEError("rotate expects a relinearized (2-part) ciphertext")
        return self._apply_galois(
            ct, self.encoder.galois_element_row_swap, planned=planned
        )

    def _apply_galois(
        self, ct: Ciphertext, galois_elt: int, planned: bool = False
    ) -> Ciphertext:
        self.generate_galois_key(galois_elt)
        key = self.galois_keys.get(galois_elt)
        if planned and not self.slow_reference:
            # Planned routing: c0 permutes cached evaluation rows (the
            # hoisted form below), while c1 routes through the coefficient
            # domain — digit decomposition needs coefficients regardless,
            # and the inverse transform caches on the *input* wire, so R
            # rotations of one ciphertext pay it once instead of R times.
            c0g = ct.parts[0].automorphism(galois_elt, domains="eval")
            c1g = ct.parts[1].automorphism(galois_elt, domains="coeff")
            d0, d1 = self._key_switch(c1g, key)
            return Ciphertext([c0g + d0, d1])
        if not self.slow_reference:
            # Hoist: materialise c0's NTT form on the *input* ciphertext so
            # repeated rotations of the same ciphertext permute the cached
            # evaluation rows instead of re-transforming (c0g + d0 happens
            # in the evaluation domain either way).
            ct.parts[0].eval_rows()
        c0g = ct.parts[0].automorphism(galois_elt)
        c1g = ct.parts[1].automorphism(galois_elt)
        d0, d1 = self._key_switch(c1g, key)
        return Ciphertext([c0g + d0, d1])

    def _key_switch(
        self, poly: RingElement, key: KSwitchKey
    ) -> tuple[RingElement, RingElement]:
        if self.slow_reference:
            return self._key_switch_reference(poly, key)
        return self._key_switch_rns(poly, key)

    def _key_switch_rns(
        self, poly: RingElement, key: KSwitchKey
    ) -> tuple[RingElement, RingElement]:
        """Inner product of base-T digits with an NTT-domain switch key.

        Digit decomposition is vectorized (no big-int compose), the whole
        ``(digits, k, N)`` stack goes through one batched forward NTT, and
        the accumulators stay in the evaluation domain — the returned
        elements inverse-transform only if a consumer needs coefficients.
        """
        ring = self.ring
        res = poly.residues
        lead = res.shape[:-2]
        n = self.params.poly_degree
        digits = self._digit_decomposer.digits(self._cols(res))
        depth = digits.shape[0]
        shaped = digits.reshape((depth,) + lead + (1, n))
        if self._digits_canonical:
            # digits < 2^T <= every prime: the broadcast across the prime
            # axis is already canonical, so the transform's working copy
            # materialises it without a division pass
            stack = np.broadcast_to(
                shaped, (depth,) + lead + (len(ring.basis), n)
            )
            evals = ring.batch_ntt.forward(
                stack,
                reduce_output=not self._mac_lazy_ok,
                assume_reduced=True,
            )
        else:
            stack = shaped % ring._primes_col  # (digits, ..., k, n)
            evals = ring.batch_ntt.forward(
                stack, reduce_output=not self._mac_lazy_ok
            )
        p_col = ring._primes_col
        key0 = key._stack_0.reshape(
            (depth,) + (1,) * len(lead) + key._stack_0.shape[1:]
        )
        key1 = key._stack_1.reshape(
            (depth,) + (1,) * len(lead) + key._stack_1.shape[1:]
        )
        if self._mac_needs_reduce:
            acc0 = np.sum(evals * key0 % p_col, axis=0) % p_col
            acc1 = np.sum(evals * key1 % p_col, axis=0) % p_col
        else:
            # digit_count * p^2 < 2^63: accumulate unreduced, reduce once
            acc0 = (evals * key0).sum(axis=0) % p_col
            acc1 = (evals * key1).sum(axis=0) % p_col
        return (
            RingElement(ring, eval_rows=acc0),
            RingElement(ring, eval_rows=acc1),
        )

    def _key_switch_reference(
        self, poly: RingElement, key: KSwitchKey
    ) -> tuple[RingElement, RingElement]:
        """Big-int digit decomposition with per-digit transforms (oracle)."""
        ring = self.ring
        bits = self.params.decomp_bits
        mask = (1 << bits) - 1
        coeffs = ring.basis.compose_schoolbook(poly.residues)
        primes_col = ring._primes_col
        acc0 = np.zeros_like(poly.residues)
        acc1 = np.zeros_like(poly.residues)
        for j in range(len(key)):
            shift = bits * j
            digit = np.array(
                [(c >> shift) & mask for c in coeffs], dtype=np.int64
            )
            digit_res = digit[None, :] % primes_col
            digit_eval = np.stack(
                [ntt.forward(digit_res[i]) for i, ntt in enumerate(ring.ntts)]
            )
            acc0 = (acc0 + digit_eval * key._ntt_cache_0[j]) % primes_col
            acc1 = (acc1 + digit_eval * key._ntt_cache_1[j]) % primes_col
        out0 = np.stack(
            [ntt.inverse(acc0[i]) for i, ntt in enumerate(ring.ntts)]
        )
        out1 = np.stack(
            [ntt.inverse(acc1[i]) for i, ntt in enumerate(ring.ntts)]
        )
        return RingElement(ring, out0), RingElement(ring, out1)

    @staticmethod
    def _check_sizes(ct1: Ciphertext, ct2: Ciphertext) -> None:
        if ct1.size != ct2.size:
            raise HEError(
                f"ciphertext sizes differ ({ct1.size} vs {ct2.size}); "
                "relinearize first"
            )
