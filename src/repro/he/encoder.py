"""BFV batching: packing integer vectors into plaintext polynomial slots.

With a prime plaintext modulus ``t = 1 (mod 2N)`` the ring ``Z_t[x]/(x^N+1)``
splits into ``N`` one-dimensional factors (evaluations at the odd powers of
a primitive ``2N``-th root of unity).  Each factor is one SIMD "slot":
adding/multiplying plaintext polynomials adds/multiplies slots element-wise,
which is what gives BFV its vector programming model (paper section 2.2).

Slots are arranged exactly as in SEAL: a ``2 x (N/2)`` matrix where the
Galois automorphism ``x -> x^(3^k)`` rotates *both* rows left by ``k`` and
``x -> x^(2N-1)`` swaps the rows.  Slot ``i`` of row 0 is the evaluation at
``psi^(3^i mod 2N)`` and slot ``i`` of row 1 at ``psi^(-3^i mod 2N)``.
"""

from __future__ import annotations

import numpy as np

from repro.he.ntt import NTTContext
from repro.he.params import BFVParams


class BatchEncoder:
    """Encode/decode integer vectors to/from plaintext polynomials mod t."""

    def __init__(self, params: BFVParams):
        self.n = params.poly_degree
        self.t = params.plain_modulus
        self.row_size = self.n // 2
        self._ntt = NTTContext(self.n, self.t)
        exps = self._ntt.evaluation_exponents()
        pos_of_exp = {e: j for j, e in enumerate(exps)}
        two_n = 2 * self.n
        slot_to_pos = np.empty(self.n, dtype=np.int64)
        g = 1
        for i in range(self.row_size):
            slot_to_pos[i] = pos_of_exp[g]
            slot_to_pos[i + self.row_size] = pos_of_exp[two_n - g]
            g = g * 3 % two_n
        self._slot_to_pos = slot_to_pos

    def encode(self, values) -> np.ndarray:
        """Vector of signed ints -> plaintext polynomial coefficients mod t.

        Accepts up to ``n`` values (shorter vectors are zero-padded); each
        value must lie in the centered range ``(-t/2, t/2]``.  A 2-D
        ``(batch, len)`` input encodes a whole batch of vectors in one
        vectorized inverse transform.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim not in (1, 2) or values.shape[-1] > self.n:
            raise ValueError(f"expected at most {self.n} scalar values")
        t = self.t
        if np.any(values > t // 2) or np.any(values < -(t // 2)):
            raise ValueError(
                f"values must fit the centered plaintext range of t={t}"
            )
        evals = np.zeros(values.shape[:-1] + (self.n,), dtype=np.int64)
        evals[..., self._slot_to_pos[: values.shape[-1]]] = values % t
        return self._ntt.inverse(evals)

    def decode(self, coeffs: np.ndarray, signed: bool = True) -> np.ndarray:
        """Plaintext polynomial coefficients mod t -> vector(s) of n slots."""
        evals = self._ntt.forward(np.asarray(coeffs, dtype=np.int64))
        slots = evals[..., self._slot_to_pos]
        if signed:
            half = self.t // 2
            slots = np.where(slots > half, slots - self.t, slots)
        return slots

    def galois_element_for_rotation(self, steps: int) -> int:
        """Galois element realising a left row-rotation by ``steps``.

        ``steps`` may be negative (right rotation); it is reduced modulo the
        row size.  Rotation by 0 maps to the identity element 1.
        """
        steps = steps % self.row_size
        return pow(3, steps, 2 * self.n)

    @property
    def galois_element_row_swap(self) -> int:
        return 2 * self.n - 1
