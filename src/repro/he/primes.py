"""Prime-number utilities for NTT-friendly modulus generation.

BFV over ``Z_q[x]/(x^N + 1)`` needs primes ``p`` with ``p = 1 (mod 2N)`` so
that ``Z_p`` contains a primitive ``2N``-th root of unity and negacyclic
convolutions can be computed with an NTT.  SEAL ships a table of such
primes; we generate them deterministically instead.
"""

from __future__ import annotations

# Witness set sufficient for deterministic Miller-Rabin below 3.3 * 10^24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test for 64-bit-scale integers.

    Exact for every ``n < 3.3 * 10^24``, which covers all moduli used in
    this library (NTT primes are < 2^31 and plaintext moduli < 2^30).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def find_ntt_primes(count: int, bits: int, two_n: int) -> list[int]:
    """Return ``count`` distinct primes ``p = 1 (mod two_n)`` of ``bits`` bits.

    Primes are found by scanning downward from ``2**bits`` so the result is
    deterministic for a given ``(count, bits, two_n)``.  All returned primes
    fit NTT butterflies in int64 arithmetic when ``bits <= 31``.
    """
    if bits < 2:
        raise ValueError("bits must be >= 2")
    primes: list[int] = []
    # Largest candidate of the right residue class below 2**bits.
    candidate = (1 << bits) - ((1 << bits) - 1) % two_n
    while len(primes) < count:
        if candidate < (1 << (bits - 1)):
            raise ValueError(
                f"not enough {bits}-bit primes = 1 mod {two_n} "
                f"(found {len(primes)} of {count})"
            )
        if is_prime(candidate):
            primes.append(candidate)
        candidate -= two_n
    return primes


def primitive_root_of_unity(order: int, modulus: int) -> int:
    """Return a primitive ``order``-th root of unity modulo a prime.

    Requires ``order`` to divide ``modulus - 1``.  The root is found by
    raising candidate generators to ``(modulus - 1) / order`` and checking
    primitivity; deterministic scan keeps context setup reproducible.
    """
    if (modulus - 1) % order != 0:
        raise ValueError(f"{order} does not divide {modulus} - 1")
    exponent = (modulus - 1) // order
    for base in range(2, modulus):
        root = pow(base, exponent, modulus)
        if root == 1:
            continue
        # Primitive iff root^(order/p) != 1 for every prime p | order.
        # order is always a power of two here, so a single check suffices.
        if pow(root, order // 2, modulus) != 1:
            return root
    raise ValueError(f"no primitive {order}-th root of unity mod {modulus}")
