"""Scratch-buffer arenas and hot-path instrumentation for HE execution.

The executor's steady state churns through large ``(batch, k, N)`` int64
workspaces: every batched NTT makes a transposed working copy, every key
switch materialises a digit stack, every tensor product stacks operands.
A :class:`ScratchArena` keeps one reusable buffer per ``(tag, shape)``
key so replaying a tape allocates nothing new after the first pass.

Arena buffers back only *transient* workspaces.  :class:`RingElement`
caches its coefficient/evaluation forms persistently, so any array that
escapes into an element must be freshly allocated — handing out an arena
buffer as an op result would alias two live values (the classic reuse
bug the aliasing regression test pins).

A thread-local *scope* makes the active arena (and transform counters)
visible to the NTT layer without threading parameters through every ring
operation; each executor worker thread enters its own scope, so lockstep
shards never share buffers.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np


class ExecCounters:
    """Mutable transform counters for one execution scope.

    ``ntt_rows`` counts length-``n`` row transforms (one ``(k, n)``
    element transform adds ``k``; a ``(batch, k, n)`` stack adds
    ``batch * k``), which makes planner predictions directly comparable
    to measurements: a plan's per-element row count times the batch size
    must equal the measured delta.
    """

    __slots__ = ("ntt_rows",)

    def __init__(self):
        self.ntt_rows = 0

    def merge(self, other: "ExecCounters") -> None:
        self.ntt_rows += other.ntt_rows


class ScratchArena:
    """Reusable int64 workspace pool keyed by ``(tag, shape)``.

    ``take`` returns an *uninitialised* buffer (callers overwrite it
    fully); the same key always returns the same buffer, so steady-state
    tape replay performs zero large allocations.  The pool is bounded:
    past ``KEY_LIMIT`` distinct keys it is cleared wholesale, mirroring
    the executor's plaintext-cache policy.
    """

    KEY_LIMIT = 64

    __slots__ = ("_buffers", "hits", "misses")

    def __init__(self):
        self._buffers: dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def take(self, tag: str, shape: tuple) -> np.ndarray:
        key = (tag, shape)
        buf = self._buffers.get(key)
        if buf is None:
            if len(self._buffers) >= self.KEY_LIMIT:
                self._buffers.clear()
            buf = np.empty(shape, dtype=np.int64)
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    @property
    def bytes_held(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()


_scope = threading.local()


def current_arena() -> ScratchArena | None:
    """The arena of the innermost active scope on this thread, if any."""
    return getattr(_scope, "arena", None)


def current_counters() -> ExecCounters | None:
    """The counters of the innermost active scope on this thread, if any."""
    return getattr(_scope, "counters", None)


def count_ntt_rows(rows: int) -> None:
    """Record ``rows`` length-``n`` transforms against the active scope."""
    counters = getattr(_scope, "counters", None)
    if counters is not None:
        counters.ntt_rows += rows


@contextmanager
def execution_scope(
    arena: ScratchArena | None = None,
    counters: ExecCounters | None = None,
):
    """Make ``arena``/``counters`` visible to HE internals on this thread.

    Scopes nest: the innermost wins, and the previous scope is restored
    on exit (exception-safe), so instrumented regions can be as narrow
    as one tape replay.
    """
    prev_arena = getattr(_scope, "arena", None)
    prev_counters = getattr(_scope, "counters", None)
    _scope.arena = arena
    _scope.counters = counters
    try:
        yield
    finally:
        _scope.arena = prev_arena
        _scope.counters = prev_counters
