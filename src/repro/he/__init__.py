"""Homomorphic-encryption substrate: a from-scratch BFV implementation.

This package stands in for Microsoft SEAL (the backend the Porcupine paper
compiles to).  It implements the Brakerski/Fan-Vercauteren scheme over the
ring ``R_q = Z_q[x]/(x^N + 1)``:

* number-theoretic transforms over RNS primes for fast ring multiplication,
* CRT batching so a ciphertext behaves like a SIMD vector of slots,
* public-key encryption, relinearization, and slot rotation via Galois
  automorphisms with key switching,
* invariant-noise-budget measurement, mirroring SEAL's diagnostics.

The public entry point is :class:`~repro.he.context.BFVContext` together
with the parameter presets in :mod:`repro.he.params`.
"""

from repro.he.context import BFVContext, Ciphertext, Plaintext
from repro.he.errors import (
    DecryptionError,
    HEError,
    InvalidParameterError,
    NoiseBudgetExhausted,
)
from repro.he.params import BFVParams, large_params, small_params, toy_params

__all__ = [
    "BFVContext",
    "BFVParams",
    "Ciphertext",
    "DecryptionError",
    "HEError",
    "InvalidParameterError",
    "NoiseBudgetExhausted",
    "Plaintext",
    "large_params",
    "small_params",
    "toy_params",
]
