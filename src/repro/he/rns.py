"""Residue number system (CRT) arithmetic over a basis of NTT primes.

Ciphertext polynomials live modulo a large composite ``q = p_1 * ... * p_k``.
Storing each coefficient as its vector of residues lets every ring operation
run as vectorized int64 numpy arithmetic; big integers only appear at scheme
boundaries (encryption scaling, decryption rounding, digit decomposition),
exactly as in RNS variants of SEAL.
"""

from __future__ import annotations

import numpy as np


class RNSBasis:
    """A fixed list of pairwise-coprime word-sized primes with CRT tables."""

    def __init__(self, primes: list[int]):
        if len(set(primes)) != len(primes):
            raise ValueError("RNS primes must be distinct")
        self.primes = list(primes)
        self.modulus = 1
        for p in self.primes:
            self.modulus *= p
        # Garner-style reconstruction tables: m_i = M / p_i and its inverse.
        self._m_over_p = [self.modulus // p for p in self.primes]
        self._m_over_p_inv = [
            pow(m, -1, p) for m, p in zip(self._m_over_p, self.primes)
        ]
        self._primes_arr = np.array(self.primes, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.primes)

    def __repr__(self) -> str:
        bits = self.modulus.bit_length()
        return f"RNSBasis({len(self.primes)} primes, {bits}-bit modulus)"

    def decompose(self, coeffs: list[int] | np.ndarray) -> np.ndarray:
        """Map integer coefficients to a residue matrix of shape (k, N).

        Accepts arbitrarily large Python ints (negative values are reduced
        into ``[0, p)`` per prime, consistent with values mod ``M``).
        """
        columns = [
            np.array([c % p for c in coeffs], dtype=np.int64)
            for p in self.primes
        ]
        return np.stack(columns, axis=0)

    def compose(self, residues: np.ndarray) -> list[int]:
        """Reconstruct coefficients in ``[0, M)`` from a (k, N) residue matrix."""
        k, n = residues.shape
        if k != len(self.primes):
            raise ValueError("residue matrix does not match basis size")
        out = [0] * n
        modulus = self.modulus
        for i, p in enumerate(self.primes):
            # term_i = r_i * inv_i mod p_i, contribution term_i * (M / p_i)
            scale = self._m_over_p[i]
            inv = self._m_over_p_inv[i]
            row = residues[i]
            for j in range(n):
                out[j] += (int(row[j]) * inv % p) * scale
        return [c % modulus for c in out]

    def compose_centered(self, residues: np.ndarray) -> list[int]:
        """Reconstruct signed coefficients in ``(-M/2, M/2]``."""
        half = self.modulus // 2
        modulus = self.modulus
        return [
            c - modulus if c > half else c for c in self.compose(residues)
        ]


def centered(value: int, modulus: int) -> int:
    """Map ``value mod modulus`` to the centered range ``(-q/2, q/2]``."""
    v = value % modulus
    if v > modulus // 2:
        v -= modulus
    return v
