"""Residue number system (CRT) arithmetic over a basis of NTT primes.

Ciphertext polynomials live modulo a large composite ``q = p_1 * ... * p_k``.
Storing each coefficient as its vector of residues lets every ring operation
run as vectorized int64 numpy arithmetic; big integers only appear at scheme
boundaries (encryption scaling, decryption rounding), exactly as in RNS
variants of SEAL.

Beyond plain decompose/compose this module provides the three *exact*
vectorized primitives the RNS-native BFV hot path is built on:

* :meth:`RNSBasis.compose` / :meth:`RNSBasis.compose_centered` — CRT
  reconstruction through 16-bit limb accumulation, carry propagation, and a
  single ``int.from_bytes`` per coefficient (no per-prime Python loop);
* :meth:`RNSBasis.conversion_to` — exact base conversion into another RNS
  basis (the HPS/BEHZ ``FastBConv`` with the q-overflow count ``alpha``
  recovered exactly, not approximately);
* :class:`DigitDecomposer` — base-``2^w`` digit decomposition of composed
  coefficients straight from residues, vectorized over the whole polynomial.

All three share one trick for the overflow count: ``alpha =
floor(sum_i v_i / p_i)`` is evaluated in float64 with a provable error
bound far below the detection threshold, and the rare coefficients that
land near a rounding boundary are recomputed with exact big-int
arithmetic.  The result is bit-for-bit identical to schoolbook CRT while
the common path stays pure numpy.
"""

from __future__ import annotations

import numpy as np

_LIMB_BITS = 16
_LIMB_MASK = (1 << _LIMB_BITS) - 1

# Distance from a float64 overflow-count estimate to the nearest rounding
# boundary below which we recompute exactly.  The accumulated float error
# is bounded by ~k * 2^-50 (k <= 64 primes), orders of magnitude smaller.
_ALPHA_GUARD = 1e-9


def _to_limbs(value: int, count: int) -> np.ndarray:
    """Little-endian 16-bit limbs of a nonnegative integer."""
    limbs = np.zeros(count, dtype=np.int64)
    for i in range(count):
        limbs[i] = value & _LIMB_MASK
        value >>= _LIMB_BITS
    if value:
        raise ValueError("value does not fit the limb budget")
    return limbs


class RNSBasis:
    """A fixed list of pairwise-coprime word-sized primes with CRT tables."""

    def __init__(self, primes: list[int]):
        if len(set(primes)) != len(primes):
            raise ValueError("RNS primes must be distinct")
        self.primes = list(primes)
        self.modulus = 1
        for p in self.primes:
            self.modulus *= p
        # Garner-style reconstruction tables: m_i = M / p_i and its inverse.
        self._m_over_p = [self.modulus // p for p in self.primes]
        self._m_over_p_inv = [
            pow(m, -1, p) for m, p in zip(self._m_over_p, self.primes)
        ]
        self._primes_arr = np.array(self.primes, dtype=np.int64)
        self._primes_col = self._primes_arr[:, None]
        self._inv_primes_f = 1.0 / self._primes_arr.astype(np.float64)
        self._inv_col = np.array(self._m_over_p_inv, dtype=np.int64)[:, None]
        # 16-bit limb tables for exact vectorized reconstruction.  The
        # float64 copies feed BLAS matrix products that are provably exact:
        # every product is below 2^47 and every partial sum below 2^53, so
        # each intermediate is an exactly representable integer.
        self._limb_count = (self.modulus.bit_length() // _LIMB_BITS) + 2
        self._m_over_p_limbs = np.stack(
            [_to_limbs(m, self._limb_count) for m in self._m_over_p]
        )  # (k, L)
        self._m_limbs_f = self._m_over_p_limbs.T.astype(np.float64)  # (L, k)
        self._modulus_limbs = _to_limbs(self.modulus, self._limb_count)
        self._conversions: dict[int, _BaseConversion] = {}

    def __len__(self) -> int:
        return len(self.primes)

    def __repr__(self) -> str:
        bits = self.modulus.bit_length()
        return f"RNSBasis({len(self.primes)} primes, {bits}-bit modulus)"

    def decompose(self, coeffs: list[int] | np.ndarray) -> np.ndarray:
        """Map integer coefficients to a residue matrix of shape (..., k, N).

        Accepts arbitrarily large Python ints (negative values are reduced
        into ``[0, p)`` per prime, consistent with values mod ``M``).
        Word-sized inputs take a fully vectorized path, including batched
        ``(..., N)`` coefficient stacks.
        """
        if not isinstance(coeffs, np.ndarray) or coeffs.dtype == object:
            try:
                coeffs = np.asarray(coeffs, dtype=np.int64)
            except (OverflowError, TypeError):
                columns = [
                    np.array([c % p for c in coeffs], dtype=np.int64)
                    for p in self.primes
                ]
                return np.stack(columns, axis=0)
        return np.asarray(coeffs, dtype=np.int64)[..., None, :] % self._primes_col

    # ------------------------------------------------------------------
    # Exact vectorized reconstruction
    # ------------------------------------------------------------------

    def _garner_lift(self, residues: np.ndarray) -> np.ndarray:
        """``v_i = r_i * (M/p_i)^{-1} mod p_i`` — the CRT mixing weights."""
        return residues * self._inv_col % self._primes_col

    def overflow_counts(
        self,
        v: np.ndarray,
        centered: bool = False,
        vf: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact ``alpha`` with ``x = sum_i v_i*(M/p_i) - alpha*M``.

        ``alpha = floor(sum_i v_i/p_i)`` puts ``x`` in ``[0, M)``;
        ``centered=True`` adds one more ``M`` whenever ``x > M/2``, placing
        ``x`` in ``(-M/2, M/2]``.  The float64 estimate has error far below
        ``_ALPHA_GUARD``, so it is exact except for coefficients landing
        within the guard of a rounding boundary; those are settled by an
        exact (still vectorized) limb-space sign test.  Values tiny
        relative to ``M`` — e.g. an RNS floor-division quotient carried in
        a much wider basis — hit the boundary on *every* coefficient, so
        the correction must not fall back to per-coefficient Python.
        """
        if vf is None:
            vf = v.astype(np.float64)
        frac = self._inv_primes_f @ vf
        alpha = np.floor(frac).astype(np.int64)
        near_floor = np.abs(frac - np.rint(frac)) < _ALPHA_GUARD
        if near_floor.any():
            # x = S - B*M with B = rint(frac) is either in [0, M) (alpha=B)
            # or negative (alpha=B-1); the sign of S - B*M decides exactly.
            cols = np.nonzero(near_floor)[0]
            boundary = np.rint(frac[cols]).astype(np.int64)
            negative = self._limb_sign_negative(vf[:, cols], boundary, scale=1)
            alpha[cols] = boundary - negative
        if centered:
            # x/M relative to 1/2, measured against the *corrected* alpha
            # (frac - floor(frac) would mislead wherever the float estimate
            # rounded across an integer boundary).
            rel = frac - alpha
            half_up = rel > 0.5
            near_half = np.abs(rel - 0.5) < _ALPHA_GUARD
            if near_half.any():
                # x vs M/2 via the sign of 2*S - (2*alpha+1)*M (M is odd,
                # so x == M/2 never occurs and the sign is decisive).
                cols = np.nonzero(near_half)[0]
                odd = 2 * alpha[cols] + 1
                below = self._limb_sign_negative(vf[:, cols], odd, scale=2)
                half_up[cols] = ~below
            alpha += half_up
        return alpha

    def _limb_sign_negative(
        self, vf: np.ndarray, multiple: np.ndarray, scale: int
    ) -> np.ndarray:
        """Exact sign of ``scale * sum_i v_i*(M/p_i) - multiple * M``.

        Evaluated in 16-bit limb space with carry propagation; the final
        borrow is the sign bit.  Vectorized over however many columns need
        the exact test (the limb dot product runs as an exact float64
        BLAS multiply; ``scale <= 2`` keeps sums below 2^53).
        """
        acc = (self._m_limbs_f @ vf * scale).astype(np.int64)
        acc -= multiple[None, :] * self._modulus_limbs[:, None]
        carry = np.zeros(acc.shape[1], dtype=np.int64)
        for l in range(acc.shape[0]):
            carry = (acc[l] + carry) >> _LIMB_BITS
        return carry < 0

    def _limbs(
        self,
        residues: np.ndarray,
        vf: np.ndarray | None = None,
        alpha: np.ndarray | None = None,
    ):
        """Exact 16-bit limbs of each composed coefficient ``x in [0, M)``.

        Returns ``(limbs, alpha)`` where ``limbs`` has shape ``(L, N)``.
        Centered callers subtract ``M`` afterwards in Python space (see
        :meth:`compose_centered`).  Callers that already hold the float
        lift and/or overflow counts can pass them to avoid recomputation.
        """
        if vf is None:
            vf = self._garner_lift(residues).astype(np.float64)
        if alpha is None:
            alpha = self.overflow_counts(vf.astype(np.int64), vf=vf)
        acc = (self._m_limbs_f @ vf).astype(np.int64)
        acc -= alpha[None, :] * self._modulus_limbs[:, None]
        limbs = np.empty_like(acc)
        carry = np.zeros(acc.shape[1], dtype=np.int64)
        for l in range(acc.shape[0]):
            cur = acc[l] + carry
            limbs[l] = cur & _LIMB_MASK
            carry = cur >> _LIMB_BITS
        if carry.any():
            raise AssertionError("limb reconstruction overflowed its budget")
        return limbs, alpha

    def compose(self, residues: np.ndarray) -> list[int]:
        """Reconstruct coefficients in ``[0, M)`` from a (k, N) residue matrix."""
        k, _ = residues.shape
        if k != len(self.primes):
            raise ValueError("residue matrix does not match basis size")
        limbs, _ = self._limbs(residues)
        raw = np.ascontiguousarray(limbs.astype(np.uint16).T).tobytes()
        width = 2 * limbs.shape[0]
        return [
            int.from_bytes(raw[j * width : (j + 1) * width], "little")
            for j in range(residues.shape[1])
        ]

    def compose_centered(self, residues: np.ndarray) -> list[int]:
        """Reconstruct signed coefficients in ``(-M/2, M/2]``."""
        half = self.modulus // 2
        modulus = self.modulus
        return [
            c - modulus if c > half else c for c in self.compose(residues)
        ]

    def compose_schoolbook(self, residues: np.ndarray) -> list[int]:
        """The original per-coefficient Garner reconstruction.

        Retained verbatim as the ``slow_reference`` oracle's compose (and
        the baseline the runtime benchmarks measure against); the
        vectorized :meth:`compose` is pinned bit-for-bit against it by the
        equivalence tests.
        """
        k, n = residues.shape
        if k != len(self.primes):
            raise ValueError("residue matrix does not match basis size")
        out = [0] * n
        modulus = self.modulus
        for i, p in enumerate(self.primes):
            # term_i = r_i * inv_i mod p_i, contribution term_i * (M / p_i)
            scale = self._m_over_p[i]
            inv = self._m_over_p_inv[i]
            row = residues[i]
            for j in range(n):
                out[j] += (int(row[j]) * inv % p) * scale
        return [c % modulus for c in out]

    def compose_centered_schoolbook(self, residues: np.ndarray) -> list[int]:
        """Schoolbook variant of :meth:`compose_centered` (oracle path)."""
        half = self.modulus // 2
        modulus = self.modulus
        return [
            c - modulus if c > half else c
            for c in self.compose_schoolbook(residues)
        ]

    # ------------------------------------------------------------------
    # Exact base conversion
    # ------------------------------------------------------------------

    def conversion_to(self, target: "RNSBasis") -> "_BaseConversion":
        """A cached exact converter from this basis into ``target``."""
        conv = self._conversions.get(id(target))
        if conv is None:
            conv = _BaseConversion(self, target)
            self._conversions[id(target)] = conv
        return conv


class _BaseConversion:
    """Exact base conversion ``source -> target`` with precomputed tables.

    Converts a (k_src, N) residue matrix into the (k_tgt, N) residues of
    the *exact* integer the source residues represent — the canonical
    representative in ``[0, M)`` or, with ``centered=True``, in
    ``(-M/2, M/2]``.  This is fast base conversion with the overflow count
    computed exactly (see :meth:`RNSBasis.overflow_counts`), so unlike the
    approximate BEHZ ``FastBConv`` no spurious multiples of ``M`` leak into
    the target residues.
    """

    def __init__(self, source: RNSBasis, target: RNSBasis):
        self.source = source
        self.target = target
        # (k_src, k_tgt): (M/p_i) mod P_j   and   (k_tgt,): M mod P_j
        weights = np.array(
            [
                [m % pj for pj in target.primes]
                for m in source._m_over_p
            ],
            dtype=np.int64,
        )
        # hi/lo 16-bit split so the k_src-term dot products run as exact
        # float64 BLAS products: v < 2^31, w_hi < 2^15, w_lo < 2^16 ->
        # every product < 2^47 and every partial sum < 2^53.
        self._w_hi_f = (weights >> _LIMB_BITS).T.astype(np.float64)
        self._w_lo_f = (weights & _LIMB_MASK).T.astype(np.float64)
        self._modulus_mod = np.array(
            [source.modulus % pj for pj in target.primes], dtype=np.int64
        )
        self._target_col = target._primes_col

    def __call__(
        self, residues: np.ndarray, centered: bool = False
    ) -> np.ndarray:
        v = self.source._garner_lift(residues)
        vf = v.astype(np.float64)
        alpha = self.source.overflow_counts(v, centered=centered, vf=vf)
        p_col = self._target_col
        s_hi = (self._w_hi_f @ vf).astype(np.int64)
        s_lo = (self._w_lo_f @ vf).astype(np.int64)
        acc = ((s_hi % p_col) << _LIMB_BITS) + s_lo
        acc -= alpha[None, :] * self._modulus_mod[:, None]
        return acc % p_col


class DigitDecomposer:
    """Base-``2^w`` digits of composed coefficients, straight from residues.

    Key switching needs the digits of each coefficient of ``c in [0, q)``.
    The schoolbook path composes every coefficient to a Python big int and
    shifts; this class reconstructs the 16-bit limbs of every coefficient
    vectorized (exact, via the shared overflow-count machinery) and gathers
    each ``w``-bit digit from at most three adjacent limbs with shifts and
    masks — no Python-level per-coefficient work at all.
    """

    def __init__(self, basis: RNSBasis, digit_bits: int, digit_count: int):
        if not 1 <= digit_bits <= 32:
            raise ValueError("digit width must be between 1 and 32 bits")
        self.basis = basis
        self.digit_bits = digit_bits
        self.digit_count = digit_count
        # per digit: (first limb index, bit offset into it)
        self._anchors = [
            ((d * digit_bits) // _LIMB_BITS, (d * digit_bits) % _LIMB_BITS)
            for d in range(digit_count)
        ]

    def digits(self, residues: np.ndarray) -> np.ndarray:
        """``(digit_count, N)`` int64 matrix of base-``2^w`` digits."""
        limbs, _ = self.basis._limbs(residues)
        count = limbs.shape[0]
        w = self.digit_bits
        mask = (1 << w) - 1
        out = np.empty((self.digit_count, residues.shape[1]), dtype=np.int64)
        for d, (j0, offset) in enumerate(self._anchors):
            if j0 >= count:
                out[d] = 0
                continue
            value = limbs[j0] >> offset
            have = _LIMB_BITS - offset
            j = j0 + 1
            while have < w and j < count:
                value = value | (limbs[j] << have)
                have += _LIMB_BITS
                j += 1
            out[d] = value & mask
        return out


def centered(value: int, modulus: int) -> int:
    """Map ``value mod modulus`` to the centered range ``(-q/2, q/2]``."""
    v = value % modulus
    if v > modulus // 2:
        v -= modulus
    return v
