"""Exception hierarchy for the BFV substrate."""


class HEError(Exception):
    """Base class for all homomorphic-encryption errors."""


class InvalidParameterError(HEError):
    """Raised when BFV parameters are malformed or insecure without opt-in."""


class NoiseBudgetExhausted(HEError):
    """Raised when an operation would (or did) exhaust the noise budget.

    BFV ciphertexts carry noise that grows with every operation; once the
    invariant noise exceeds 1/2 the plaintext can no longer be recovered
    (paper section 2.2, "Noise").
    """


class DecryptionError(HEError):
    """Raised when decryption produces an inconsistent result."""


class KeyError_(HEError):
    """Raised when a required evaluation key (relin/Galois) is missing."""
