"""Exception hierarchy for the BFV substrate."""


class HEError(Exception):
    """Base class for all homomorphic-encryption errors."""


class InvalidParameterError(HEError):
    """Raised when BFV parameters are malformed or insecure without opt-in."""


class NoiseBudgetExhausted(HEError):
    """Raised when an operation would (or did) exhaust the noise budget.

    BFV ciphertexts carry noise that grows with every operation; once the
    invariant noise exceeds 1/2 the plaintext can no longer be recovered
    (paper section 2.2, "Noise").

    Structured fields let guards and escalation machinery report exactly
    where the budget died; all default to ``None`` so the exception stays
    constructible from a plain message.

    Attributes:
        min_budget: the worst (minimum) observed or predicted budget, bits.
        batch_index: batch element whose budget bottomed out, if known.
        op_index: tape step at which a runtime guard tripped (``None`` for
            output-decrypt checks and compile-time admission rejections).
        params_name: name of the parameter preset that was in effect.
    """

    def __init__(
        self,
        message: str,
        *,
        min_budget: float | None = None,
        batch_index: int | None = None,
        op_index: int | None = None,
        params_name: str | None = None,
    ):
        super().__init__(message)
        self.min_budget = min_budget
        self.batch_index = batch_index
        self.op_index = op_index
        self.params_name = params_name


class DecryptionError(HEError):
    """Raised when decryption produces an inconsistent result."""


class KeyError_(HEError):
    """Raised when a required evaluation key (relin/Galois) is missing."""
