"""Key material for BFV: secret, public, relinearization, and Galois keys.

Key-switching keys (relinearization and Galois) are stored with their
polynomials pre-transformed into the per-prime NTT evaluation domain, as
SEAL does, so the hot key-switch inner product needs only forward
transforms of the digit polynomials plus pointwise multiply-accumulate.
The evaluation rows are kept both as one stacked ``(digits, k, N)`` array
(consumed whole by the vectorized RNS key switch) and as per-digit views
(consumed by the retained big-int reference path).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.he.poly import RingElement


@dataclass
class SecretKey:
    s: RingElement


@dataclass
class PublicKey:
    p0: RingElement  # -(a*s + e)
    p1: RingElement  # a


class KSwitchKey:
    """A key-switching key: for each digit j, a pair encrypting T^j * s'.

    Switching a polynomial ``c`` valid under ``s'`` to the canonical secret
    ``s`` computes ``sum_j digit_j(c) * key_j`` where ``digit_j`` is the
    base-``T`` decomposition.  Key polynomials are cached in the NTT domain.
    """

    def __init__(self, pairs: list[tuple[RingElement, RingElement]]):
        self.pairs = pairs
        # (digits, k, N) evaluation stacks; eval_rows() reuses any NTT form
        # the keygen products already carry, so nothing transforms twice.
        self._stack_0 = np.stack([k0.eval_rows() for k0, _ in pairs])
        self._stack_1 = np.stack([k1.eval_rows() for _, k1 in pairs])
        self._ntt_cache_0 = list(self._stack_0)
        self._ntt_cache_1 = list(self._stack_1)

    def __len__(self) -> int:
        return len(self.pairs)


class GaloisKeys:
    """Lazy map from Galois element to its key-switching key."""

    def __init__(self):
        self._keys: dict[int, KSwitchKey] = {}

    def add(self, galois_elt: int, key: KSwitchKey) -> None:
        self._keys[galois_elt] = key

    def get(self, galois_elt: int) -> KSwitchKey | None:
        return self._keys.get(galois_elt)

    def __contains__(self, galois_elt: int) -> bool:
        return galois_elt in self._keys

    def elements(self) -> list[int]:
        return sorted(self._keys)
