"""BFV parameter sets.

Follows the HomomorphicEncryption.org security standard (Albrecht et al.
2018, the paper's reference [1]): for a ternary secret at 128-bit classical
security the total coefficient-modulus size ``log2(q)`` is bounded per ring
dimension ``N``.  The paper's evaluation fixes 128-bit security for both
baseline and synthesized kernels (section 7.1); we do the same and select
the smallest ring that supports each kernel's multiplicative depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.he.errors import InvalidParameterError
from repro.he.primes import find_ntt_primes, is_prime

# Max log2(q) for 128-bit classical security, ternary secret
# (HomomorphicEncryption.org standard, Table 1).
SECURITY_128_MAX_LOGQ = {
    1024: 27,
    2048: 54,
    4096: 109,
    8192: 218,
    16384: 438,
    32768: 881,
}


@dataclass(frozen=True)
class BFVParams:
    """Complete description of one BFV instantiation.

    Attributes:
        poly_degree: ring dimension ``N`` (power of two); a ciphertext
            batches ``N`` integer slots arranged as a 2 x (N/2) matrix.
        plain_modulus: plaintext modulus ``t`` (prime, ``t = 1 mod 2N`` so
            batching is available).
        coeff_primes: RNS primes whose product is the ciphertext modulus
            ``q``.
        error_std: standard deviation of the discrete-Gaussian error
            sampler (SEAL default 3.2).
        decomp_bits: digit width for relinearization / Galois key switching.
        allow_insecure: opt-in flag for test-only parameter sets that
            exceed the 128-bit security bound.
    """

    poly_degree: int
    plain_modulus: int
    coeff_primes: tuple[int, ...]
    error_std: float = 3.2
    decomp_bits: int = 32
    allow_insecure: bool = False
    name: str = field(default="custom")

    def __post_init__(self):
        n = self.poly_degree
        if n & (n - 1) != 0 or n < 8:
            raise InvalidParameterError("poly_degree must be a power of two >= 8")
        t = self.plain_modulus
        if not is_prime(t):
            raise InvalidParameterError("plain_modulus must be prime")
        if (t - 1) % (2 * n) != 0:
            raise InvalidParameterError(
                "plain_modulus must be 1 mod 2N to enable batching"
            )
        for p in self.coeff_primes:
            if (p - 1) % (2 * n) != 0:
                raise InvalidParameterError(f"coeff prime {p} is not 1 mod 2N")
            if p == t:
                raise InvalidParameterError("plain modulus must differ from q primes")
        if not self.allow_insecure:
            max_logq = SECURITY_128_MAX_LOGQ.get(n)
            if max_logq is None or self.logq > max_logq:
                raise InvalidParameterError(
                    f"log2(q)={self.logq} exceeds the 128-bit security bound "
                    f"for N={n}; pass allow_insecure=True for test-only use"
                )

    @property
    def coeff_modulus(self) -> int:
        q = 1
        for p in self.coeff_primes:
            q *= p
        return q

    @property
    def logq(self) -> int:
        return self.coeff_modulus.bit_length()

    @property
    def slot_count(self) -> int:
        """Total SIMD slots (two rows of ``N/2`` each, as in SEAL)."""
        return self.poly_degree

    @property
    def row_size(self) -> int:
        return self.poly_degree // 2

    def __repr__(self) -> str:
        return (
            f"BFVParams(name={self.name!r}, N={self.poly_degree}, "
            f"t={self.plain_modulus}, logq={self.logq})"
        )


def toy_params() -> BFVParams:
    """Tiny, *insecure* parameters for fast unit tests (N=1024).

    The modulus is far larger than the 128-bit bound allows at this ring
    size; never use outside tests.
    """
    return BFVParams(
        poly_degree=1024,
        plain_modulus=12289,  # 12 * 1024 + 1
        coeff_primes=tuple(find_ntt_primes(2, 30, 2048)),
        decomp_bits=20,
        allow_insecure=True,
        name="toy-insecure",
    )


def small_params() -> BFVParams:
    """128-bit secure N=4096 set for multiplicative depth <= 1 kernels."""
    return BFVParams(
        poly_degree=4096,
        plain_modulus=65537,
        coeff_primes=tuple(find_ntt_primes(4, 27, 8192)),
        decomp_bits=24,
        name="n4096-depth1",
    )


def large_params() -> BFVParams:
    """128-bit secure N=8192 set for multiplicative depth <= 3 kernels.

    The plaintext modulus 786433 = 3 * 2^18 + 1 widens the value range to
    roughly +/-393k so the Harris response ``16*det - trace^2`` cannot wrap.
    """
    return BFVParams(
        poly_degree=8192,
        plain_modulus=786433,
        coeff_primes=tuple(find_ntt_primes(8, 27, 16384)),
        decomp_bits=32,
        name="n8192-depth3",
    )


def params_for_depth(depth: int) -> BFVParams:
    """Pick the smallest 128-bit-secure preset supporting a given depth."""
    if depth <= 1:
        return small_params()
    if depth <= 3:
        return large_params()
    raise InvalidParameterError(
        f"no preset supports multiplicative depth {depth}; "
        "construct BFVParams explicitly"
    )


# Ordered escalation ladder, smallest ring first.  Noise-safety machinery
# (predictive admission and graceful degradation) walks this ladder to find
# the next-larger preset when a program's noise budget does not fit.
PRESET_LADDER: tuple[str, ...] = ("toy-insecure", "n4096-depth1", "n8192-depth3")

_PRESET_FACTORIES = {
    "toy-insecure": toy_params,
    "toy": toy_params,
    "n4096-depth1": small_params,
    "small": small_params,
    "n8192-depth3": large_params,
    "large": large_params,
}


def preset_params(name: str) -> BFVParams:
    """Resolve a preset by ladder name or short alias (toy/small/large)."""
    try:
        return _PRESET_FACTORIES[name]()
    except KeyError:
        raise InvalidParameterError(
            f"unknown parameter preset {name!r}; "
            f"known: {', '.join(sorted(_PRESET_FACTORIES))}"
        ) from None


def next_larger_params(params: BFVParams) -> BFVParams | None:
    """The next preset up the ladder, or ``None`` at the top.

    Custom parameter sets (names outside the ladder) escalate to the first
    ladder preset with a strictly larger ring, so hand-rolled params still
    get a recovery path.
    """
    if params.name in PRESET_LADDER:
        index = PRESET_LADDER.index(params.name) + 1
        if index >= len(PRESET_LADDER):
            return None
        return preset_params(PRESET_LADDER[index])
    for name in PRESET_LADDER:
        candidate = preset_params(name)
        if candidate.poly_degree > params.poly_degree:
            return candidate
    return None
