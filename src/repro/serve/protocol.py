"""Wire protocol: newline-delimited JSON requests and responses.

One JSON object per line, UTF-8, at most :data:`MAX_LINE` bytes.  Every
request carries an ``op`` plus op-specific fields; every response echoes
the request's ``id`` (``null`` if the request was unparseable) and an
``ok`` flag.  The protocol is deliberately plain — any language with a
TCP socket and a JSON encoder is a client; no schema registry, no
framing beyond the newline.

Requests
--------

``{"op": "run", "id": "r1", "kernel": "gx", "tenant": "alice",
"inputs": {"img": [[...]]}, "seed": 0}``
    Compile (cached) and execute one kernel.  ``inputs`` maps logical
    input names to nested integer lists matching the spec's shapes;
    omit it to draw random in-range inputs from ``seed`` server-side.
    Concurrent ``run`` requests for the same program coalesce into one
    lockstep batch.

``{"op": "compile", "kernel": "gx"}``
    Warm the compile cache without executing.

``{"op": "stats", "reset": false}``
    Scheduler/tenant/kernel counters (optionally reset after reading).

``{"op": "ping"}`` / ``{"op": "shutdown"}``
    Liveness probe / graceful stop (drain queues, then exit).

Responses
---------

``run`` replies carry the decrypted logical ``output`` (nested list) and
its ``shape``, ``matches_reference``, ``noise_budget`` (HE only),
``batched`` (how many requests shared the tape pass), and ``latency_s``
(arrival to completion, queueing included).
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.spec.reference import Spec

#: Hard cap on one protocol line; ``asyncio.start_server(limit=...)`` and
#: the blocking client both enforce it.  Model vectors are tiny (tens of
#: slots), so 1 MiB leaves orders of magnitude of headroom.
MAX_LINE = 1 << 20


class ProtocolError(ValueError):
    """A request that cannot be decoded into a well-formed operation."""


def encode_message(payload: dict) -> bytes:
    """One wire line: compact JSON + newline."""
    line = json.dumps(payload, separators=(",", ":")).encode()
    if len(line) + 1 > MAX_LINE:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the {MAX_LINE}-byte limit"
        )
    return line + b"\n"


def decode_message(line: bytes) -> dict:
    """Parse one wire line into a payload dict."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object")
    return payload


def error_response(
    request_id: Any,
    message: str,
    code: str = "PROTOCOL",
    retryable: bool = False,
) -> dict:
    """A typed wire error: ``code`` from :mod:`repro.serve.errors`'
    taxonomy plus a ``retryable`` hint for client retry policies."""
    return {
        "id": request_id,
        "ok": False,
        "error": message,
        "code": code,
        "retryable": retryable,
    }


def decode_inputs(
    spec: Spec, payload: dict | None
) -> dict[str, np.ndarray]:
    """Validate and convert a request's ``inputs`` against the spec.

    Checked here, before the request is enqueued, so a malformed request
    fails alone instead of poisoning the whole coalesced batch it would
    have joined.
    """
    if payload is None:
        raise ProtocolError("missing 'inputs'")
    if not isinstance(payload, dict):
        raise ProtocolError("'inputs' must be an object of name -> array")
    expected = {p.name: p.shape for p in spec.layout.inputs}
    missing = sorted(set(expected) - set(payload))
    extra = sorted(set(payload) - set(expected))
    if missing or extra:
        problems = []
        if missing:
            problems.append(f"missing input(s) {missing}")
        if extra:
            problems.append(f"unexpected input(s) {extra}")
        raise ProtocolError(
            f"inputs for {spec.name!r} malformed: {'; '.join(problems)}"
        )
    env: dict[str, np.ndarray] = {}
    for name, shape in expected.items():
        try:
            array = np.asarray(payload[name], dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            raise ProtocolError(
                f"input {name!r} is not an integer array"
            ) from None
        if array.shape != tuple(shape):
            raise ProtocolError(
                f"input {name!r} expects shape {tuple(shape)}, "
                f"got {array.shape}"
            )
        env[name] = array
    return env


def random_inputs(spec: Spec, seed: int) -> dict[str, np.ndarray]:
    """Server-side random in-range inputs (the load generator's friend)."""
    rng = np.random.default_rng(seed)
    return {
        p.name: rng.integers(
            0, spec.backend_bound + 1, p.shape, dtype=np.int64
        )
        for p in spec.layout.inputs
    }


def plaintext_digest(spec: Spec, env: dict[str, np.ndarray]) -> str:
    """Content digest of the server-side (plaintext) operands.

    ``run_many`` shares plaintext operands across a lockstep batch, so
    requests may only coalesce when theirs agree — the digest goes into
    the scheduler's group key.  Kernels without plaintext inputs all map
    to the empty digest and coalesce freely.
    """
    names = spec.layout.pt_names
    if not names:
        return ""
    import hashlib

    digest = hashlib.sha256()
    for name in names:
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(env[name], dtype=np.int64).tobytes())
    return digest.hexdigest()
