"""The compile tier: synthesis off the event loop, cache shared on disk.

Compilation (CEGIS synthesis) is CPU-bound and can take seconds to
minutes — far too long to run on the serving event loop.  The pool
pushes it out:

* ``workers > 0`` — a ``ProcessPoolExecutor`` whose workers each open
  their own :class:`~repro.api.Porcupine` session *on the same on-disk
  cache directory*.  The content-addressed cache's atomic writes make N
  concurrent workers safe; a worker's result lands on disk and the
  serving session reloads it from there (a guaranteed cache hit), so
  program objects never cross the process boundary.
* ``workers == 0`` — compile inline on a thread of the default
  executor (tests, and deployments that always run pre-warmed).

Either way, concurrent requests for the same kernel are deduplicated:
one in-flight compile per kernel, everyone else awaits it.  Boot-time
``precompile`` pushes the configured hot kernels through the same path
so the first real request never pays synthesis.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Iterable

from repro.api import CompiledKernel, Porcupine
from repro.serve.metrics import MetricsRegistry


def _compile_in_worker(
    cache_dir: str,
    kernel: str,
    seed: int | None,
    synthesis_defaults: dict,
) -> tuple[str, bool]:
    """Run one compile in a worker process against the shared disk cache.

    Returns ``(cache_key, cache_hit)``; the compiled entry itself stays
    on disk, where the parent (and every sibling worker) can load it.
    """
    session = Porcupine(
        cache_dir=cache_dir,
        seed=seed,
        synthesis_defaults=synthesis_defaults,
    )
    compiled = session.compile(kernel)
    return compiled.cache_key, compiled.cache_hit


class CompilePool:
    """Deduplicated async compilation over a process pool (or inline)."""

    def __init__(
        self,
        session: Porcupine,
        workers: int = 0,
        metrics: MetricsRegistry | None = None,
    ):
        if workers > 0 and session.cache.path is None:
            raise ValueError(
                "compile workers need an on-disk cache to share; "
                "construct the session with cache_dir=..."
            )
        self.session = session
        self.workers = workers
        self.metrics = metrics
        self._pool = (
            ProcessPoolExecutor(max_workers=workers) if workers > 0 else None
        )
        self._inflight: dict[str, asyncio.Task] = {}

    async def compile(
        self, kernel: str, record: bool = True
    ) -> CompiledKernel:
        """Compile ``kernel`` (deduplicated, cached, off the event loop).

        ``record=False`` keeps the compile out of the hit/miss counters —
        boot-time warming is not request traffic.
        """
        task = self._inflight.get(kernel)
        if task is None:
            task = asyncio.get_running_loop().create_task(
                self._compile(kernel, record)
            )
            self._inflight[kernel] = task
            task.add_done_callback(
                lambda _done, name=kernel: self._inflight.pop(name, None)
            )
        return await asyncio.shield(task)

    async def _compile(self, kernel: str, record: bool) -> CompiledKernel:
        loop = asyncio.get_running_loop()
        if self._pool is not None:
            _key, hit = await loop.run_in_executor(
                self._pool,
                _compile_in_worker,
                str(self.session.cache.path),
                kernel,
                self.session.seed,
                self.session.synthesis_defaults,
            )
        else:
            hit = None  # resolved from the inline compile below
        # load into the serving session; after a worker compile this is a
        # disk hit (the worker's atomic write is already visible)
        compiled = await loop.run_in_executor(
            None, partial(self.session.compile, kernel)
        )
        if hit is None:
            hit = compiled.cache_hit
        if record and self.metrics is not None:
            self.metrics.compile_result(kernel, bool(hit))
        return compiled

    async def precompile(
        self, kernels: Iterable[str]
    ) -> dict[str, CompiledKernel]:
        """Warm every named kernel concurrently (boot-time hot set)."""
        names = list(kernels)
        results = await asyncio.gather(
            *(self.compile(name, record=False) for name in names)
        )
        return dict(zip(names, results))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
