"""The compile tier: synthesis off the event loop, cache shared on disk.

Compilation (CEGIS synthesis) is CPU-bound and can take seconds to
minutes — far too long to run on the serving event loop.  The pool
pushes it out:

* ``workers > 0`` — a ``ProcessPoolExecutor`` whose workers each open
  their own :class:`~repro.api.Porcupine` session *on the same on-disk
  cache directory*.  The content-addressed cache's atomic writes make N
  concurrent workers safe; a worker's result lands on disk and the
  serving session reloads it from there (a guaranteed cache hit), so
  program objects never cross the process boundary.
* ``workers == 0`` — compile inline on a thread of the default
  executor (tests, and deployments that always run pre-warmed).

Either way, concurrent requests for the same kernel are deduplicated:
one in-flight compile per kernel, everyone else awaits it.  Boot-time
``precompile`` pushes the configured hot kernels through the same path
so the first real request never pays synthesis.

Crash recovery
--------------

A killed worker (OOM reaper, operator SIGKILL, a segfault in a native
extension) breaks the whole ``ProcessPoolExecutor`` — every in-flight
and future submission raises ``BrokenProcessPool``.  The pool tier
turns that into graceful degradation instead of a wedged server:

1. the affected compile fails with a typed retryable
   :class:`~repro.serve.errors.WorkerCrashed` (the client's retry
   policy re-issues it; the crash is *reported*, never hidden),
2. the pool is respawned (counted in ``pool_restarts``), up to
   ``max_restarts`` times, and
3. past the cap the process pool is abandoned for good and compiles run
   **in-process** on a worker thread — slower and on the serving
   process's core budget, but correct (``degraded_compiles`` counts
   them, so operators can see the tier is limping).

Deadlines short-circuit waiting (the synthesis itself keeps running and
lands in the shared cache for the retry), and a
:class:`~repro.serve.faults.FaultInjector` can arm per-kernel faults at
the ``compile:<kernel>`` site — shipped into the worker process, so an
armed ``("kill",)`` takes down a *real* worker and exercises the real
``BrokenProcessPool`` path.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import Iterable

from repro.api import CompiledKernel, Porcupine
from repro.serve.errors import Deadline, DeadlineExceeded, WorkerCrashed
from repro.serve.faults import FaultInjector, apply_fault
from repro.serve.metrics import MetricsRegistry


def _compile_in_worker(
    cache_dir: str,
    kernel: str,
    seed: int | None,
    synthesis_defaults: dict,
    fault: tuple | None = None,
) -> tuple[str, bool]:
    """Run one compile in a worker process against the shared disk cache.

    Returns ``(cache_key, cache_hit)``; the compiled entry itself stays
    on disk, where the parent (and every sibling worker) can load it.
    ``fault`` is an injected chaos action applied *inside the worker*
    (a ``("kill",)`` fault SIGKILLs this very process mid-compile).
    """
    apply_fault(fault)
    session = Porcupine(
        cache_dir=cache_dir,
        seed=seed,
        synthesis_defaults=synthesis_defaults,
    )
    compiled = session.compile(kernel)
    return compiled.cache_key, compiled.cache_hit


def _retrieve_task(task: "asyncio.Task") -> None:
    """Mark an abandoned compile task's eventual exception retrieved."""
    if not task.cancelled():
        task.exception()


class CompilePool:
    """Deduplicated async compilation over a process pool (or inline)."""

    def __init__(
        self,
        session: Porcupine,
        workers: int = 0,
        metrics: MetricsRegistry | None = None,
        max_restarts: int = 3,
        faults: FaultInjector | None = None,
    ):
        if workers > 0 and session.cache.path is None:
            raise ValueError(
                "compile workers need an on-disk cache to share; "
                "construct the session with cache_dir=..."
            )
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.session = session
        self.workers = workers
        self.metrics = metrics
        self.max_restarts = max_restarts
        self.faults = faults
        self.restarts = 0  # pool respawns performed so far
        self.degraded = False  # pool abandoned; compiling in-process
        self._pool = (
            ProcessPoolExecutor(max_workers=workers) if workers > 0 else None
        )
        self._inflight: dict[str, asyncio.Task] = {}

    async def compile(
        self,
        kernel: str,
        record: bool = True,
        deadline: Deadline | None = None,
    ) -> CompiledKernel:
        """Compile ``kernel`` (deduplicated, cached, off the event loop).

        ``record=False`` keeps the compile out of the hit/miss counters —
        boot-time warming is not request traffic.  A ``deadline`` bounds
        only the *wait*: an abandoned synthesis keeps running and lands
        in the shared cache, so the caller's retry is a cache hit.
        """
        task = self._inflight.get(kernel)
        if task is None:
            task = asyncio.get_running_loop().create_task(
                self._compile(kernel, record)
            )
            self._inflight[kernel] = task
            task.add_done_callback(
                lambda _done, name=kernel: self._inflight.pop(name, None)
            )
        shielded = asyncio.shield(task)
        if deadline is None:
            return await shielded
        try:
            return await asyncio.wait_for(shielded, deadline.remaining())
        except asyncio.TimeoutError:
            task.add_done_callback(_retrieve_task)
            raise DeadlineExceeded(
                f"deadline exceeded while compiling {kernel!r} "
                "(synthesis continues; a retry will hit the cache)"
            ) from None

    async def _compile(self, kernel: str, record: bool) -> CompiledKernel:
        loop = asyncio.get_running_loop()
        fault = (
            self.faults.take(f"compile:{kernel}")
            if self.faults is not None
            else None
        )
        hit = None
        pool = self._pool
        if pool is not None:
            try:
                _key, hit = await loop.run_in_executor(
                    pool,
                    _compile_in_worker,
                    str(self.session.cache.path),
                    kernel,
                    self.session.seed,
                    self.session.synthesis_defaults,
                    fault,
                )
            except BrokenProcessPool:
                self._on_worker_crash(pool)
                if self.degraded:
                    detail = (
                        f"restart budget ({self.max_restarts}) exhausted; "
                        "degraded to in-process compiles"
                    )
                else:
                    detail = (
                        f"pool respawned ({self.restarts}/"
                        f"{self.max_restarts} restarts used)"
                    )
                raise WorkerCrashed(
                    f"compile worker for {kernel!r} died; {detail}"
                ) from None
            fault = None  # consumed inside the worker
        elif self.degraded and record and self.metrics is not None:
            self.metrics.degraded_compile(kernel)
        if fault is not None:
            # no worker process to host the fault: apply it on the
            # compile thread (sleep/raise faults for the inline path)
            await loop.run_in_executor(None, apply_fault, fault)
        # load into the serving session; after a worker compile this is a
        # disk hit (the worker's atomic write is already visible)
        compiled = await loop.run_in_executor(
            None, partial(self.session.compile, kernel)
        )
        if hit is None:
            hit = compiled.cache_hit
        if record and self.metrics is not None:
            self.metrics.compile_result(kernel, bool(hit))
        return compiled

    def _on_worker_crash(self, pool: ProcessPoolExecutor) -> None:
        """Respawn the broken pool, or degrade past the restart budget.

        A single worker kill breaks every in-flight submission, so N
        concurrent compiles all land here for the *same* crash; only the
        first (for whom ``pool`` is still current) acts.
        """
        if pool is not self._pool:
            return
        self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)
        if self.restarts < self.max_restarts:
            self.restarts += 1
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            if self.metrics is not None:
                self.metrics.pool_restart()
        else:
            self.degraded = True

    async def precompile(
        self, kernels: Iterable[str]
    ) -> dict[str, CompiledKernel]:
        """Warm every named kernel concurrently (boot-time hot set)."""
        names = list(kernels)
        results = await asyncio.gather(
            *(self.compile(name, record=False) for name in names)
        )
        return dict(zip(names, results))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
