"""Porcupine Serve: a long-lived, multi-tenant HE compile-and-run service.

The rest of the repository compiles and runs kernels one CLI invocation
or one session call at a time.  This package ties the existing pieces —
:class:`~repro.api.Porcupine` sessions, the content-addressed on-disk
compile cache, and :meth:`~repro.runtime.executor.HEExecutor.run_many`
lockstep batching — into a serving process shaped like production HE
infrastructure (EVA/HEIR's "compile once, serve many" boundary):

* an **asyncio front-end** (:class:`PorcupineServer`) speaking
  newline-delimited JSON over TCP (:mod:`repro.serve.protocol`),
* a **batch scheduler** (:class:`BatchScheduler`) that coalesces
  concurrent requests for the same compiled program into a single
  ``run_many`` lockstep batch — bounded by ``max_batch`` and a
  ``linger`` window — with fair-share round-robin ordering across
  tenants,
* a **process-pool compile tier** (:class:`CompilePool`) whose workers
  share one on-disk compile cache (atomic writes make that safe) and
  precompile hot registry kernels at boot, and
* **per-tenant/per-kernel bookkeeping** (:class:`MetricsRegistry`):
  queue depth, batch occupancy, coalesce ratio, compile hit/miss, and
  p50/p99 latency, all in the shared
  :class:`~repro.runtime.profiler.SchedulerStats` shape.

Results served through the batcher are bit-identical to a direct
``session.run`` of the same request: lockstep batching broadcasts the
very same instruction tape over a stacked batch axis, and the property
tests in ``tests/serve`` pin byte equality against serial runs.

Start a server from the CLI (``porcupine serve``) or in-process::

    from repro.serve import PorcupineServer, ServeClient

    server = PorcupineServer(backend="interpreter", precompile=("gx",))
    host, port = await server.start()          # inside asyncio
    ...
    client = ServeClient(host, port)           # blocking, any thread
    reply = client.run("gx", tenant="alice")
"""

from repro.serve.batcher import BatchScheduler, WorkItem
from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.compilepool import CompilePool
from repro.serve.errors import (
    ConnectionLost,
    Deadline,
    DeadlineExceeded,
    ExecutorCrashed,
    Overloaded,
    RetryPolicy,
    ServeError,
    Unavailable,
    WorkerCrashed,
    error_from_response,
)
from repro.serve.faults import FaultInjector
from repro.serve.metrics import MetricsRegistry
from repro.serve.protocol import (
    MAX_LINE,
    decode_message,
    encode_message,
    error_response,
)
from repro.serve.server import PorcupineServer, ServeConfig

__all__ = [
    "AsyncServeClient",
    "BatchScheduler",
    "CompilePool",
    "ConnectionLost",
    "Deadline",
    "DeadlineExceeded",
    "ExecutorCrashed",
    "FaultInjector",
    "MAX_LINE",
    "MetricsRegistry",
    "Overloaded",
    "PorcupineServer",
    "RetryPolicy",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "Unavailable",
    "WorkItem",
    "WorkerCrashed",
    "decode_message",
    "encode_message",
    "error_from_response",
    "error_response",
]
