"""The asyncio front-end: accept requests, coalesce, execute, respond.

One :class:`PorcupineServer` owns a compiler session, a
:class:`~repro.serve.batcher.BatchScheduler`, a
:class:`~repro.serve.compilepool.CompilePool`, and a
:class:`~repro.serve.metrics.MetricsRegistry`.  The event loop only ever
parses JSON and moves queue entries; all heavy work happens elsewhere —
synthesis in the compile pool's worker processes, encrypted execution on
a dedicated executor thread (one thread models the one-accelerator
deployment; batching, not thread fan-out, is the throughput mechanism).

The execution path is exactly the library path: a coalesced batch runs
through :meth:`Porcupine.execute_batch` → ``HEExecutor.run_many``, so a
response served through the batcher is bit-identical to a direct
``session.run`` of the same request — the lockstep tape broadcasts the
same instructions over a stacked batch axis and BFV decryption is exact.

Servers are usable without TCP for tests and embedding: ``await
server.startup()`` then ``await server.handle_request({...})`` drives
the full scheduling path in-process.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Hashable

import numpy as np

from repro.api import CompiledKernel, Porcupine
from repro.api.backends import backend_names
from repro.he.errors import NoiseBudgetExhausted
from repro.serve.batcher import BatchScheduler, WorkItem
from repro.serve.compilepool import CompilePool
from repro.serve.errors import (
    Deadline,
    ExecutorCrashed,
    NoiseBudgetError,
    ServeError,
)
from repro.serve.faults import FaultInjector, apply_fault
from repro.serve.metrics import MetricsRegistry
from repro.serve.protocol import (
    MAX_LINE,
    ProtocolError,
    decode_inputs,
    decode_message,
    encode_message,
    error_response,
    plaintext_digest,
    random_inputs,
)


@dataclass
class ServeConfig:
    """Everything ``porcupine serve`` can turn."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: let the OS pick (the bound port is reported)
    backend: str = "interpreter"  # default execution backend
    params: str | None = None  # HE params preset override (toy/small/large)
    seed: int = 0  # execution-backend seed (keys); NOT per-request
    max_batch: int = 8  # coalesced requests per lockstep tape pass
    linger_ms: float = 2.0  # max wait for co-batchable requests
    domain_plan: bool = False  # HE executor's tape-level NTT-domain planner
    exec_workers: int = 1  # lockstep batch shards per tape pass (HE only)
    compile_workers: int = 0  # 0: inline; N: process pool on shared cache
    cache_dir: str | None = None  # on-disk compile cache (workers share it)
    precompile: tuple[str, ...] = ()  # hot kernels to compile at boot
    allow_shutdown: bool = True  # honor the remote "shutdown" op
    latency_window: int = 4096  # latency samples kept per metrics scope
    default_timeout_ms: float | None = None  # deadline for requests that
    # carry no timeout_ms of their own (None: unbounded, legacy behavior)
    max_backlog: int | None = 1024  # scheduler admission bound; beyond
    # this many pending requests new work is rejected typed OVERLOADED
    pool_max_restarts: int = 3  # compile-pool respawns before degrading
    # to in-process compiles
    noise_guard: str | int | None = "output"  # HE runtime noise guards:
    # "off", "output" (free: output budgets are measured anyway), "mul"
    # (after every ciphertext multiply), or an every-N-ops int
    noise_margin_bits: float | None = None  # predictive admission: reject
    # (or escalate) kernels whose estimated output budget is below this
    noise_escalation: bool = True  # recover noise-budget exhaustion by
    # recompiling on the next-larger parameter preset
    max_escalations: int | None = None  # ladder steps tried per failure
    shadow_verify: float = 0.0  # fraction of HE batches cross-checked
    # against the interpreter backend (deterministic sampling; 0: off,
    # 1.0: every batch) — a mismatch withholds the result as a typed
    # retryable NOISE_BUDGET error instead of returning wrong plaintext

    def resolve_precompile(self, session: Porcupine) -> list[str]:
        if list(self.precompile) == ["all"]:
            return session.kernels()
        return list(self.precompile)


class SupervisedExecutor:
    """The execution thread, supervised: one serial accelerator lane.

    Jobs run one at a time on a dedicated thread (the one-accelerator
    deployment model).  A job that raises is treated as having poisoned
    the thread's state — partially-mutated executor caches, a wedged
    native call — so the supervisor retires the thread, starts a fresh
    one (``executor_restarts`` counts it), and surfaces the failure as a
    typed retryable :class:`~repro.serve.errors.ExecutorCrashed`.  Jobs
    queued behind the failure run on the fresh thread; nothing waits on
    a dead lane.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        name: str = "porcupine-serve-exec",
    ):
        self.metrics = metrics
        self.name = name
        self.restarts = 0
        self._lock = threading.Lock()
        self._exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=name
        )

    async def run(self, fn: Callable, *args):
        """Run ``fn(*args)`` on the supervised thread."""
        with self._lock:
            exec_ = self._exec
        try:
            return await asyncio.get_running_loop().run_in_executor(
                exec_, fn, *args
            )
        except asyncio.CancelledError:
            raise
        except ServeError:
            raise  # already typed; the thread is not implicated
        except Exception as error:  # noqa: BLE001 - typed + restarted
            self._restart(exec_)
            raise ExecutorCrashed(
                f"execution thread poisoned by "
                f"{type(error).__name__}: {error}; thread restarted"
            ) from error

    def _restart(self, exec_: ThreadPoolExecutor) -> None:
        # concurrent failures race here; only the first (for whom the
        # executor is still current) performs the restart
        with self._lock:
            if exec_ is not self._exec:
                return
            self._exec = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=self.name
            )
            self.restarts += 1
        exec_.shutdown(wait=False)
        if self.metrics is not None:
            self.metrics.executor_restart()

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            exec_ = self._exec
        exec_.shutdown(wait=wait)


class PorcupineServer:
    """Async multi-tenant compile-and-run service over one session."""

    def __init__(
        self,
        session: Porcupine | None = None,
        config: ServeConfig | None = None,
        faults: FaultInjector | None = None,
        **overrides,
    ):
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            raise ValueError("pass either config or keyword overrides")
        self.config = config
        if session is None:
            session = Porcupine(cache_dir=config.cache_dir)
        self.session = session
        self.faults = faults
        self.metrics = MetricsRegistry(latency_window=config.latency_window)
        self.scheduler = BatchScheduler(
            self._run_batch,
            max_batch=config.max_batch,
            linger_s=config.linger_ms / 1e3,
            max_backlog=config.max_backlog,
            metrics=self.metrics,
        )
        self.compile_pool = CompilePool(
            session,
            workers=config.compile_workers,
            metrics=self.metrics,
            max_restarts=config.pool_max_restarts,
            faults=faults,
        )
        self._exec = SupervisedExecutor(metrics=self.metrics)
        self._hot: dict[str, CompiledKernel] = {}
        self._shadow_acc = 0.0  # deterministic shadow-verify sampler
        self._started = False
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self._connections: set[asyncio.Task] = set()
        self.host = config.host
        self.port: int | None = None
        self.started_at = time.perf_counter()

    # -- lifecycle ---------------------------------------------------------

    async def startup(self) -> None:
        """Boot without TCP: pools up, hot kernels precompiled and pinned."""
        if self._started:
            return
        self._started = True
        self._stop_event = asyncio.Event()
        hot = self.config.resolve_precompile(self.session)
        if hot:
            await asyncio.gather(
                *(self._ensure_compiled(name, record=False) for name in hot)
            )

    async def start(self) -> tuple[str, int]:
        """Boot and listen; returns the bound ``(host, port)``."""
        await self.startup()
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE,
        )
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Listen until a ``shutdown`` op (or :meth:`request_stop`)."""
        if self._server is None:
            await self.start()
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.stop()

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to wind down (signal handlers etc.)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain batches, close pools."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.drain()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *list(self._connections), return_exceptions=True
            )
        self.compile_pool.shutdown()
        self._exec.shutdown(wait=True)
        self._started = False

    # -- request handling --------------------------------------------------

    async def handle_request(self, payload: dict) -> dict:
        """Serve one decoded request payload; never raises."""
        request_id = payload.get("id")
        op = payload.get("op", "run")
        handler = {
            "run": self._op_run,
            "compile": self._op_compile,
            "stats": self._op_stats,
            "ping": self._op_ping,
            "shutdown": self._op_shutdown,
        }.get(op)
        if handler is None:
            return error_response(request_id, f"unknown op {op!r}")
        try:
            return await handler(payload)
        except ProtocolError as error:
            return error_response(request_id, str(error))
        except ServeError as error:
            return error.response(request_id)
        except Exception as error:  # noqa: BLE001 - the wire eats it all
            return error_response(
                request_id,
                f"{type(error).__name__}: {error}",
                code="INTERNAL",
            )

    async def _op_run(self, payload: dict) -> dict:
        request_id = payload.get("id")
        tenant = str(payload.get("tenant", "default"))
        kernel = payload.get("kernel")
        if not isinstance(kernel, str):
            raise ProtocolError("run needs a 'kernel' name")
        if kernel not in self.session.registry:
            raise ProtocolError(
                f"unknown kernel {kernel!r}; "
                f"available: {', '.join(self.session.kernels())}"
            )
        backend = payload.get("backend") or self.config.backend
        if backend not in backend_names():
            raise ProtocolError(
                f"unknown backend {backend!r}; "
                f"available: {', '.join(backend_names())}"
            )
        spec = self.session.spec(kernel)
        if payload.get("inputs") is None:
            env = random_inputs(spec, int(payload.get("seed", 0)))
        else:
            env = decode_inputs(spec, payload.get("inputs"))
        try:
            deadline = Deadline.from_timeout_ms(
                payload.get("timeout_ms"), self.config.default_timeout_ms
            )
        except (TypeError, ValueError):
            raise ProtocolError(
                "'timeout_ms' must be a positive number"
            ) from None
        self.metrics.request(kernel, tenant)
        if int(payload.get("attempt", 1) or 1) > 1:
            self.metrics.retry(kernel, tenant)
        arrived = time.perf_counter()
        try:
            await self._ensure_compiled(kernel, deadline=deadline)
            # requests coalesce only when lockstep-compatible: same
            # program, same backend, and identical server-side plaintext
            # operands (run_many shares those across the batch)
            key = (kernel, backend, plaintext_digest(spec, env))
            item = WorkItem(
                key=key, kernel=kernel, tenant=tenant, payload=env,
                deadline=deadline,
            )
            result = await self.scheduler.submit(item)
        except ServeError as error:
            self.metrics.failure(kernel, tenant, error.code)
            raise
        except Exception:
            self.metrics.error(kernel, tenant)
            raise
        latency = time.perf_counter() - arrived
        self.metrics.response(kernel, tenant, latency)
        output = result.logical_output
        return {
            "id": request_id,
            "ok": True,
            "kernel": kernel,
            "tenant": tenant,
            "backend": result.backend,
            "output": output.tolist(),
            "shape": list(output.shape),
            "matches_reference": bool(result.matches_reference),
            "noise_budget": result.noise_budget,
            "batched": item.batch_size,
            "latency_s": round(latency, 6),
            "execute_s": round(result.wall_time, 6),
        }

    async def _op_compile(self, payload: dict) -> dict:
        kernel = payload.get("kernel")
        if not isinstance(kernel, str) or kernel not in self.session.registry:
            raise ProtocolError(f"unknown kernel {kernel!r}")
        compiled = await self._ensure_compiled(kernel)
        return {
            "id": payload.get("id"),
            "ok": True,
            "kernel": kernel,
            "instructions": compiled.program.instruction_count(),
            "rotations": compiled.program.rotation_count(),
            "cache_key": compiled.cache_key,
        }

    async def _op_stats(self, payload: dict) -> dict:
        snapshot = self.metrics.snapshot(
            reset=bool(payload.get("reset", False))
        )
        snapshot.update(
            {
                "id": payload.get("id"),
                "ok": True,
                "uptime_s": round(time.perf_counter() - self.started_at, 3),
                "hot_kernels": sorted(self._hot),
                "config": {
                    "backend": self.config.backend,
                    "max_batch": self.config.max_batch,
                    "linger_ms": self.config.linger_ms,
                    "compile_workers": self.config.compile_workers,
                    "default_timeout_ms": self.config.default_timeout_ms,
                    "max_backlog": self.config.max_backlog,
                    "pool_max_restarts": self.config.pool_max_restarts,
                    "domain_plan": self.config.domain_plan,
                    "exec_workers": self.config.exec_workers,
                    "noise_guard": self.config.noise_guard,
                    "noise_margin_bits": self.config.noise_margin_bits,
                    "shadow_verify": self.config.shadow_verify,
                },
                "executor": self.session.executor_stats().summary(),
                "synthesis": self._synthesis_stats(),
                "health": {
                    "pool_restarts": self.compile_pool.restarts,
                    "pool_degraded": self.compile_pool.degraded,
                    "executor_restarts": self._exec.restarts,
                },
            }
        )
        return snapshot

    async def _op_ping(self, payload: dict) -> dict:
        return {
            "id": payload.get("id"),
            "ok": True,
            "pong": True,
            "kernels": self.session.kernels(),
        }

    async def _op_shutdown(self, payload: dict) -> dict:
        if not self.config.allow_shutdown:
            raise ProtocolError("shutdown over the wire is disabled")
        return {"id": payload.get("id"), "ok": True, "stopping": True}

    # -- compilation and execution ----------------------------------------

    def _synthesis_stats(self) -> dict:
        """Lemma-store and seed-bound counters summed over hot kernels."""
        keys = (
            "lemma_hits",
            "lemma_misses",
            "lemma_skips",
            "seed_bounds",
            "seed_retries",
        )
        totals = dict.fromkeys(keys, 0)
        for compiled in self._hot.values():
            for metrics in (compiled.pass_metrics or {}).values():
                if isinstance(metrics, dict):
                    for key in keys:
                        totals[key] += int(metrics.get(key, 0) or 0)
        return totals

    async def _ensure_compiled(
        self,
        kernel: str,
        record: bool = True,
        deadline: Deadline | None = None,
    ) -> CompiledKernel:
        """The request-path compile: hot map, then the compile tier."""
        compiled = self._hot.get(kernel)
        if compiled is not None:
            if record:
                self.metrics.compile_result(kernel, True)
            return compiled
        compiled = await self.compile_pool.compile(
            kernel, record=record, deadline=deadline
        )
        if kernel not in self._hot:
            self._hot[kernel] = compiled
            # pin the hot program's tape on the default backend so its
            # keys/constants survive executor-side cache eviction across
            # scheduler ticks (HE only; pinning is optional per backend)
            engine = self._engine(self.config.backend)
            pin = getattr(engine, "pin", None)
            if pin is not None:
                spec = self.session.spec(kernel)
                await self._exec.run(pin, compiled.program, spec)
        return self._hot[kernel]

    def _engine(self, backend: str):
        """The session's backend instance for serving (seed + params)."""
        if backend == "he":
            config = self.config
            kwargs = Porcupine.he_backend_kwargs(
                config.seed,
                domain_plan=config.domain_plan,
                exec_workers=config.exec_workers,
                guard=config.noise_guard,
                noise_margin_bits=config.noise_margin_bits,
                escalate=config.noise_escalation,
                max_escalations=config.max_escalations,
            )
            if config.params is not None:
                kwargs["params"] = config.params
            return self.session.backend("he", **kwargs)
        return self.session.backend(backend)

    async def _run_batch(self, key: Hashable, envs: list) -> list:
        """Scheduler callback: one lockstep pass on the executor thread."""
        kernel, backend, _digest = key
        compiled = self._hot[kernel]
        spec = self.session.spec(kernel)
        engine = self._engine(backend)
        fault = corruption = None
        if self.faults is not None:
            fault = self.faults.take(f"execute:{kernel}")
            corruption = self.faults.take(f"runtime:{kernel}")
        if corruption is not None:
            arm = getattr(engine, "arm_tape_fault", None)
            if arm is not None:
                arm(spec, corruption)
        batch = await self._exec.run(
            partial(
                self._execute_batch_job,
                fault,
                compiled,
                envs,
                engine,
                spec,
                kernel,
                self._sample_shadow(backend),
            )
        )
        return batch.results

    def _sample_shadow(self, backend: str) -> bool:
        """Deterministic sampling: shadow-verify this batch?"""
        fraction = self.config.shadow_verify
        if fraction <= 0 or backend == "interpreter":
            return False
        self._shadow_acc += min(1.0, fraction)
        if self._shadow_acc >= 1.0:
            self._shadow_acc -= 1.0
            return True
        return False

    def _execute_batch_job(
        self, fault, compiled, envs, engine, spec, kernel, shadow
    ):
        """The executor-thread body: injected fault, then the tape pass.

        A :class:`~repro.he.errors.NoiseBudgetExhausted` that survives
        the engine's own escalation ladder converts to a typed retryable
        :class:`~repro.serve.errors.NoiseBudgetError` here — it is a
        caught runtime condition, not a poisoned thread, so the
        supervisor must not restart the executor lane over it.
        """
        apply_fault(fault)
        try:
            batch = self.session.execute_batch(
                compiled, envs, backend=engine, spec=spec
            )
        except NoiseBudgetExhausted as error:
            self.metrics.guard_trip(kernel)
            raise NoiseBudgetError(
                f"noise budget exhausted serving kernel {kernel!r}: "
                f"{error}"
            ) from error
        drain = getattr(engine, "drain_escalations", None)
        if drain is not None:
            self.metrics.noise_escalations(kernel, drain())
        if shadow:
            self._shadow_check(kernel, compiled, envs, spec, batch)
        return batch

    def _shadow_check(self, kernel, compiled, envs, spec, batch) -> None:
        """Cross-check one sampled batch against the interpreter backend.

        The last line of defense against silent corruption: whatever the
        encrypted path returned must agree with the plaintext behavioral
        model on the same program and inputs.  On mismatch the result is
        withheld as a retryable ``NOISE_BUDGET`` error — the client gets
        a typed failure, never wrong plaintext.
        """
        reference = self.session.execute_batch(
            compiled, envs,
            backend=self.session.backend("interpreter"), spec=spec,
        )
        ok = all(
            np.array_equal(got.logical_output, want.logical_output)
            for got, want in zip(batch.results, reference.results)
        )
        self.metrics.shadow_verify(kernel, ok)
        if not ok:
            raise NoiseBudgetError(
                f"shadow verification failed for kernel {kernel!r}: "
                "encrypted output disagrees with the interpreter "
                "reference; withholding the corrupt result"
            )

    # -- TCP ---------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # a connection task must never finish cancelled: the streams
        # machinery retrieves its result and would log the CancelledError
        # as an "exception in callback" on every shutdown
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass  # server shutdown: close this connection quietly
        finally:
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()
            if task is not None:
                self._connections.discard(task)

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    async with write_lock:
                        writer.write(
                            encode_message(
                                error_response(None, "request line too long")
                            )
                        )
                        await writer.drain()
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                # each request is its own task so pipelined requests on
                # one connection still coalesce (responses carry ids and
                # may complete out of order)
                request = asyncio.get_running_loop().create_task(
                    self._serve_line(line, writer, write_lock)
                )
                pending.add(request)
                request.add_done_callback(pending.discard)
        finally:
            if pending:
                await asyncio.gather(*list(pending), return_exceptions=True)

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        shutdown = False
        try:
            payload = decode_message(line)
        except ProtocolError as error:
            response = error_response(None, str(error))
        else:
            response = await self.handle_request(payload)
            shutdown = (
                payload.get("op") == "shutdown"
                and bool(response.get("ok"))
            )
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            async with write_lock:
                writer.write(encode_message(response))
                await writer.drain()
        if shutdown:
            self.request_stop()
