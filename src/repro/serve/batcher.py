"""The batch scheduler: request coalescing with linger and fair-share.

Concurrent requests for the same compiled program are held briefly and
dispatched as *one* lockstep ``run_many`` batch — the ``(batch, k, N)``
residue stacks make the marginal cost of a coalesced request ~flat, so
under load the scheduler converts queueing delay into batch occupancy.

Two knobs bound the wait:

* ``max_batch`` — a group dispatches immediately once this many
  requests are pending (the stack height of one tape pass), and
* ``linger_s`` — the *first* request of a group starts a linger timer;
  when it fires, whatever has accumulated dispatches.  An idle service
  therefore adds at most one linger window of latency, and a busy one
  never waits at all.

Dispatches are serialized per group — while a batch for a key is in
flight, newly arriving requests accumulate (beyond ``max_batch`` if they
must) and are drained fair-share when the batch lands.  The execution
tier is one serial accelerator pass, so concurrent dispatches would only
queue downstream; holding them here instead is what gives the fairness
policy a backlog to be fair *about*.

Requests only share a group when they are provably lockstep-compatible:
the group key carries the kernel, backend, execution seed, and a digest
of the server-side plaintext operands (``run_many`` shares those across
the batch).  Within a group, requests are drained **fair-share**: one
per tenant, round-robin, so a tenant flooding the queue cannot starve a
light tenant out of the next batch.

The scheduler is deliberately ignorant of HE: it coalesces opaque
payloads and hands batches to an async ``run_batch`` callable, which
makes it directly unit-testable (and reusable for any batched backend).

Failure handling (this is the layer where hangs would be born, so it is
the layer that prevents them):

* **Admission control** — ``max_backlog`` bounds the total pending
  items across all groups; beyond it, :meth:`submit` fails fast with a
  typed :class:`~repro.serve.errors.Overloaded` instead of letting one
  slow tenant's backlog grow without bound.
* **Deadlines** — a :class:`WorkItem` may carry a
  :class:`~repro.serve.errors.Deadline`; the submitting waiter races it
  (``wait_for`` around a ``shield``, so abandoning the wait never
  cancels a future the whole batch shares), and expired items are
  dropped *before* dispatch so a dead request cannot occupy a lockstep
  slot.
* **Dispatch-path containment** — if forming a batch itself fails, the
  group is un-wedged (busy flag cleared, linger timer cancelled) and
  the popped items get the exception; pruned empty groups have their
  timers cancelled so a stale timer can never fire into a dead group.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Hashable, Sequence

from repro.serve.errors import Deadline, DeadlineExceeded, Overloaded
from repro.serve.metrics import MetricsRegistry

# an async callable: (group_key, payloads) -> one result per payload
BatchRunner = Callable[[Hashable, list], Awaitable[Sequence[Any]]]


def _retrieve(future: asyncio.Future) -> None:
    """Mark an abandoned future's eventual exception as retrieved."""
    if not future.cancelled():
        future.exception()


@dataclass
class WorkItem:
    """One queued request, opaque payload plus scheduling bookkeeping."""

    key: Hashable  # coalescing group (kernel, backend, seed, pt digest)
    kernel: str
    tenant: str
    payload: Any
    enqueued: float = field(default_factory=time.perf_counter)
    batch_size: int = 0  # how many requests shared the dispatch (set late)
    deadline: Deadline | None = None
    future: asyncio.Future = field(default_factory=asyncio.Future)


class _Group:
    """Pending requests for one coalescing key, queued per tenant."""

    __slots__ = ("tenants", "rr", "timer", "size", "busy", "ready")

    def __init__(self):
        self.tenants: dict[str, deque[WorkItem]] = {}
        self.rr = 0  # round-robin cursor, persistent across batches
        self.timer: asyncio.TimerHandle | None = None
        self.size = 0
        self.busy = False  # a batch for this key is executing right now
        self.ready = False  # flush was requested while busy; fire on landing

    def add(self, item: WorkItem) -> None:
        queue = self.tenants.get(item.tenant)
        if queue is None:
            queue = self.tenants[item.tenant] = deque()
        queue.append(item)
        self.size += 1

    def pop_batch(self, limit: int) -> list[WorkItem]:
        """Drain up to ``limit`` items, one per tenant, round-robin.

        The cursor survives between batches, so with tenants A (many
        pending) and B, C (one each), consecutive batches keep rotating
        the first slot instead of always starting at A.
        """
        items: list[WorkItem] = []
        names = list(self.tenants)
        if not names:
            return items
        cursor = self.rr % len(names)
        while len(items) < limit and self.size:
            queue = self.tenants[names[cursor]]
            if queue:
                items.append(queue.popleft())
                self.size -= 1
            cursor = (cursor + 1) % len(names)
            if not any(self.tenants[name] for name in names):
                break
        self.rr = cursor
        # drop drained tenant queues so the rotation stays tight
        for name in names:
            if not self.tenants[name]:
                del self.tenants[name]
        return items


class BatchScheduler:
    """Coalesce submitted work items into batched dispatches."""

    #: empty groups beyond this count are pruned (their only state worth
    #: keeping is the fairness cursor, which resets harmlessly)
    GROUP_LIMIT = 256

    def __init__(
        self,
        run_batch: BatchRunner,
        *,
        max_batch: int = 8,
        linger_s: float = 0.002,
        max_backlog: int | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if linger_s < 0:
            raise ValueError("linger_s must be >= 0")
        if max_backlog is not None and max_backlog < 1:
            raise ValueError("max_backlog must be >= 1 (or None)")
        self.run_batch = run_batch
        self.max_batch = max_batch
        self.linger_s = linger_s
        self.max_backlog = max_backlog
        self.metrics = metrics
        self._groups: dict[Hashable, _Group] = {}
        self._inflight: set[asyncio.Task] = set()

    # -- submission --------------------------------------------------------

    async def submit(self, item: WorkItem) -> Any:
        """Queue one item and await its result.

        Must be called on the event loop.  Dispatch happens immediately
        at ``max_batch`` pending, else when the group's linger expires.

        Raises :class:`Overloaded` when the backlog bound is hit and
        :class:`DeadlineExceeded` when the item's deadline elapses
        before its batch lands (the item is then dropped pre-dispatch so
        it never occupies a lockstep slot).
        """
        if (
            self.max_backlog is not None
            and self.depth() >= self.max_backlog
        ):
            raise Overloaded(
                f"scheduler backlog full ({self.max_backlog} pending); "
                "retry with backoff"
            )
        if item.deadline is not None and item.deadline.expired:
            raise DeadlineExceeded(
                f"deadline expired before {item.kernel!r} was enqueued"
            )
        group = self._groups.get(item.key)
        if group is None:
            if len(self._groups) > self.GROUP_LIMIT:
                self._prune_groups()
            group = self._groups[item.key] = _Group()
        group.add(item)
        self._gauge(item.kernel)
        if group.size >= self.max_batch:
            self._flush(item.key)
        elif group.timer is None:
            loop = asyncio.get_running_loop()
            group.timer = loop.call_later(
                self.linger_s, self._flush, item.key
            )
        if item.deadline is None:
            return await item.future
        # race the (shared) future against the deadline without ever
        # cancelling it — other waiters in the same batch still need it
        try:
            return await asyncio.wait_for(
                asyncio.shield(item.future), item.deadline.remaining()
            )
        except asyncio.TimeoutError:
            item.future.add_done_callback(_retrieve)
            raise DeadlineExceeded(
                f"deadline exceeded waiting for {item.kernel!r} "
                f"(batched with {item.batch_size or 'pending'})"
            ) from None

    def _prune_groups(self) -> None:
        """Drop empty idle groups, cancelling their linger timers so a
        stale timer can never fire into a group we no longer track."""
        kept: dict[Hashable, _Group] = {}
        for key, group in self._groups.items():
            if group.size or group.busy:
                kept[key] = group
            elif group.timer is not None:
                group.timer.cancel()
                group.timer = None
        self._groups = kept

    def depth(self, key: Hashable | None = None) -> int:
        """Pending items in one group (or across all groups)."""
        if key is not None:
            group = self._groups.get(key)
            return group.size if group else 0
        return sum(group.size for group in self._groups.values())

    # -- dispatch ----------------------------------------------------------

    def _flush(self, key: Hashable) -> None:
        group = self._groups.get(key)
        if group is None:
            return
        if group.timer is not None:
            group.timer.cancel()
            group.timer = None
        if group.busy:
            # one batch per group at a time (the execution tier is one
            # serial accelerator pass anyway): let the backlog build and
            # fair-share it when the in-flight batch lands
            group.ready = True
            return
        items = group.pop_batch(self.max_batch)
        # an expired request must not occupy a lockstep slot: fail it
        # typed now (its waiter has already timed out; _retrieve keeps
        # the abandoned future quiet) and batch only the live ones
        live: list[WorkItem] = []
        for item in items:
            if item.deadline is not None and item.deadline.expired:
                if not item.future.done():
                    item.future.add_done_callback(_retrieve)
                    item.future.set_exception(DeadlineExceeded(
                        f"deadline expired while {item.kernel!r} was "
                        "queued"
                    ))
            else:
                live.append(item)
        if not live:
            if group.size and group.timer is None:
                group.timer = asyncio.get_running_loop().call_later(
                    self.linger_s, self._flush, key
                )
            return
        group.busy = True
        try:
            for item in live:
                item.batch_size = len(live)
            if self.metrics is not None:
                self.metrics.batch(live[0].kernel, len(live))
            self._gauge(live[0].kernel)
            task = asyncio.get_running_loop().create_task(
                self._dispatch(key, live)
            )
        except Exception as error:  # noqa: BLE001 - contained, not raised
            # dispatch never started: un-wedge the group (busy flag,
            # linger timer) and hand the failure to the popped waiters
            # instead of leaving them pending forever
            group.busy = False
            if group.timer is not None:
                group.timer.cancel()
                group.timer = None
            for item in live:
                if not item.future.done():
                    item.future.set_exception(error)
            return
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _dispatch(self, key: Hashable, items: list[WorkItem]) -> None:
        try:
            results = await self.run_batch(
                key, [item.payload for item in items]
            )
            if len(results) != len(items):
                raise RuntimeError(
                    f"batch runner returned {len(results)} results for "
                    f"{len(items)} items"
                )
            for item, result in zip(items, results):
                if not item.future.done():
                    item.future.set_result(result)
        except Exception as error:  # noqa: BLE001 - forwarded to callers
            for item in items:
                if not item.future.done():
                    item.future.set_exception(error)
        finally:
            self._on_batch_done(key)

    def _on_batch_done(self, key: Hashable) -> None:
        """Re-arm the group once its in-flight batch has landed."""
        group = self._groups.get(key)
        if group is None:
            return
        group.busy = False
        if group.ready or group.size >= self.max_batch:
            group.ready = False
            self._flush(key)
        elif group.size and group.timer is None:
            group.timer = asyncio.get_running_loop().call_later(
                self.linger_s, self._flush, key
            )

    def _gauge(self, kernel: str) -> None:
        if self.metrics is not None:
            pending = sum(
                group.size
                for key, group in self._groups.items()
                if group.size and self._kernel_of(key) == kernel
            )
            self.metrics.depth(kernel, pending)

    @staticmethod
    def _kernel_of(key: Hashable) -> str:
        # group keys are (kernel, ...) tuples by convention; fall back to
        # the whole key so exotic keys still gauge *something*
        if isinstance(key, tuple) and key and isinstance(key[0], str):
            return key[0]
        return str(key)

    # -- shutdown ----------------------------------------------------------

    async def drain(self) -> None:
        """Dispatch everything pending and wait for in-flight batches."""
        while True:
            for key in list(self._groups):
                self._flush(key)
            if not self._inflight:
                break
            await asyncio.gather(
                *list(self._inflight), return_exceptions=True
            )
