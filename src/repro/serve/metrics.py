"""Per-kernel and per-tenant serving metrics.

Everything counts into :class:`~repro.runtime.profiler.SchedulerStats`,
the one metrics shape shared by online serving (the ``stats`` wire op,
``porcupine serve --timings``) and offline reporting
(``BENCH_serving.json``).  Latency samples are kept in a bounded sliding
window per scope so a long-lived server's memory stays flat; counters
are cumulative until ``snapshot(reset=True)``.
"""

from __future__ import annotations

import threading

from repro.runtime.profiler import SchedulerStats, format_scheduler_table


class MetricsRegistry:
    """Thread-safe serving counters, scoped globally/per-kernel/per-tenant.

    The asyncio front-end mutates from the event loop and the execution
    thread reports batch timings, hence the lock; every operation is a
    few integer bumps, so contention is negligible next to an encrypted
    tape pass.
    """

    def __init__(self, latency_window: int = 4096):
        self.latency_window = latency_window
        self.overall = SchedulerStats()
        self.per_kernel: dict[str, SchedulerStats] = {}
        self.per_tenant: dict[str, SchedulerStats] = {}
        self.queue_depth: dict[str, int] = {}
        self._lock = threading.Lock()

    def _kernel(self, kernel: str) -> SchedulerStats:
        stats = self.per_kernel.get(kernel)
        if stats is None:
            stats = self.per_kernel[kernel] = SchedulerStats()
        return stats

    def _tenant(self, tenant: str) -> SchedulerStats:
        stats = self.per_tenant.get(tenant)
        if stats is None:
            stats = self.per_tenant[tenant] = SchedulerStats()
        return stats

    # -- recording ---------------------------------------------------------

    def request(self, kernel: str, tenant: str) -> None:
        with self._lock:
            for stats in (self.overall, self._kernel(kernel),
                          self._tenant(tenant)):
                stats.requests += 1

    def response(
        self, kernel: str, tenant: str, latency_s: float, ok: bool = True
    ) -> None:
        latency_ms = latency_s * 1e3
        with self._lock:
            for stats in (self.overall, self._kernel(kernel),
                          self._tenant(tenant)):
                if ok:
                    stats.responses += 1
                    stats.latency_ms.append(latency_ms)
                    if len(stats.latency_ms) > self.latency_window:
                        del stats.latency_ms[: -self.latency_window]
                else:
                    stats.errors += 1

    def error(self, kernel: str, tenant: str) -> None:
        self.response(kernel, tenant, 0.0, ok=False)

    def failure(self, kernel: str, tenant: str, code: str) -> None:
        """One typed failure: counts as an error plus its code bucket."""
        from repro.serve import errors as _errors

        with self._lock:
            scopes = (self.overall, self._kernel(kernel),
                      self._tenant(tenant))
            for stats in scopes:
                stats.errors += 1
                if code == _errors.DEADLINE_EXCEEDED:
                    stats.deadline_exceeded += 1
                elif code == _errors.OVERLOADED:
                    stats.overloaded += 1
                elif code == _errors.NOISE_BUDGET:
                    stats.noise_budget_errors += 1

    def retry(self, kernel: str, tenant: str) -> None:
        """A request arrived flagged as a client retry (``attempt`` > 1)."""
        with self._lock:
            for stats in (self.overall, self._kernel(kernel),
                          self._tenant(tenant)):
                stats.retried_requests += 1

    def pool_restart(self) -> None:
        """The compile pool was respawned after a worker crash."""
        with self._lock:
            self.overall.pool_restarts += 1

    def executor_restart(self) -> None:
        """The supervised execution thread was restarted."""
        with self._lock:
            self.overall.executor_restarts += 1

    def degraded_compile(self, kernel: str) -> None:
        """A compile ran in-process because the pool is unhealthy."""
        with self._lock:
            for stats in (self.overall, self._kernel(kernel)):
                stats.degraded_compiles += 1

    def batch(self, kernel: str, size: int) -> None:
        """One coalesced lockstep batch of ``size`` requests dispatched."""
        with self._lock:
            self.overall.record(size)
            self._kernel(kernel).record(size)

    def depth(self, kernel: str, depth: int) -> None:
        """Gauge update: requests currently queued for ``kernel``."""
        with self._lock:
            self.queue_depth[kernel] = depth
            kernel_stats = self._kernel(kernel)
            kernel_stats.queue_peak = max(kernel_stats.queue_peak, depth)
            total = sum(self.queue_depth.values())
            self.overall.queue_peak = max(self.overall.queue_peak, total)

    def noise_escalations(self, kernel: str, count: int) -> None:
        """``count`` parameter escalations recovered batches for
        ``kernel`` (drained from the engine after each batch)."""
        if count <= 0:
            return
        with self._lock:
            for stats in (self.overall, self._kernel(kernel)):
                stats.noise_escalations += count

    def guard_trip(self, kernel: str) -> None:
        """A runtime noise guard stopped a batch mid-tape."""
        with self._lock:
            for stats in (self.overall, self._kernel(kernel)):
                stats.guard_trips += 1

    def shadow_verify(self, kernel: str, ok: bool) -> None:
        """One sampled response was cross-checked against the
        interpreter backend (``ok=False`` means the ciphertext path
        disagreed with the plaintext model — silent corruption caught)."""
        with self._lock:
            for stats in (self.overall, self._kernel(kernel)):
                stats.shadow_checks += 1
                if not ok:
                    stats.shadow_mismatches += 1

    def compile_result(self, kernel: str, hit: bool) -> None:
        with self._lock:
            for stats in (self.overall, self._kernel(kernel)):
                if hit:
                    stats.compile_hits += 1
                else:
                    stats.compile_misses += 1

    # -- reporting ---------------------------------------------------------

    def snapshot(self, reset: bool = False) -> dict:
        """JSON-ready view of every scope (the ``stats`` op's payload)."""
        with self._lock:
            payload = {
                "scheduler": self.overall.summary(),
                "kernels": {
                    name: stats.summary()
                    for name, stats in sorted(self.per_kernel.items())
                },
                "tenants": {
                    name: stats.summary()
                    for name, stats in sorted(self.per_tenant.items())
                },
                "queue_depth": dict(sorted(self.queue_depth.items())),
            }
            if reset:
                self.overall = SchedulerStats()
                self.per_kernel = {}
                self.per_tenant = {}
            return payload

    def format_table(self) -> str:
        """The ``--timings`` rendering (shared with offline reports)."""
        with self._lock:
            return format_scheduler_table(self.overall, self.per_kernel)
