"""Deterministic fault injection for the serving stack.

Chaos testing a batch scheduler with real nondeterminism (random kills,
random delays) produces flaky tests; this module instead gives every
failure a *name* and a *site*, so a test arms exactly the faults it
wants and the serving code trips them at well-defined points:

``compile:<kernel>``
    Consulted by :class:`~repro.serve.compilepool.CompilePool` just
    before handing the kernel to a worker; the armed fault ships to the
    worker process and is applied there (so ``("kill",)`` really
    SIGKILLs a pool worker mid-compile, exercising the genuine
    ``BrokenProcessPool`` recovery path, not a simulation of it).

``execute:<kernel>``
    Consulted by the server's executor-thread batch runner before the
    tape pass; ``("raise", msg)`` poisons the execution thread (the
    supervisor must restart it), ``("sleep", s)`` makes the batch slow
    (deadline propagation must fire).

``runtime:<kernel>``
    Consulted at the same point but *forwarded into the executor* as a
    one-shot mid-tape ciphertext corruption
    (:meth:`HEExecutor.arm_tape_fault`) rather than applied at the
    site: ``("bitflip", step, bit)`` XORs one bit of one NTT-domain
    residue point of the value produced at tape step ``step``;
    ``("poison", step)`` rotates a residue row wholesale.  Both model
    silent data corruption (a DRAM flip, a truncated page) that the
    noise-safety machinery must catch — the serve client must see a
    typed retryable ``NOISE_BUDGET`` error or a correct escalated
    result, never wrong plaintext.

Faults are **one-shot** by default: armed once, tripped once, then
gone — so "the worker dies, the pool respawns, and the *next* compile
succeeds" is a single test with no extra coordination.  Arm with
``times=n`` for repeated trips.

The injector is optional everywhere (``None`` means no faults, zero
overhead on the hot path) and thread-safe (the executor thread and the
event loop both consult it).

Fault tuples
------------

``("kill",)``
    ``os.kill(os.getpid(), SIGKILL)`` — the hosting process dies
    instantly.  Only meaningful inside a pool worker.

``("sleep", seconds)``
    Block the site for ``seconds`` before proceeding normally.

``("raise", message)``
    Raise ``RuntimeError(message)`` at the site.
"""

from __future__ import annotations

import os
import signal
import threading
import time


class FaultInjector:
    """Named one-shot faults, armed by tests, tripped by serving code."""

    def __init__(self):
        self._armed: dict[str, list[tuple]] = {}
        self._tripped: dict[str, int] = {}
        self._lock = threading.Lock()

    def arm(self, site: str, fault: tuple, times: int = 1) -> None:
        """Queue ``fault`` to trip the next ``times`` visits to ``site``."""
        if times < 1:
            raise ValueError("times must be >= 1")
        with self._lock:
            self._armed.setdefault(site, []).extend([fault] * times)

    def take(self, site: str) -> tuple | None:
        """Pop the next armed fault for ``site`` (None if unarmed).

        The serving code calls this at the site and applies whatever
        comes back; taking counts as tripping for :meth:`tripped`.
        """
        with self._lock:
            queue = self._armed.get(site)
            if not queue:
                return None
            fault = queue.pop(0)
            if not queue:
                del self._armed[site]
            self._tripped[site] = self._tripped.get(site, 0) + 1
            return fault

    def tripped(self, site: str) -> int:
        """How many times ``site``'s faults have fired (test assertions)."""
        with self._lock:
            return self._tripped.get(site, 0)

    def pending(self, site: str) -> int:
        """How many faults remain armed at ``site``."""
        with self._lock:
            return len(self._armed.get(site, ()))


def apply_fault(fault: tuple | None) -> None:
    """Execute a fault tuple at the current site (no-op for ``None``).

    Importable from pool worker processes — :func:`_compile_in_worker`
    ships the tuple across the process boundary and applies it there, so
    a ``("kill",)`` fault takes down a *real* worker.
    """
    if fault is None:
        return
    kind = fault[0]
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "sleep":
        time.sleep(float(fault[1]))
    elif kind == "raise":
        raise RuntimeError(str(fault[1]) if len(fault) > 1 else
                           "injected fault")
    else:
        raise ValueError(f"unknown fault kind {kind!r}")
