"""Clients for the serve protocol: blocking (tests/CLI) and asyncio (bench).

:class:`ServeClient` is a plain-socket, one-request-at-a-time client —
what a test, the CI smoke script, or a shell pipeline wants.
:class:`AsyncServeClient` pipelines many requests over one connection
and matches responses to requests by id, which is what the open-loop
load generator needs (requests must leave on schedule regardless of how
fast responses come back).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
from typing import Any

import numpy as np

from repro.serve.protocol import MAX_LINE, decode_message, encode_message


def _prepare_inputs(inputs: dict | None) -> dict | None:
    if inputs is None:
        return None
    return {
        name: (
            np.asarray(value).tolist()
            if isinstance(value, np.ndarray)
            else value
        )
        for name, value in inputs.items()
    }


class ServeClient:
    """Blocking JSON-lines client: one in-flight request at a time."""

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)
        self._stash: dict[Any, dict] = {}  # out-of-order replies by id

    def request(self, payload: dict) -> dict:
        """Send one payload and return its (id-matched) response."""
        request_id = payload.setdefault("id", f"c{next(self._ids)}")
        if request_id in self._stash:
            return self._stash.pop(request_id)
        self._file.write(encode_message(payload))
        self._file.flush()
        while True:
            line = self._file.readline(MAX_LINE)
            if not line:
                raise ConnectionError("server closed the connection")
            response = decode_message(line)
            if response.get("id") in (request_id, None):
                return response
            self._stash[response.get("id")] = response

    def run(
        self,
        kernel: str,
        inputs: dict | None = None,
        *,
        tenant: str = "default",
        seed: int | None = None,
        backend: str | None = None,
    ) -> dict:
        payload: dict = {
            "op": "run",
            "kernel": kernel,
            "tenant": tenant,
            "inputs": _prepare_inputs(inputs),
        }
        if seed is not None:
            payload["seed"] = seed
        if backend is not None:
            payload["backend"] = backend
        return self.request(payload)

    def output_array(self, response: dict) -> np.ndarray:
        """A run response's output as the int64 array ``session.run`` returns."""
        return np.asarray(response["output"], dtype=np.int64).reshape(
            response["shape"]
        )

    def compile(self, kernel: str) -> dict:
        return self.request({"op": "compile", "kernel": kernel})

    def stats(self, reset: bool = False) -> dict:
        return self.request({"op": "stats", "reset": reset})

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServeClient:
    """Pipelined asyncio client: many in-flight requests, matched by id."""

    def __init__(self):
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[Any, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._reader_task: asyncio.Task | None = None

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServeClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE
        )
        client._reader_task = asyncio.get_running_loop().create_task(
            client._read_loop()
        )
        return client

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            error = ConnectionError("server closed the connection")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def submit(self, payload: dict) -> dict:
        """Send now, await the matching response (pipelining-safe)."""
        assert self._writer is not None
        request_id = payload.setdefault("id", f"a{next(self._ids)}")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_message(payload))
        await self._writer.drain()
        return await future

    async def run(
        self,
        kernel: str,
        inputs: dict | None = None,
        *,
        tenant: str = "default",
        seed: int | None = None,
        backend: str | None = None,
    ) -> dict:
        payload: dict = {
            "op": "run",
            "kernel": kernel,
            "tenant": tenant,
            "inputs": _prepare_inputs(inputs),
        }
        if seed is not None:
            payload["seed"] = seed
        if backend is not None:
            payload["backend"] = backend
        return await self.submit(payload)

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
