"""Clients for the serve protocol: blocking (tests/CLI) and asyncio (bench).

:class:`ServeClient` is a plain-socket, one-request-at-a-time client —
what a test, the CI smoke script, or a shell pipeline wants.
:class:`AsyncServeClient` pipelines many requests over one connection
and matches responses to requests by id, which is what the open-loop
load generator needs (requests must leave on schedule regardless of how
fast responses come back).

Both clients take an optional :class:`~repro.serve.errors.RetryPolicy`.
When set, **idempotent** requests (every serving op except ``shutdown``
— a ``run`` is a pure function of kernel, inputs, and server seed) are
retried with exponential backoff and jitter on transport failures and
on wire errors the server marked ``retryable`` (``OVERLOADED``,
``WORKER_CRASHED``, ``EXECUTOR_CRASHED``, ``UNAVAILABLE``); the
connection is re-established first when it died.  Retried requests
carry an ``attempt`` field so the server can count them.  Without a
policy the clients behave exactly as before: one try, transport errors
raised as a typed :class:`~repro.serve.errors.ConnectionLost` (a
``ConnectionError`` subclass, so old ``except`` clauses keep working).

A client-level ``timeout_ms`` stamps a deadline onto every ``run``
request that does not carry one of its own.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
import time
from typing import Any

import numpy as np

from repro.serve.errors import ConnectionLost, RetryPolicy
from repro.serve.protocol import MAX_LINE, decode_message, encode_message


def _prepare_inputs(inputs: dict | None) -> dict | None:
    if inputs is None:
        return None
    return {
        name: (
            np.asarray(value).tolist()
            if isinstance(value, np.ndarray)
            else value
        )
        for name, value in inputs.items()
    }


def _wants_retry(
    retry: RetryPolicy | None, response: dict, attempt: int
) -> bool:
    """Whether an *error response* (not an exception) earns a retry."""
    return (
        retry is not None
        and response.get("ok") is False
        and bool(response.get("retryable"))
        and attempt < retry.attempts
    )


class ServeClient:
    """Blocking JSON-lines client: one in-flight request at a time."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 120.0,
        retry: RetryPolicy | None = None,
        timeout_ms: float | None = None,
    ):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry
        self._timeout_ms = timeout_ms
        self._sock: socket.socket | None = None
        self._file = None
        self._ids = itertools.count(1)
        self._stash: dict[Any, dict] = {}  # out-of-order replies by id
        self._connect()

    # -- connection management --------------------------------------------

    def _connect(self) -> None:
        self._teardown()
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._file = self._sock.makefile("rwb")
        self._stash = {}

    def _teardown(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- requests ----------------------------------------------------------

    def request(self, payload: dict, *, idempotent: bool = True) -> dict:
        """Send one payload and return its (id-matched) response.

        With a retry policy, idempotent requests are retried (with
        backoff, reconnecting first) on transport failures and on
        retryable wire errors; the final failure is raised typed.
        """
        retry = self._retry if idempotent else None
        attempt = 0
        while True:
            attempt += 1
            try:
                if self._file is None:
                    self._connect()
                response = self._request_once(payload, attempt)
            except (ConnectionError, OSError, EOFError) as error:
                self._teardown()  # the stream is in an unknown state
                if retry is None or not retry.should_retry(error, attempt):
                    if isinstance(error, ConnectionLost):
                        raise
                    raise ConnectionLost(str(error)) from error
                time.sleep(retry.backoff(attempt - 1))
                continue
            if _wants_retry(retry, response, attempt):
                time.sleep(retry.backoff(attempt - 1))
                continue
            return response

    def _request_once(self, payload: dict, attempt: int) -> dict:
        request_id = payload.setdefault("id", f"c{next(self._ids)}")
        if attempt > 1:
            payload["attempt"] = attempt
        if request_id in self._stash:
            return self._stash.pop(request_id)
        self._file.write(encode_message(payload))
        self._file.flush()
        while True:
            line = self._file.readline(MAX_LINE)
            if not line:
                raise ConnectionLost("server closed the connection")
            response = decode_message(line)
            if response.get("id") in (request_id, None):
                return response
            self._stash[response.get("id")] = response

    def run(
        self,
        kernel: str,
        inputs: dict | None = None,
        *,
        tenant: str = "default",
        seed: int | None = None,
        backend: str | None = None,
        timeout_ms: float | None = None,
    ) -> dict:
        payload: dict = {
            "op": "run",
            "kernel": kernel,
            "tenant": tenant,
            "inputs": _prepare_inputs(inputs),
        }
        if seed is not None:
            payload["seed"] = seed
        if backend is not None:
            payload["backend"] = backend
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        elif self._timeout_ms is not None:
            payload["timeout_ms"] = self._timeout_ms
        return self.request(payload)

    def output_array(self, response: dict) -> np.ndarray:
        """A run response's output as the int64 array ``session.run`` returns."""
        return np.asarray(response["output"], dtype=np.int64).reshape(
            response["shape"]
        )

    def compile(self, kernel: str) -> dict:
        return self.request({"op": "compile", "kernel": kernel})

    def stats(self, reset: bool = False) -> dict:
        return self.request({"op": "stats", "reset": reset})

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def shutdown(self) -> dict:
        # NOT idempotent: a retried shutdown could kill a freshly
        # restarted server, so it gets exactly one try
        return self.request({"op": "shutdown"}, idempotent=False)

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServeClient:
    """Pipelined asyncio client: many in-flight requests, matched by id."""

    def __init__(self):
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[Any, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._reader_task: asyncio.Task | None = None
        self._host: str | None = None
        self._port: int | None = None
        self._retry: RetryPolicy | None = None
        self._timeout_ms: float | None = None
        self._dead: ConnectionLost | None = None  # why the reader died

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        retry: RetryPolicy | None = None,
        timeout_ms: float | None = None,
    ) -> "AsyncServeClient":
        client = cls()
        client._host, client._port = host, port
        client._retry = retry
        client._timeout_ms = timeout_ms
        await client._open()
        return client

    async def _open(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port, limit=MAX_LINE
        )
        self._dead = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    async def _read_loop(self) -> None:
        """Match responses to pending futures until the transport dies.

        However the loop exits — EOF, reset, cancellation, or an
        undecodable frame — every pending future is failed with a typed
        :class:`ConnectionLost` naming the cause, and the client is
        marked dead so later submits fail fast instead of waiting on a
        reader that will never run again.
        """
        assert self._reader is not None
        reason = "server closed the connection"
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except json.JSONDecodeError as error:
                    reason = f"undecodable response frame: {error}"
                    break
                if not isinstance(response, dict):
                    reason = "malformed response frame (not an object)"
                    break
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            reason = "client closed"
        except (ConnectionResetError, OSError, ValueError) as error:
            # ValueError: a frame over the MAX_LINE stream limit
            reason = f"connection lost: {error}"
        finally:
            error = ConnectionLost(reason)
            self._dead = error
            pending, self._pending = list(self._pending.values()), {}
            for future in pending:
                if not future.done():
                    future.set_exception(ConnectionLost(reason))

    async def submit(
        self, payload: dict, *, idempotent: bool = True
    ) -> dict:
        """Send now, await the matching response (pipelining-safe).

        With a retry policy, idempotent requests are re-sent (with
        backoff, reconnecting first when the connection died) on
        transport failures and retryable wire errors.
        """
        retry = self._retry if idempotent else None
        attempt = 0
        while True:
            attempt += 1
            try:
                if self._dead is not None or self._writer is None:
                    await self._open()
                response = await self._submit_once(payload, attempt)
            except asyncio.CancelledError:
                raise
            except (ConnectionError, OSError, EOFError) as error:
                if retry is None or not retry.should_retry(error, attempt):
                    if isinstance(error, ConnectionLost):
                        raise
                    raise ConnectionLost(str(error)) from error
                await asyncio.sleep(retry.backoff(attempt - 1))
                continue
            if _wants_retry(retry, response, attempt):
                await asyncio.sleep(retry.backoff(attempt - 1))
                continue
            return response

    async def _submit_once(self, payload: dict, attempt: int) -> dict:
        if self._dead is not None:
            raise ConnectionLost(str(self._dead))
        assert self._writer is not None
        request_id = payload.setdefault("id", f"a{next(self._ids)}")
        if attempt > 1:
            payload["attempt"] = attempt
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(encode_message(payload))
            await self._writer.drain()
        except (ConnectionError, OSError) as error:
            self._pending.pop(request_id, None)
            raise ConnectionLost(str(error)) from error
        return await future

    async def run(
        self,
        kernel: str,
        inputs: dict | None = None,
        *,
        tenant: str = "default",
        seed: int | None = None,
        backend: str | None = None,
        timeout_ms: float | None = None,
    ) -> dict:
        payload: dict = {
            "op": "run",
            "kernel": kernel,
            "tenant": tenant,
            "inputs": _prepare_inputs(inputs),
        }
        if seed is not None:
            payload["seed"] = seed
        if backend is not None:
            payload["backend"] = backend
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        elif self._timeout_ms is not None:
            payload["timeout_ms"] = self._timeout_ms
        return await self.submit(payload)

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
