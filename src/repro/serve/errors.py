"""Structured serving errors, deadlines, and retry policy.

Production HE compilers treat failure handling as part of the compiler
contract (EVA's compile-service deployment, HEIR's pipeline-robustness
emphasis): a client must be able to tell *mechanically* whether an error
was its own fault (``PROTOCOL``), a transient server condition worth
retrying (``OVERLOADED``, ``WORKER_CRASHED``, ``EXECUTOR_CRASHED``,
``UNAVAILABLE``, ``NOISE_BUDGET``), a budget it set itself
(``DEADLINE_EXCEEDED``), or a bug (``INTERNAL``).  Every wire error therefore carries a ``code`` from
the closed taxonomy below plus a ``retryable`` hint, and every
:class:`ServeError` knows how to render itself as a wire response.

:class:`Deadline` is the request-budget primitive threaded through the
whole serving stack — the front-end stamps one at arrival
(``timeout_ms`` on the request, or the server default) and the compile
tier, batch scheduler, and executor all poll the same absolute
``time.perf_counter`` instant, so a request times out *once*, with one
typed error, no matter which tier it is stuck in.

:class:`RetryPolicy` is the client half of the contract: exponential
backoff with deterministic-seedable jitter, applied only to idempotent
operations (every serving op except ``shutdown`` is idempotent — a
``run`` is a pure function of the kernel, inputs, and server seed).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

# -- the closed error-code taxonomy -----------------------------------------

#: request could not be decoded into a well-formed operation (caller bug)
PROTOCOL = "PROTOCOL"
#: the request's deadline elapsed before a result was produced
DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
#: admission control rejected the request (bounded backlog full)
OVERLOADED = "OVERLOADED"
#: a compile-pool worker process died mid-compile
WORKER_CRASHED = "WORKER_CRASHED"
#: the execution thread was poisoned mid-batch and has been restarted
EXECUTOR_CRASHED = "EXECUTOR_CRASHED"
#: the transport died with requests outstanding (client-side only)
CONNECTION_LOST = "CONNECTION_LOST"
#: the server is shutting down or a required tier is unavailable
UNAVAILABLE = "UNAVAILABLE"
#: the noise budget was (or would be) exhausted and could not be
#: recovered by parameter escalation; the result was withheld rather
#: than risk returning corrupt plaintext
NOISE_BUDGET = "NOISE_BUDGET"
#: anything else (a bug: unexpected exception on the serving path)
INTERNAL = "INTERNAL"

ERROR_CODES = (
    PROTOCOL,
    DEADLINE_EXCEEDED,
    OVERLOADED,
    WORKER_CRASHED,
    EXECUTOR_CRASHED,
    CONNECTION_LOST,
    UNAVAILABLE,
    NOISE_BUDGET,
    INTERNAL,
)

#: codes a client may safely retry for idempotent operations
RETRYABLE_CODES = frozenset(
    {OVERLOADED, WORKER_CRASHED, EXECUTOR_CRASHED, CONNECTION_LOST,
     UNAVAILABLE, NOISE_BUDGET}
)


class ServeError(Exception):
    """Base class for typed serving failures.

    Subclasses pin ``code`` (and the default ``retryable`` flag); the
    server converts any raised :class:`ServeError` into a wire error
    response carrying both, and clients convert such responses back via
    :func:`error_from_response`.
    """

    code: str = INTERNAL
    retryable: bool = False

    def __init__(self, message: str, *, retryable: bool | None = None):
        super().__init__(message)
        if retryable is not None:
            self.retryable = retryable

    def response(self, request_id: Any) -> dict:
        """The wire shape of this error (id-echoing, typed)."""
        return {
            "id": request_id,
            "ok": False,
            "error": str(self),
            "code": self.code,
            "retryable": self.retryable,
        }


class DeadlineExceeded(ServeError):
    """The request's own time budget elapsed; retrying needs a new one."""

    code = DEADLINE_EXCEEDED
    retryable = False


class Overloaded(ServeError):
    """Admission control turned the request away; back off and retry."""

    code = OVERLOADED
    retryable = True


class WorkerCrashed(ServeError):
    """A compile worker process died; the pool respawns, retry is safe."""

    code = WORKER_CRASHED
    retryable = True


class ExecutorCrashed(ServeError):
    """The execution thread was poisoned; it restarts, retry is safe."""

    code = EXECUTOR_CRASHED
    retryable = True


class ConnectionLost(ServeError, ConnectionError):
    """The transport died with this request outstanding (client-side).

    Subclasses :class:`ConnectionError` too, so callers that predate the
    taxonomy (``except ConnectionError``) keep working.
    """

    code = CONNECTION_LOST
    retryable = True


class Unavailable(ServeError):
    """The server (or a tier it needs) is not accepting work right now."""

    code = UNAVAILABLE
    retryable = True


class NoiseBudgetError(ServeError):
    """The batch tripped a noise guard (or failed shadow verification)
    and escalation could not recover it; the server withheld the output
    rather than return silently-corrupt plaintext.

    Retryable: the corruption is a transient runtime event (an injected
    or real bit-flip, a mis-sized request), not a property of the
    request itself — a fresh execution re-encrypts from scratch.
    """

    code = NOISE_BUDGET
    retryable = True


class InternalError(ServeError):
    """An unexpected exception escaped on the serving path."""

    code = INTERNAL
    retryable = False


_CODE_TO_CLASS: dict[str, type[ServeError]] = {
    DEADLINE_EXCEEDED: DeadlineExceeded,
    OVERLOADED: Overloaded,
    WORKER_CRASHED: WorkerCrashed,
    EXECUTOR_CRASHED: ExecutorCrashed,
    CONNECTION_LOST: ConnectionLost,
    UNAVAILABLE: Unavailable,
    NOISE_BUDGET: NoiseBudgetError,
    INTERNAL: InternalError,
}


def error_from_response(response: dict) -> ServeError:
    """Rehydrate a wire error response into its typed exception.

    Unknown or missing codes come back as :class:`InternalError` (a
    ``PROTOCOL`` error is the caller's own bug, never retryable, and has
    no dedicated exception class — it maps to a plain non-retryable
    :class:`ServeError` with the code preserved).
    """
    code = response.get("code", INTERNAL)
    message = str(response.get("error", "unknown error"))
    if code == PROTOCOL:
        error = ServeError(message, retryable=False)
        error.code = PROTOCOL
        return error
    cls = _CODE_TO_CLASS.get(code, InternalError)
    error = cls(message)
    if "retryable" in response:
        error.retryable = bool(response["retryable"])
    return error


# -- deadlines ---------------------------------------------------------------


@dataclass(frozen=True)
class Deadline:
    """An absolute ``time.perf_counter`` instant a request must beat.

    One deadline is stamped when a request arrives and polled by every
    tier it passes through — compile pool, batch scheduler, executor —
    so queueing time and execution time draw down the same budget.
    """

    at: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(time.perf_counter() + seconds)

    @classmethod
    def from_timeout_ms(
        cls, timeout_ms: float | None, default_ms: float | None = None
    ) -> "Deadline | None":
        """Deadline from a request's ``timeout_ms`` (or a server default).

        ``None`` (neither set) means the request runs unbounded, which is
        the pre-deadline wire behavior.
        """
        value = timeout_ms if timeout_ms is not None else default_ms
        if value is None:
            return None
        value = float(value)
        if value <= 0:
            raise ValueError("timeout_ms must be > 0")
        return cls.after(value / 1e3)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at - time.perf_counter()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0


# -- client retry policy -----------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for idempotent serving calls.

    ``attempts`` counts *tries*, not retries: the default of 3 means one
    initial call plus up to two retries.  Backoff for retry *i* (0-based)
    is ``base_s * multiplier**i`` capped at ``max_backoff_s``, then
    jittered by up to ``jitter`` of itself (full-jitter style, so
    coordinated clients decorrelate).  ``seed`` makes the jitter stream
    deterministic for tests.
    """

    attempts: int = 3
    base_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.5  # fraction of the backoff that is randomized
    seed: int | None = None
    _rng: random.Random = field(
        init=False, repr=False, compare=False, default=None  # type: ignore
    )

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        object.__setattr__(self, "_rng", random.Random(self.seed))

    def backoff(self, retry_index: int) -> float:
        """Sleep before retry ``retry_index`` (0 for the first retry)."""
        base = min(
            self.base_s * (self.multiplier ** retry_index),
            self.max_backoff_s,
        )
        if self.jitter <= 0:
            return base
        spread = base * self.jitter
        return max(0.0, base - spread + self._rng.uniform(0, 2 * spread))

    def should_retry(self, error: Exception, attempt: int) -> bool:
        """Whether try number ``attempt`` (1-based) may be followed by
        another, given the failure it produced."""
        if attempt >= self.attempts:
            return False
        if isinstance(error, ServeError):
            return error.retryable
        # raw transport failures (reset, refused, EOF) are retryable for
        # idempotent operations
        return isinstance(error, (ConnectionError, OSError, EOFError))

    def schedule(self) -> Iterator[float]:
        """The full backoff schedule (one delay per allowed retry)."""
        for i in range(self.attempts - 1):
            yield self.backoff(i)


#: a policy that never retries (the default for non-idempotent ops)
NO_RETRY = RetryPolicy(attempts=1)
