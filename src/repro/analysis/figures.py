"""ASCII renderings of the paper's figures."""

from __future__ import annotations

from repro.quill.ir import Program
from repro.quill.noise import multiplicative_depth
from repro.quill.printer import format_listing


def render_figure4(
    speedups: list[tuple[str, float, float | None]], width: int = 50
) -> str:
    """Horizontal bar chart of percentage speedups (Figure 4).

    ``speedups`` holds (kernel, measured %, paper % or None).
    """
    lines = ["Figure 4: speedup of synthesized kernels over baselines (%)"]
    if not speedups:
        return lines[0]
    peak = max(abs(s) for _, s, _ in speedups) or 1.0
    for kernel, measured, paper in speedups:
        bar = "#" * max(0, int(round(abs(measured) / peak * width)))
        sign = "-" if measured < 0 else ""
        paper_note = f"  (paper: {paper:+.1f}%)" if paper is not None else ""
        lines.append(
            f"{kernel:24s} {measured:+7.1f}% {sign}{bar}{paper_note}"
        )
    return "\n".join(lines)


def render_program_comparison(
    title: str, synthesized: Program, baseline: Program
) -> str:
    """Side-by-side listing in the style of Figures 5 and 6."""

    def describe(tag: str, program: Program) -> list[str]:
        return [
            f"[{tag}] {program.name}: {program.instruction_count()} "
            f"instructions, depth {program.critical_depth()}, "
            f"mult-depth {multiplicative_depth(program)}",
            format_listing(program),
        ]

    lines = [title]
    lines += describe("synthesized", synthesized)
    lines.append("")
    lines += describe("baseline", baseline)
    return "\n".join(lines)


def render_schedule_trace(
    program: Program, wires: list, slots: list[int], labels: list[str]
) -> str:
    """Per-instruction slot trace (Figure 7's right-hand column)."""
    lines = [f"schedule trace for {program.name} (slots {slots})"]
    for index, (instr, value) in enumerate(zip(program.instructions, wires)):
        picked = ", ".join(
            f"{label}={value[slot]}" for label, slot in zip(labels, slots)
        )
        lines.append(f"  c{index + 1:<3} {instr.opcode.value:10s} {picked}")
    return "\n".join(lines)
