"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width table with a header rule, GitHub-log friendly."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table2_row(
    kernel: str,
    baseline_instr: int,
    baseline_depth: int,
    synth_instr: int,
    synth_depth: int,
    paper_baseline: tuple[int, int] | None = None,
    paper_synth: tuple[int, int] | None = None,
) -> list:
    """One row of Table 2 with the paper's numbers alongside ours."""
    row = [kernel, baseline_instr, baseline_depth, synth_instr, synth_depth]
    if paper_baseline and paper_synth:
        row += [
            f"{paper_baseline[0]}/{paper_baseline[1]}",
            f"{paper_synth[0]}/{paper_synth[1]}",
        ]
    return row


def render_table3_row(
    kernel: str,
    examples: int,
    initial_time: float,
    total_time: float,
    initial_cost: float,
    final_cost: float,
    paper_initial: float | None = None,
    paper_total: float | None = None,
) -> list:
    row = [
        kernel,
        examples,
        f"{initial_time:.2f}",
        f"{total_time:.2f}",
        f"{initial_cost:.0f}",
        f"{final_cost:.0f}",
    ]
    if paper_initial is not None:
        row += [f"{paper_initial:.2f}", f"{paper_total:.2f}"]
    return row
