"""Result formatting: render the paper's tables and figures as text."""

from repro.analysis.figures import render_figure4, render_program_comparison
from repro.analysis.tables import render_table, render_table2_row, render_table3_row

__all__ = [
    "render_figure4",
    "render_program_comparison",
    "render_table",
    "render_table2_row",
    "render_table3_row",
]
