"""The Spec class: reference implementation + layout + verification glue.

A reference implementation is a Python callable taking one keyword array
per logical input and returning the *flat list* of output values in the
layout's output-slot order.  Because references only use ``+ - *`` they
run unchanged on integer arrays (concrete examples for the CEGIS loop) and
on object arrays of :class:`~repro.symbolic.polynomial.Poly` (symbolic
lifting for verification) — the paper uses Racket + Rosette for the same
two roles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.quill.ir import Program
from repro.spec.layout import Layout
from repro.symbolic.polynomial import Poly
from repro.symbolic.symvec import evaluate_symbolic
from repro.symbolic.verify import VerificationResult, check_equivalence


@dataclass
class Example:
    """One concrete input-output example driving inductive synthesis."""

    ct_env: dict[str, np.ndarray]  # packed model vectors
    pt_env: dict[str, np.ndarray]
    goal: np.ndarray  # expected values at layout.output_slots, flat order


@dataclass(frozen=True)
class Spec:
    """A kernel specification (paper section 4.3).

    Attributes:
        name: kernel identifier.
        layout: slot map for inputs and outputs.
        reference: plaintext implementation; called with one keyword array
            per logical input, returns flat outputs in output-slot order.
        example_bound: magnitude bound for randomly drawn synthesis
            examples (verification is exact, so small values suffice).
        backend_bound: magnitude bound for inputs when executing on the
            real BFV backend, chosen so no intermediate overflows the
            plaintext modulus.
        params_name: BFV parameter preset with enough noise budget for the
            kernel's multiplicative depth.
        description: one-line summary for docs and reports.
    """

    name: str
    layout: Layout
    reference: Callable[..., list]
    example_bound: int = 9
    backend_bound: int = 50
    params_name: str = "n4096-depth1"
    description: str = ""

    # -- concrete side ----------------------------------------------------

    def random_logical_inputs(
        self, rng: np.random.Generator, bound: int | None = None
    ) -> dict[str, np.ndarray]:
        bound = bound if bound is not None else self.example_bound
        env = {}
        for packed in self.layout.inputs:
            env[packed.name] = rng.integers(
                -bound, bound + 1, packed.shape, dtype=np.int64
            )
        return env

    def reference_output(self, logical_env: dict[str, np.ndarray]) -> list:
        return list(self.reference(**logical_env))

    def packed_env(
        self, logical_env: dict[str, np.ndarray]
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        ct_env, pt_env = {}, {}
        for packed in self.layout.inputs:
            vec = self.layout.pack(packed.name, logical_env[packed.name])
            (ct_env if packed.kind == "ct" else pt_env)[packed.name] = vec
        return ct_env, pt_env

    def make_example(
        self,
        rng: np.random.Generator,
        logical_env: dict[str, np.ndarray] | None = None,
    ) -> Example:
        if logical_env is None:
            logical_env = self.random_logical_inputs(rng)
        goal = np.array(
            [int(v) for v in self.reference_output(logical_env)],
            dtype=np.int64,
        )
        ct_env, pt_env = self.packed_env(logical_env)
        return Example(ct_env=ct_env, pt_env=pt_env, goal=goal)

    # -- symbolic side --------------------------------------------------------

    def symbolic_env(self) -> tuple[dict[str, list[Poly]], dict[str, list[Poly]]]:
        ct_env, pt_env = {}, {}
        for packed in self.layout.inputs:
            vec = self.layout.pack_symbolic(packed.name)
            (ct_env if packed.kind == "ct" else pt_env)[packed.name] = vec
        return ct_env, pt_env

    def symbolic_logical_inputs(self) -> dict[str, np.ndarray]:
        """Object arrays of fresh variables, shaped like the logical inputs."""
        env = {}
        for packed in self.layout.inputs:
            flat = [
                Poly.var(f"{packed.name}[{i}]") for i in range(packed.size)
            ]
            env[packed.name] = np.array(flat, dtype=object).reshape(packed.shape)
        return env

    def expected_symbolic(self) -> list[Poly]:
        """The reference lifted to polynomials, one per output slot."""
        outputs = self.reference(**self.symbolic_logical_inputs())
        return [o if isinstance(o, Poly) else Poly.const(int(o)) for o in outputs]

    def verify_program(self, program: Program) -> VerificationResult:
        """Exact equivalence of a Quill program against this specification."""
        if program.vector_size != self.layout.vector_size:
            raise ValueError(
                f"program vector size {program.vector_size} != "
                f"layout vector size {self.layout.vector_size}"
            )
        ct_env, pt_env = self.symbolic_env()
        actual = evaluate_symbolic(program, ct_env, pt_env)
        expected_flat = self.expected_symbolic()
        expected = [Poly.zero()] * self.layout.vector_size
        slots = list(self.layout.output_slots)
        for slot, poly in zip(slots, expected_flat):
            expected[slot] = poly
        return check_equivalence(actual, expected, slots=slots)

    def example_from_witness(
        self, witness: dict[str, int], rng: np.random.Generator
    ) -> Example:
        """Turn a verifier counterexample into a concrete Example.

        Witness variables are named ``input[flat_index]``; variables absent
        from the witness do not affect the disagreement, so they are filled
        with small random values.
        """
        logical_env = self.random_logical_inputs(rng, bound=3)
        for var, value in witness.items():
            name, _, rest = var.partition("[")
            index = int(rest[:-1])
            logical_env[name].reshape(-1)[index] = value
        return self.make_example(rng, logical_env)

    def __repr__(self) -> str:
        return f"Spec({self.name!r}, n={self.layout.vector_size})"
