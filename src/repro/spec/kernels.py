"""The paper's kernel suite (Table 3): nine direct + two multi-step kernels.

The paper does not publish exact input sizes; the configurations here are
the smallest ones consistent with its reported baseline structure and the
rotation amounts visible in Figures 5-7 (see DESIGN.md):

* image kernels pack a 4x4 image onto width-5 grid rows (so ``rot 5``
  moves one grid row, matching the figures) with zero padding;
* reductions use power-of-two lengths so baseline reduction trees match
  the Table 2 instruction counts.

All image kernels share one layout geometry so multi-step synthesis can
compose them (Sobel = Gx^2 + Gy^2, Harris uses Gx, Gy and box blur).
"""

from __future__ import annotations

from functools import cache

from repro.spec.layout import image_layout, vector_layout
from repro.spec.reference import Spec

# ---------------------------------------------------------------------------
# Shared image geometry
# ---------------------------------------------------------------------------

IMAGE_HEIGHT = 4
IMAGE_WIDTH = 4
GRID_WIDTH = 5  # one zero-padding column; "rot 5" = one grid row
IMAGE_MARGIN = 24

# valid output pixels per window shape
_VALID_2X2 = [(r, c) for r in range(3) for c in range(3)]
_VALID_3X3 = [(r, c) for r in (1, 2) for c in (1, 2)]
_VALID_HARRIS = [(1, 1)]

GX_TAPS = [
    (dr, dc, w)
    for dr, row in enumerate([[1, 0, -1], [2, 0, -2], [1, 0, -1]])
    for dc, w in enumerate(row)
    if w
]
GY_TAPS = [(dc, dr, w) for dr, dc, w in GX_TAPS]
BOX_TAPS = [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 1)]


def _stencil(img, taps, centers, centered: bool):
    offset = 1 if centered else 0
    outputs = []
    for r, c in centers:
        total = 0
        for dr, dc, weight in taps:
            total = total + weight * img[r + dr - offset, c + dc - offset]
        outputs.append(total)
    return outputs


def _image_layout(valid, extra_inputs=None):
    return image_layout(
        height=IMAGE_HEIGHT,
        width=IMAGE_WIDTH,
        grid_width=GRID_WIDTH,
        valid=valid,
        margin=IMAGE_MARGIN,
        extra_inputs=extra_inputs,
    )


# ---------------------------------------------------------------------------
# Image-processing kernels
# ---------------------------------------------------------------------------

@cache
def box_blur_spec() -> Spec:
    """2x2 box blur (unnormalised window sum), as in Figure 5."""

    def reference(img):
        return _stencil(img, BOX_TAPS, _VALID_2X2, centered=False)

    return Spec(
        name="box_blur",
        layout=_image_layout(_VALID_2X2),
        reference=reference,
        backend_bound=255,
        description="2x2 window sum over a packed 4x4 image",
    )


@cache
def gx_spec() -> Spec:
    """Sobel x-gradient: [1,2,1]^T (x) [1,0,-1] (Figures 6 and 7)."""

    def reference(img):
        return _stencil(img, GX_TAPS, _VALID_3X3, centered=True)

    return Spec(
        name="gx",
        layout=_image_layout(_VALID_3X3),
        reference=reference,
        backend_bound=255,
        description="3x3 x-gradient over a packed 4x4 image",
    )


@cache
def gy_spec() -> Spec:
    """Sobel y-gradient (transpose of Gx)."""

    def reference(img):
        return _stencil(img, GY_TAPS, _VALID_3X3, centered=True)

    return Spec(
        name="gy",
        layout=_image_layout(_VALID_3X3),
        reference=reference,
        backend_bound=255,
        description="3x3 y-gradient over a packed 4x4 image",
    )


@cache
def roberts_spec() -> Spec:
    """Roberts cross response: (I(r,c)-I(r+1,c+1))^2 + (I(r+1,c)-I(r,c+1))^2."""

    def reference(img):
        outputs = []
        for r, c in _VALID_2X2:
            d1 = img[r, c] - img[r + 1, c + 1]
            d2 = img[r + 1, c] - img[r, c + 1]
            outputs.append(d1 * d1 + d2 * d2)
        return outputs

    return Spec(
        name="roberts",
        layout=_image_layout(_VALID_2X2),
        reference=reference,
        backend_bound=100,
        description="Roberts cross edge response over a packed 4x4 image",
    )


@cache
def sobel_spec() -> Spec:
    """Sobel edge response Gx^2 + Gy^2 (multi-step target)."""

    def reference(img):
        gx = _stencil(img, GX_TAPS, _VALID_3X3, centered=True)
        gy = _stencil(img, GY_TAPS, _VALID_3X3, centered=True)
        return [a * a + b * b for a, b in zip(gx, gy)]

    return Spec(
        name="sobel",
        layout=_image_layout(_VALID_3X3),
        reference=reference,
        backend_bound=15,
        description="Sobel operator composed from Gx and Gy (multi-step)",
    )


@cache
def harris_spec() -> Spec:
    """Harris corner response 16*det(S) - trace(S)^2 (i.e. k = 1/16).

    BFV is integer-only, so the conventional k = 0.04..0.06 is replaced by
    k = 1/16 and the response scaled by 16; the paper's Harris likewise
    returns pre-threshold response values for the client to threshold.
    """

    def reference(img):
        def grad(taps, r, c):
            total = 0
            for dr, dc, w in taps:
                total = total + w * img[r + dr - 1, c + dc - 1]
            return total

        (r0, c0) = _VALID_HARRIS[0]
        sxx = syy = sxy = 0
        for dr in (0, 1):
            for dc in (0, 1):
                gx = grad(GX_TAPS, r0 + dr, c0 + dc)
                gy = grad(GY_TAPS, r0 + dr, c0 + dc)
                sxx = sxx + gx * gx
                syy = syy + gy * gy
                sxy = sxy + gx * gy
        det = sxx * syy - sxy * sxy
        trace = sxx + syy
        return [16 * det - trace * trace]

    return Spec(
        name="harris",
        layout=_image_layout(_VALID_HARRIS),
        reference=reference,
        backend_bound=1,  # binary image keeps the response inside t
        params_name="n8192-depth3",
        description="Harris corner response (multi-step: Gx, Gy, box blur)",
    )


# ---------------------------------------------------------------------------
# Linear-algebra / ML kernels
# ---------------------------------------------------------------------------

@cache
def dot_product_spec(n: int = 8) -> Spec:
    """Dot product of a packed client vector with server plaintext data."""

    def reference(x, w):
        total = 0
        for a, b in zip(x, w):
            total = total + a * b
        return [total]

    return Spec(
        name="dot_product",
        layout=vector_layout([("x", "ct", n), ("w", "pt", n)]),
        reference=reference,
        backend_bound=50,
        description=f"length-{n} ct x pt dot product (Figure 2)",
    )


@cache
def hamming_spec(n: int = 4) -> Spec:
    """Hamming distance via sum of squared differences (0/1 vectors)."""

    def reference(x, y):
        total = 0
        for a, b in zip(x, y):
            d = a - b
            total = total + d * d
        return [total]

    return Spec(
        name="hamming",
        layout=vector_layout([("x", "ct", n), ("y", "ct", n)]),
        reference=reference,
        backend_bound=40,
        description=f"length-{n} Hamming distance (sum of squared diffs)",
    )


@cache
def l2_spec(n: int = 8) -> Spec:
    """Squared L2 distance with masked (privacy-clean) output.

    The output ciphertext must contain *only* the distance: every other
    slot is zero, so partial sums do not leak to the client.  This is what
    the paper's 9-instruction baseline (reduction + output mask) computes.
    """
    layout_inputs = [("x", "ct", n), ("y", "ct", n)]
    base = vector_layout(layout_inputs)
    origin, size = base.origin, base.vector_size
    layout = vector_layout(
        layout_inputs,
        output_slots=list(range(size)),
        output_shape=(size,),
    )

    def reference(x, y):
        total = 0
        for a, b in zip(x, y):
            d = a - b
            total = total + d * d
        return [total if slot == origin else 0 for slot in range(size)]

    return Spec(
        name="l2",
        layout=layout,
        reference=reference,
        backend_bound=30,
        description=f"length-{n} squared L2 distance, masked scalar output",
    )


@cache
def linear_regression_spec(features: int = 2) -> Spec:
    """Linear model inference: y = w . x + b (packed features)."""

    def reference(x, w, b):
        total = b[0]
        for a, ww in zip(x, w):
            total = total + a * ww
        return [total]

    return Spec(
        name="linear_regression",
        layout=vector_layout(
            [("x", "ct", features), ("w", "pt", features), ("b", "ct", 1)],
            margin=4,
        ),
        reference=reference,
        backend_bound=80,
        description=f"{features}-feature linear regression inference",
    )


@cache
def polynomial_regression_spec(n: int = 4) -> Spec:
    """Quadratic model inference: y_i = a_i x_i^2 + b_i x_i + c_i.

    The kernel where Porcupine discovers the Horner factorization
    a x^2 + b x = (a x + b) x, saving one ciphertext multiply.
    """

    def reference(a, b, c, x):
        return [
            ai * xi * xi + bi * xi + ci
            for ai, bi, ci, xi in zip(a, b, c, x)
        ]

    base = vector_layout(
        [("a", "ct", n), ("b", "ct", n), ("c", "ct", n), ("x", "ct", n)]
    )
    layout = vector_layout(
        [("a", "ct", n), ("b", "ct", n), ("c", "ct", n), ("x", "ct", n)],
        output_slots=list(range(base.origin, base.origin + n)),
        output_shape=(n,),
    )
    return Spec(
        name="polynomial_regression",
        layout=layout,
        reference=reference,
        backend_bound=30,
        params_name="n8192-depth3",
        description=f"element-wise quadratic evaluation over {n} samples",
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

DIRECT_SPECS = (
    box_blur_spec,
    dot_product_spec,
    hamming_spec,
    l2_spec,
    linear_regression_spec,
    polynomial_regression_spec,
    gx_spec,
    gy_spec,
    roberts_spec,
)

MULTISTEP_SPECS = (sobel_spec, harris_spec)

ALL_SPECS = DIRECT_SPECS + MULTISTEP_SPECS


def get_spec(name: str) -> Spec:
    """Look up any kernel spec by its name."""
    for factory in ALL_SPECS:
        spec = factory()
        if spec.name == name:
            return spec
    raise KeyError(f"unknown kernel {name!r}")
