"""Kernel specifications: reference implementations plus data layouts.

A Porcupine specification "completely describes a target kernel's
functional behaviour" (paper section 4.3): a plaintext reference
implementation plus the vector data layout inputs and outputs must adhere
to.  Reference implementations here are plain Python functions over numpy
arrays; because they only use ``+ - *`` they can be executed either on
integer arrays (concrete examples) or on arrays of
:class:`~repro.symbolic.polynomial.Poly` (symbolic lifting, standing in
for Rosette).
"""

from repro.spec.kernels import (
    ALL_SPECS,
    DIRECT_SPECS,
    MULTISTEP_SPECS,
    box_blur_spec,
    dot_product_spec,
    get_spec,
    gx_spec,
    gy_spec,
    hamming_spec,
    harris_spec,
    l2_spec,
    linear_regression_spec,
    polynomial_regression_spec,
    roberts_spec,
    sobel_spec,
)
from repro.spec.layout import Layout, PackedInput, image_layout, vector_layout
from repro.spec.reference import Example, Spec

__all__ = [
    "ALL_SPECS",
    "DIRECT_SPECS",
    "Example",
    "Layout",
    "MULTISTEP_SPECS",
    "PackedInput",
    "Spec",
    "box_blur_spec",
    "dot_product_spec",
    "get_spec",
    "gx_spec",
    "gy_spec",
    "hamming_spec",
    "harris_spec",
    "image_layout",
    "l2_spec",
    "linear_regression_spec",
    "polynomial_regression_spec",
    "roberts_spec",
    "sobel_spec",
    "vector_layout",
]
