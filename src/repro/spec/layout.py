"""Data layouts: how logical inputs/outputs map onto ciphertext slots.

A layout places each logical input array at fixed slots of the model
vector and records which slots hold the kernel's outputs.  Model vectors
carry a zero *margin* on both sides of the packed data so that Quill's
shift-with-zero-fill rotation semantics coincide exactly with cyclic
rotation of the (much larger, zero-padded) real ciphertext — see
:mod:`repro.runtime.executor`, which checks the displacement bound that
makes the equivalence hold.

Image kernels use the paper's packing (section 4.3 / Figure 7): the image
is flattened row-major onto grid rows of a fixed width, with zero padding
columns on the right, so "rotate by grid_width" aligns vertically adjacent
pixels and "rotate by 1" horizontally adjacent ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.symbolic.polynomial import Poly


@dataclass(frozen=True)
class PackedInput:
    """One logical input and where its elements live in the model vector."""

    name: str
    kind: Literal["ct", "pt"]
    shape: tuple[int, ...]
    slots: tuple[int, ...]  # flat logical index -> absolute model slot

    @property
    def size(self) -> int:
        return len(self.slots)


@dataclass(frozen=True)
class Layout:
    """Complete slot map for a kernel's inputs and outputs."""

    vector_size: int
    origin: int
    inputs: tuple[PackedInput, ...]
    output_slots: tuple[int, ...]
    output_shape: tuple[int, ...]

    def __post_init__(self):
        for packed in self.inputs:
            for slot in packed.slots:
                if not 0 <= slot < self.vector_size:
                    raise ValueError(
                        f"input {packed.name!r} slot {slot} out of range"
                    )
            if int(np.prod(packed.shape)) != packed.size:
                raise ValueError(f"input {packed.name!r} shape/slots mismatch")
        for slot in self.output_slots:
            if not 0 <= slot < self.vector_size:
                raise ValueError(f"output slot {slot} out of range")
        if int(np.prod(self.output_shape)) != len(self.output_slots):
            raise ValueError("output shape does not match output slots")

    # -- lookups -----------------------------------------------------------

    def input(self, name: str) -> PackedInput:
        for packed in self.inputs:
            if packed.name == name:
                return packed
        raise KeyError(f"no input named {name!r}")

    @property
    def ct_names(self) -> list[str]:
        return [p.name for p in self.inputs if p.kind == "ct"]

    @property
    def pt_names(self) -> list[str]:
        return [p.name for p in self.inputs if p.kind == "pt"]

    # -- packing ------------------------------------------------------------

    def pack(self, name: str, values: np.ndarray) -> np.ndarray:
        """Place a logical array into a zero model vector."""
        packed = self.input(name)
        flat = np.asarray(values, dtype=np.int64).reshape(-1)
        if flat.shape != (packed.size,):
            raise ValueError(
                f"input {name!r} expects shape {packed.shape}, "
                f"got {np.asarray(values).shape}"
            )
        vec = np.zeros(self.vector_size, dtype=np.int64)
        vec[list(packed.slots)] = flat
        return vec

    def pack_symbolic(self, name: str) -> list[Poly]:
        """Model vector of fresh variables ``name[flat_index]`` (zeros elsewhere)."""
        packed = self.input(name)
        vec: list[Poly] = [Poly.zero()] * self.vector_size
        for flat_index, slot in enumerate(packed.slots):
            vec[slot] = Poly.var(f"{name}[{flat_index}]")
        return vec

    def unpack_output(self, model_vector: np.ndarray) -> np.ndarray:
        """Extract the logical output array from a model/decrypted vector."""
        flat = np.asarray(model_vector)[list(self.output_slots)]
        return flat.reshape(self.output_shape)

    def max_displacement_budget(self) -> tuple[int, int]:
        """(left, right) slack between packed data and the vector edges."""
        lowest = min(min(p.slots) for p in self.inputs)
        highest = max(max(p.slots) for p in self.inputs)
        return lowest, self.vector_size - 1 - highest


def vector_layout(
    inputs: list[tuple[str, str, int]],
    margin: int | None = None,
    output_slots: list[int] | None = None,
    output_shape: tuple[int, ...] | None = None,
) -> Layout:
    """Pack 1-D logical vectors, all starting at the same origin.

    Args:
        inputs: (name, kind, length) triples; every vector starts at
            ``origin`` so element-wise SIMD instructions align them.
        margin: zero slots on each side (default: the longest input).
        output_slots: absolute output slots; default is the single slot at
            ``origin`` (scalar reduction result).
        output_shape: logical output shape; default matches output_slots.
    """
    longest = max(length for _, _, length in inputs)
    if margin is None:
        margin = longest
    origin = margin
    packed = tuple(
        PackedInput(
            name=name,
            kind=kind,  # type: ignore[arg-type]
            shape=(length,),
            slots=tuple(range(origin, origin + length)),
        )
        for name, kind, length in inputs
    )
    if output_slots is None:
        output_slots = [origin]
    if output_shape is None:
        output_shape = (len(output_slots),)
    return Layout(
        vector_size=margin + longest + margin,
        origin=origin,
        inputs=packed,
        output_slots=tuple(output_slots),
        output_shape=tuple(output_shape),
    )


def image_layout(
    height: int,
    width: int,
    grid_width: int,
    valid: list[tuple[int, int]],
    margin: int,
    name: str = "img",
    extra_inputs: list[tuple[str, str]] | None = None,
) -> Layout:
    """Row-major packing of an image onto padded grid rows (Figure 7).

    Args:
        height, width: logical image dimensions.
        grid_width: slots per grid row (> width leaves zero padding
            columns, so horizontal window reads never cross rows).
        valid: (row, col) positions whose outputs the kernel must produce.
        margin: zero slots before/after the grid.
        name: the image input name.
        extra_inputs: additional same-shape image inputs (name, kind).
    """
    if grid_width <= width:
        raise ValueError("grid_width must exceed image width for padding")
    origin = margin
    slots = tuple(
        origin + r * grid_width + c
        for r in range(height)
        for c in range(width)
    )
    inputs = [PackedInput(name, "ct", (height, width), slots)]
    for extra_name, kind in extra_inputs or []:
        inputs.append(PackedInput(extra_name, kind, (height, width), slots))  # type: ignore[arg-type]
    output_slots = tuple(origin + r * grid_width + c for r, c in valid)
    span = (height - 1) * grid_width + width
    return Layout(
        vector_size=margin + span + margin,
        origin=origin,
        inputs=tuple(inputs),
        output_slots=output_slots,
        output_shape=(len(valid),),
    )
