"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                     — the kernel suite with descriptions
* ``compile <kernel>``         — synthesize and print Quill + SEAL code
* ``baseline <kernel>``        — print the hand-written baseline
* ``run <kernel>``             — synthesize, then execute under encryption
* ``profile``                  — measure per-instruction latencies
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_list(args) -> int:
    from repro.baselines import BASELINE_BUILDERS
    from repro.spec import ALL_SPECS

    print(f"{'kernel':24s} {'baseline':>9s}  description")
    for factory in ALL_SPECS:
        spec = factory()
        baseline = BASELINE_BUILDERS[spec.name]()
        print(
            f"{spec.name:24s} {baseline.instruction_count():6d} in  "
            f"{spec.description}"
        )
    return 0


def _compile(name: str, opt_timeout: float, optimize: bool):
    from repro.core import compile_kernel
    from repro.core.compiler import config_for
    from repro.spec import get_spec

    spec = get_spec(name)
    config = config_for(spec, optimize_timeout=opt_timeout, optimize=optimize)
    return spec, compile_kernel(spec, config=config)


def _cmd_compile(args) -> int:
    spec, result = _compile(args.kernel, args.opt_timeout, not args.no_optimize)
    stats = result.synthesis
    print(
        f"# synthesized {result.program.instruction_count()} instructions "
        f"in {stats.total_time:.2f}s (initial {stats.initial_time:.2f}s, "
        f"{stats.examples_used} example(s), "
        f"{'optimal' if stats.proof_complete else 'best-effort'})",
        file=sys.stderr,
    )
    print(result.program)
    if args.seal:
        with open(args.seal, "w") as handle:
            handle.write(result.seal_code + "\n")
        print(f"# SEAL code written to {args.seal}", file=sys.stderr)
    else:
        print()
        print(result.seal_code)
    return 0


def _cmd_baseline(args) -> int:
    from repro.baselines import baseline_for
    from repro.quill.noise import multiplicative_depth

    program = baseline_for(args.kernel)
    print(
        f"# {program.instruction_count()} instructions, depth "
        f"{program.critical_depth()}, multiplicative depth "
        f"{multiplicative_depth(program)}",
        file=sys.stderr,
    )
    print(program)
    return 0


def _cmd_run(args) -> int:
    from repro.runtime import HEExecutor
    from repro.runtime.estimator import estimate_noise_budget

    spec, result = _compile(args.kernel, args.opt_timeout, not args.no_optimize)
    executor = HEExecutor(spec, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    logical = {
        p.name: rng.integers(0, spec.backend_bound + 1, p.shape)
        for p in spec.layout.inputs
    }
    predicted = estimate_noise_budget(result.program, executor.params)
    report = executor.run(result.program, logical)
    for name, value in logical.items():
        print(f"input {name} = {np.asarray(value).ravel().tolist()}")
    print(f"output (decrypted) = {report.logical_output.ravel().tolist()}")
    print(f"reference          = {report.expected_output.ravel().tolist()}")
    print(f"matches reference: {report.matches_reference}")
    print(
        f"noise budget: {report.output_noise_budget} bits measured, "
        f">= {predicted:.0f} bits predicted"
    )
    print(f"evaluation time: {report.wall_time:.2f}s on {executor.params.name}")
    return 0 if report.matches_reference else 1


def _cmd_profile(args) -> int:
    from repro.he.params import large_params, small_params, toy_params
    from repro.runtime.profiler import format_latency_table, profile_instructions

    presets = {
        "toy": toy_params,
        "small": small_params,
        "large": large_params,
    }
    params = presets[args.preset]()
    model = profile_instructions(params, repeats=args.repeats)
    print(format_latency_table(model))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Porcupine reproduction: synthesizing HE kernels",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the kernel suite")

    for verb, helptext in (
        ("compile", "synthesize a kernel and emit Quill + SEAL code"),
        ("run", "synthesize a kernel and execute it under encryption"),
    ):
        cmd = sub.add_parser(verb, help=helptext)
        cmd.add_argument("kernel")
        cmd.add_argument("--opt-timeout", type=float, default=30.0,
                         help="cost-minimization budget in seconds")
        cmd.add_argument("--no-optimize", action="store_true",
                         help="stop after the initial solution")
        if verb == "compile":
            cmd.add_argument("--seal", metavar="FILE",
                             help="write SEAL C++ here instead of stdout")
        else:
            cmd.add_argument("--seed", type=int, default=0)

    baseline = sub.add_parser("baseline", help="print a hand-written baseline")
    baseline.add_argument("kernel")

    profile = sub.add_parser("profile", help="profile instruction latencies")
    profile.add_argument("--preset", choices=("toy", "small", "large"),
                         default="toy")
    profile.add_argument("--repeats", type=int, default=3)

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "compile": _cmd_compile,
        "baseline": _cmd_baseline,
        "run": _cmd_run,
        "profile": _cmd_profile,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
