"""Command-line interface: ``python -m repro <command>`` (or ``porcupine``).

Commands:

* ``list``                     — the kernel suite with descriptions
* ``compile <kernel>``         — synthesize and print Quill + SEAL code
* ``baseline <kernel>``        — print the hand-written baseline
* ``run <kernel>``             — synthesize, then execute on a backend
  (``--batch N`` executes N inputs in one lockstep encrypted batch)
* ``serve``                    — long-lived multi-tenant compile-and-run
  service (JSON over TCP; coalesces concurrent same-program requests
  into lockstep batches, see :mod:`repro.serve`)
* ``synth <kernel>``           — checkpointed synthesis: search state is
  persisted atomically every round; ``--resume`` restarts a killed run
  from its last boundary with a byte-identical result
* ``profile``                  — measure per-instruction latencies

``list``, ``compile``, and ``run`` accept ``--json`` for
machine-readable output (instruction counts, depths, synthesis times,
cache hit/miss).  All compilation goes through the
:class:`repro.api.Porcupine` session; ``--cache-dir`` persists compiled
kernels across invocations; ``--dump-ir`` prints the Quill IR after
each program-changing optimizer pass and ``--timings`` includes the optimizer's
op-count deltas and the displacement check.  ``--no-prune`` /
``--prune-rules=a,b,...`` thread pruning-rule ablations to the search
engine (programs are identical either way; only the searched-node count
changes).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np


def _session(args):
    from repro.api import Porcupine

    defaults = {}
    if getattr(args, "opt_timeout", None) is not None:
        defaults["optimize_timeout"] = args.opt_timeout
    if getattr(args, "no_optimize", False):
        defaults["optimize"] = False
    if getattr(args, "no_prune", False) or getattr(args, "prune_rules", None):
        from repro.solver import SearchOptions

        if getattr(args, "no_prune", False):
            defaults["search_options"] = SearchOptions.no_prune()
        else:
            defaults["search_options"] = SearchOptions.from_rules(
                args.prune_rules
            )
    return Porcupine(
        cache_dir=getattr(args, "cache_dir", None),
        seed=getattr(args, "seed", None),
        synthesis_defaults=defaults,
        workers=getattr(args, "workers", None),
        dump_ir=getattr(args, "dump_ir", False),
    )


def _cmd_list(args) -> int:
    session = _session(args)
    if args.json:
        payload = []
        for definition in session.registry:
            baseline = definition.baseline() if definition.baseline else None
            payload.append(
                {
                    "kernel": definition.name,
                    "multi_step": definition.is_composed,
                    "baseline_instructions": (
                        baseline.instruction_count() if baseline else None
                    ),
                    "description": definition.describe(),
                }
            )
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{'kernel':24s} {'baseline':>9s}  description")
    for definition in session.registry:
        baseline = definition.baseline()
        print(
            f"{definition.name:24s} {baseline.instruction_count():6d} in  "
            f"{definition.describe()}"
        )
    return 0


def _cmd_compile(args) -> int:
    session = _session(args)
    result = session.compile(args.kernel)
    if args.timings:
        print(result.timing_report(), file=sys.stderr)
    if args.json:
        payload = result.summary()
        payload["quill"] = str(result.program)
        print(json.dumps(payload, indent=2))
    else:
        stats = result.synthesis
        if stats is not None:
            print(
                f"# synthesized {result.program.instruction_count()} instructions "
                f"in {stats.total_time:.2f}s (initial {stats.initial_time:.2f}s, "
                f"{stats.examples_used} example(s), "
                f"{'optimal' if stats.proof_complete else 'best-effort'}"
                f"{', cached' if result.cache_hit else ''})",
                file=sys.stderr,
            )
        else:
            print(
                f"# composed {result.program.instruction_count()} instructions "
                f"from {', '.join(result.composed_from) or 'components'}"
                f"{' (cached)' if result.cache_hit else ''}",
                file=sys.stderr,
            )
        print(result.program)
    if args.seal:
        with open(args.seal, "w") as handle:
            handle.write(result.seal_code + "\n")
        print(f"# SEAL code written to {args.seal}", file=sys.stderr)
    elif not args.json:
        print()
        print(result.seal_code)
    return 0


def _cmd_baseline(args) -> int:
    from repro.quill.noise import multiplicative_depth

    session = _session(args)
    program = session.baseline(args.kernel)
    print(
        f"# {program.instruction_count()} instructions, depth "
        f"{program.critical_depth()}, multiplicative depth "
        f"{multiplicative_depth(program)}",
        file=sys.stderr,
    )
    print(program)
    return 0


def _print_executor_timings(session) -> None:
    """``run --timings``: the executor's NTT/arena counter table."""
    from repro.runtime.profiler import format_executor_stats

    print(format_executor_stats(session.executor_stats()), file=sys.stderr)


def _noise_guard(value):
    """Parse ``--noise-guard``: off/output/mul or an every-N-ops int."""
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        return value


def _cmd_run(args) -> int:
    session = _session(args)
    spec = session.spec(args.kernel)
    compiled = session.compile(args.kernel)
    if args.batch > 1:
        return _run_batch(args, session, compiled)
    rng = np.random.default_rng(args.seed)
    logical = {
        p.name: rng.integers(0, spec.backend_bound + 1, p.shape)
        for p in spec.layout.inputs
    }
    report = session.run(
        args.kernel, logical, backend=args.backend, seed=args.seed,
        domain_plan=args.domain_plan, exec_workers=args.exec_workers,
        guard=_noise_guard(args.noise_guard),
        noise_margin_bits=args.noise_margin_bits,
        escalate=not args.no_escalate,
    )
    if args.timings:
        _print_executor_timings(session)
    if args.json:
        payload = compiled.summary()
        payload["execution"] = {
            "backend": report.backend,
            "matches_reference": report.matches_reference,
            "wall_time": report.wall_time,
            "noise_budget": report.noise_budget,
            "output": np.asarray(report.logical_output).ravel().tolist(),
            "expected": np.asarray(report.expected_output).ravel().tolist(),
        }
        print(json.dumps(payload, indent=2))
        return 0 if report.matches_reference else 1
    for name, value in logical.items():
        print(f"input {name} = {np.asarray(value).ravel().tolist()}")
    print(f"output (decrypted) = {np.asarray(report.logical_output).ravel().tolist()}")
    print(f"reference          = {np.asarray(report.expected_output).ravel().tolist()}")
    print(f"matches reference: {report.matches_reference}")
    if report.backend == "he":
        from repro.api import Porcupine
        from repro.runtime.estimator import estimate_noise_budget

        he_kwargs = Porcupine.he_backend_kwargs(
            args.seed, domain_plan=args.domain_plan,
            exec_workers=args.exec_workers,
            guard=_noise_guard(args.noise_guard),
            noise_margin_bits=args.noise_margin_bits,
            escalate=not args.no_escalate,
        )
        engine = session.backend("he", **he_kwargs)
        executor = engine._executor_for(spec)
        predicted = estimate_noise_budget(compiled.program, executor.params)
        print(
            f"noise budget: {report.noise_budget} bits measured, "
            f">= {predicted:.0f} bits predicted"
        )
        escalations = engine.drain_escalations()
        ran_on = executor.params.name
        if escalations:
            ran_on = engine.last_escalation_params_name or ran_on
            print(
                f"noise escalations: {escalations} (re-ran on a larger "
                "parameter preset after a noise guard tripped)"
            )
        print(f"evaluation time: {report.wall_time:.2f}s on {ran_on}")
    else:
        print(f"evaluation time: {report.wall_time:.4f}s on {report.backend}")
    return 0 if report.matches_reference else 1


def _run_batch(args, session, compiled) -> int:
    """``run --batch N``: one lockstep batched execution of N inputs."""
    batch = session.run_many(
        args.kernel, args.batch, backend=args.backend, seed=args.seed,
        domain_plan=args.domain_plan, exec_workers=args.exec_workers,
        guard=_noise_guard(args.noise_guard),
        noise_margin_bits=args.noise_margin_bits,
        escalate=not args.no_escalate,
    )
    if args.timings:
        _print_executor_timings(session)
    if args.json:
        payload = compiled.summary()
        payload["batch"] = {
            "backend": batch.backend,
            "size": batch.batch_size,
            "all_match": batch.all_match,
            "total_seconds": batch.total_seconds,
            "seconds_per_run": batch.seconds_per_run,
            "runs_per_second": batch.runs_per_second,
            "noise_budgets": [r.noise_budget for r in batch.results],
        }
        print(json.dumps(payload, indent=2))
        return 0 if batch.all_match else 1
    print(
        f"batch of {batch.batch_size} on {batch.backend}: "
        f"{'all match' if batch.all_match else 'MISMATCH'}"
    )
    print(
        f"total {batch.total_seconds:.3f}s "
        f"({batch.seconds_per_run * 1e3:.1f} ms/run, "
        f"{batch.runs_per_second:.2f} runs/s)"
    )
    budgets = [r.noise_budget for r in batch.results if r.noise_budget is not None]
    if budgets:
        print(f"noise budgets: min {min(budgets)} / max {max(budgets)} bits")
    return 0 if batch.all_match else 1


def _cmd_synth(args) -> int:
    """``porcupine synth``: checkpointed synthesis with kill-safe resume.

    Runs the CEGIS loop directly (no compile cache, no optimizer
    pipeline) with an on-disk checkpoint: the search state is persisted
    atomically at every round boundary, and ``--resume`` restarts a
    killed run from its last boundary, producing a byte-identical
    program to an uninterrupted run.
    """
    from pathlib import Path

    from repro.core.cegis import SynthesisError, synthesize
    from repro.quill.printer import format_program

    session = _session(args)
    if args.kernel not in session.kernels():
        print(
            f"unknown kernel {args.kernel!r}; "
            f"available: {', '.join(session.kernels())}",
            file=sys.stderr,
        )
        return 2
    definition = session.definition(args.kernel)
    if definition.is_composed:
        print(
            f"{args.kernel!r} is a composed kernel; its components "
            "synthesize separately and would clobber one checkpoint "
            "file — synth each component instead "
            f"(e.g. {', '.join(session.registry.direct_names())})",
            file=sys.stderr,
        )
        return 2

    shard = None
    if args.shard:
        try:
            index_text, count_text = args.shard.split("/")
            shard = (int(index_text), int(count_text))
        except ValueError:
            print(f"--shard must look like I/N, got {args.shard!r}",
                  file=sys.stderr)
            return 2
        if not 0 <= shard[0] < shard[1]:
            print(f"--shard index must be in [0, {shard[1]}), got {shard[0]}",
                  file=sys.stderr)
            return 2
    if (shard is not None or args.merge_shards) and not args.lemmas:
        print("--shard and --merge-shards need --lemmas FILE (the store is "
              "how shards coordinate)", file=sys.stderr)
        return 2
    if shard is not None and args.merge_shards:
        print("--shard and --merge-shards are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.checkpoint is None and not (args.lemmas or args.merge_shards):
        print("synth needs --checkpoint FILE (or --lemmas FILE)",
              file=sys.stderr)
        return 2

    spec = session.spec(args.kernel)
    sketch = definition.sketch(spec)
    overrides = {}
    if args.checkpoint:
        overrides["checkpoint_path"] = args.checkpoint
    if args.lemmas:
        overrides["lemma_path"] = args.lemmas
    if shard is not None:
        overrides["shard"] = shard
        if args.workers is not None and args.workers > 1:
            print(f"# --shard {shard[0]}/{shard[1]} forces a serial engine; "
                  f"ignoring --workers {args.workers}", file=sys.stderr)
        overrides["workers"] = 1
    if args.seed_rewrites:
        if definition.baseline is None:
            print(f"# {args.kernel!r} has no baseline; --seed-rewrites is a "
                  "no-op", file=sys.stderr)
        else:
            from repro.quill.rewrite import seed_frontier

            overrides["seed_programs"] = tuple(
                seed_frontier(definition.baseline(), spec)
            )
    config = session.config_for(definition, **overrides)

    if args.merge_shards:
        from repro.core.cegis import _lemma_context
        from repro.core.lemmas import marker_key
        from repro.solver import SearchOptions

        options = config.search_options or SearchOptions()
        store, family, seed_chain = _lemma_context(
            spec, sketch, config, options
        )
        status = store.shard_status(marker_key(family, seed_chain))
        if status is None:
            print(
                f"--merge-shards found no shard records for {args.kernel!r} "
                f"in {args.lemmas}; run the `--shard i/N` processes first",
                file=sys.stderr,
            )
            return 2
        done = sorted(int(i) for i in status.get("completed", {}))
        count = int(status.get("count", 0))
        if len(done) < count:
            missing = sorted(set(range(count)) - set(done))
            print(
                f"# warning: only shards {done} of {count} recorded "
                f"(missing {missing}); the merge replay re-searches their "
                "rank ranges itself",
                file=sys.stderr,
            )
        else:
            print(f"# merging {count} completed shard(s)", file=sys.stderr)

    if args.checkpoint:
        checkpoint = Path(args.checkpoint)
        if checkpoint.exists() and not args.resume:
            checkpoint.unlink()  # fresh run unless --resume asked to continue
            print(f"# discarded existing checkpoint {checkpoint}",
                  file=sys.stderr)
        elif args.resume and not checkpoint.exists():
            print(f"# no checkpoint at {checkpoint}; starting fresh",
                  file=sys.stderr)
        elif args.resume:
            print(f"# resuming from {checkpoint}", file=sys.stderr)

    try:
        result = synthesize(spec, sketch, config)
    except SynthesisError as error:
        if shard is not None:
            # a shard whose rank ranges exclude the solution is a normal,
            # successful outcome of the split — not a failure
            print(f"# {error}", file=sys.stderr)
            print(
                f"# shard {shard[0]}/{shard[1]} done; run "
                f"`porcupine synth {args.kernel} --lemmas {args.lemmas} "
                "--merge-shards` once every shard has finished",
                file=sys.stderr,
            )
            return 0
        raise
    text = format_program(result.program)
    if args.timings and result.search_stats is not None:
        from repro.runtime.profiler import format_search_stats

        print(format_search_stats(result.search_stats.summary()),
              file=sys.stderr)
    if args.json:
        print(json.dumps({
            "kernel": args.kernel,
            "components": result.components,
            "examples_used": result.examples_used,
            "initial_cost": result.initial_cost,
            "final_cost": result.final_cost,
            "proof_complete": result.proof_complete,
            "checkpoint": args.checkpoint,
            "lemmas": args.lemmas,
            "search_stats": (
                result.search_stats.summary()
                if result.search_stats is not None
                else None
            ),
            "quill": text,
        }, indent=2))
    else:
        where = (
            f"checkpoint at {args.checkpoint}"
            if args.checkpoint
            else f"lemmas at {args.lemmas}"
        )
        print(
            f"# {result.program.instruction_count()} instructions, "
            f"cost {result.final_cost:.1f} "
            f"({'optimal' if result.proof_complete else 'best-effort'}); "
            f"{where}",
            file=sys.stderr,
        )
        print(text)
    return 0


def _cmd_serve(args) -> int:
    """``porcupine serve``: run the batch-scheduling service until stopped."""
    import asyncio

    from repro.serve import PorcupineServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        params=args.params,
        seed=args.seed,
        max_batch=args.max_batch,
        linger_ms=args.linger_ms,
        domain_plan=args.domain_plan,
        exec_workers=args.exec_workers,
        compile_workers=args.compile_workers,
        cache_dir=args.cache_dir,
        precompile=tuple(
            name for name in (args.precompile or "").split(",") if name
        ),
        default_timeout_ms=args.default_timeout_ms,
        max_backlog=args.max_backlog if args.max_backlog > 0 else None,
        pool_max_restarts=args.pool_max_restarts,
        noise_guard=_noise_guard(args.noise_guard),
        noise_margin_bits=args.noise_margin_bits,
        noise_escalation=not args.no_noise_escalation,
        shadow_verify=args.shadow_verify,
    )
    server = PorcupineServer(config=config)

    async def _serve() -> None:
        host, port = await server.start()
        # machine-parseable boot line: smoke scripts read the port from it
        print(f"serving on {host}:{port}", flush=True)
        if config.precompile:
            print(
                f"precompiled: {', '.join(sorted(server._hot))}",
                file=sys.stderr,
                flush=True,
            )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    if args.timings:
        print(server.metrics.format_table(), file=sys.stderr)
        if config.backend == "he":
            from repro.runtime.profiler import format_executor_stats

            print(
                format_executor_stats(server.session.executor_stats()),
                file=sys.stderr,
            )
    print("shutdown complete", flush=True)
    return 0


def _cmd_profile(args) -> int:
    from repro.he.params import large_params, small_params, toy_params
    from repro.runtime.profiler import format_latency_table, profile_instructions

    presets = {
        "toy": toy_params,
        "small": small_params,
        "large": large_params,
    }
    params = presets[args.preset]()
    model = profile_instructions(params, repeats=args.repeats)
    print(format_latency_table(model))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="porcupine",
        description="Porcupine reproduction: synthesizing HE kernels",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list the kernel suite")
    list_cmd.add_argument("--json", action="store_true",
                          help="machine-readable output")

    for verb, helptext in (
        ("compile", "synthesize a kernel and emit Quill + SEAL code"),
        ("run", "synthesize a kernel and execute it on a backend"),
    ):
        cmd = sub.add_parser(verb, help=helptext)
        cmd.add_argument("kernel")
        cmd.add_argument("--opt-timeout", type=float, default=30.0,
                         help="cost-minimization budget in seconds")
        cmd.add_argument("--no-optimize", action="store_true",
                         help="stop after the initial solution")
        cmd.add_argument("--seed", type=int, default=0,
                         help="synthesis/example seed (reproducible runs)")
        cmd.add_argument("--workers", type=int, default=None, metavar="N",
                         help="parallel search processes (results are "
                              "bit-identical to --workers 1)")
        cmd.add_argument("--no-prune", action="store_true",
                         help="disable every search pruning rule (the "
                              "ablation baseline; identical programs, "
                              "much larger search)")
        cmd.add_argument("--prune-rules", metavar="RULES",
                         help="enable exactly this comma-separated subset "
                              "of pruning rules for ablation runs; "
                              "available: dedup, commutative, adjacent, "
                              "dead_value, rotation_collapse, zero_elide, "
                              "cost_bound")
        cmd.add_argument("--json", action="store_true",
                         help="machine-readable output")
        cmd.add_argument("--cache-dir", metavar="DIR",
                         help="persist compiled kernels here across runs")
        cmd.add_argument("--dump-ir", action="store_true",
                         help="print the Quill IR after each optimizer "
                              "pass that changes the program (stderr)")
        if verb == "compile":
            cmd.add_argument("--seal", metavar="FILE",
                             help="write SEAL C++ here instead of stdout")
            cmd.add_argument("--timings", action="store_true",
                             help="print the per-pass timing report "
                                  "(includes the optimizer's op-count "
                                  "deltas and displacement check)")
        else:
            cmd.add_argument("--backend", choices=("he", "interpreter"),
                             default="he",
                             help="execution backend (default: he)")
            cmd.add_argument("--batch", type=int, default=1, metavar="N",
                             help="execute N random inputs as one lockstep "
                                  "encrypted batch (amortizes keys, "
                                  "encoding, and program setup)")
            cmd.add_argument("--domain-plan", action="store_true",
                             help="enable the tape-level NTT-domain "
                                  "planner (bit-identical outputs; fewer "
                                  "NTT transforms)")
            cmd.add_argument("--exec-workers", type=int, default=1,
                             metavar="W",
                             help="shard the lockstep batch axis across W "
                                  "threads with per-worker scratch arenas "
                                  "(bit-identical to W=1; HE backend only)")
            cmd.add_argument("--timings", action="store_true",
                             help="print the executor's NTT/arena counter "
                                  "table (NTT rows performed and elided, "
                                  "arena high-water bytes, guard checks/"
                                  "trips, min output budget) to stderr")
            cmd.add_argument("--noise-guard", metavar="MODE", default=None,
                             help="runtime noise guards: 'output' (check "
                                  "the decrypted output budget), 'mul' "
                                  "(after every ciphertext multiply), or "
                                  "an integer N (every N tape ops); "
                                  "default: off")
            cmd.add_argument("--noise-margin-bits", type=float, default=None,
                             metavar="BITS",
                             help="predictive admission: refuse to run "
                                  "programs whose estimated output noise "
                                  "budget is below BITS (escalates to a "
                                  "larger preset unless --no-escalate)")
            cmd.add_argument("--no-escalate", action="store_true",
                             help="fail with NoiseBudgetExhausted instead "
                                  "of transparently re-running on the "
                                  "next-larger parameter preset")

    baseline = sub.add_parser("baseline", help="print a hand-written baseline")
    baseline.add_argument("kernel")

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant compile-and-run service "
             "(JSON-lines over TCP, request coalescing)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7707,
                       help="TCP port (0 picks a free one; the bound port "
                            "is printed as 'serving on HOST:PORT')")
    serve.add_argument("--backend", choices=("he", "interpreter"),
                       default="he",
                       help="default execution backend (default: he)")
    serve.add_argument("--params", choices=("toy", "small", "large"),
                       default=None,
                       help="override the HE parameter preset (the spec's "
                            "own preset otherwise)")
    serve.add_argument("--seed", type=int, default=0,
                       help="execution-backend key seed")
    serve.add_argument("--max-batch", type=int, default=8, metavar="N",
                       help="max coalesced requests per lockstep batch")
    serve.add_argument("--domain-plan", action="store_true",
                       help="enable the HE executor's tape-level NTT-domain "
                            "planner (bit-identical responses)")
    serve.add_argument("--exec-workers", type=int, default=1, metavar="W",
                       help="shard each coalesced lockstep batch across W "
                            "executor threads (bit-identical to W=1)")
    serve.add_argument("--linger-ms", type=float, default=2.0, metavar="MS",
                       help="max wait for co-batchable requests")
    serve.add_argument("--compile-workers", type=int, default=0, metavar="N",
                       help="compile worker processes sharing the on-disk "
                            "cache (0: compile inline; requires --cache-dir "
                            "when > 0)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="shared on-disk compile cache directory")
    serve.add_argument("--precompile", metavar="K1,K2|all",
                       help="registry kernels to compile (and pin) at boot")
    serve.add_argument("--timings", action="store_true",
                       help="print the scheduler stats table on shutdown "
                            "(batches, occupancy, coalesce ratio, cache "
                            "hit rate, p50/p99)")
    serve.add_argument("--default-timeout-ms", type=float, default=None,
                       metavar="MS",
                       help="deadline for requests that carry no "
                            "timeout_ms of their own (default: unbounded)")
    serve.add_argument("--max-backlog", type=int, default=1024, metavar="N",
                       help="reject new requests (typed OVERLOADED) "
                            "beyond this many pending; 0 disables "
                            "admission control")
    serve.add_argument("--pool-max-restarts", type=int, default=3,
                       metavar="N",
                       help="compile-pool respawns after worker crashes "
                            "before degrading to in-process compiles")
    serve.add_argument("--noise-guard", metavar="MODE", default="output",
                       help="HE runtime noise guards: 'off', 'output' "
                            "(default; free — output budgets are measured "
                            "anyway), 'mul', or an integer N (every N "
                            "tape ops)")
    serve.add_argument("--noise-margin-bits", type=float, default=None,
                       metavar="BITS",
                       help="predictive admission margin in bits for "
                            "served HE kernels")
    serve.add_argument("--no-noise-escalation", action="store_true",
                       help="surface noise-budget exhaustion as a typed "
                            "retryable NOISE_BUDGET error instead of "
                            "re-running on the next-larger preset")
    serve.add_argument("--shadow-verify", type=float, default=0.0,
                       metavar="FRACTION",
                       help="cross-check this fraction of HE batches "
                            "against the interpreter backend; mismatches "
                            "are withheld as NOISE_BUDGET errors "
                            "(deterministic sampling; 0 disables)")

    synth = sub.add_parser(
        "synth",
        help="checkpointed synthesis: kill-safe, --resume restores the "
             "search and yields a byte-identical program",
    )
    synth.add_argument("kernel")
    synth.add_argument("--checkpoint", metavar="FILE",
                       help="atomic on-disk checkpoint file (written at "
                            "every search round boundary)")
    synth.add_argument("--resume", action="store_true",
                       help="resume from the checkpoint instead of "
                            "starting fresh")
    synth.add_argument("--lemmas", metavar="FILE",
                       help="persistent lemma store: records proven-"
                            "matchless rank ranges, final-value sets, and "
                            "phase-2 outcomes; a later run of this or a "
                            "sibling kernel consults them to skip search "
                            "(programs are byte-identical either way)")
    synth.add_argument("--shard", metavar="I/N",
                       help="run only shard I of N disjoint root-rank "
                            "ranges (serial engine; needs --lemmas so "
                            "sibling shards and --merge-shards can "
                            "coordinate through the store)")
    synth.add_argument("--merge-shards", action="store_true",
                       help="assemble the result of a sharded search from "
                            "the lemma store (byte-identical to an "
                            "unsharded serial run; needs --lemmas)")
    synth.add_argument("--seed-rewrites", action="store_true",
                       help="seed phase 2's cost bound with verified Quill "
                            "rewrite variants of the hand-written baseline "
                            "(byte-identical programs; tighter pruning "
                            "from the first node)")
    synth.add_argument("--timings", action="store_true",
                       help="print the search-stats table (nodes, lemma "
                            "hits/misses/skips, seeded bounds) to stderr")
    synth.add_argument("--seed", type=int, default=0,
                       help="synthesis/example seed (reproducible runs)")
    synth.add_argument("--workers", type=int, default=None, metavar="N",
                       help="parallel search processes (results are "
                            "bit-identical to --workers 1)")
    synth.add_argument("--opt-timeout", type=float, default=30.0,
                       help="cost-minimization budget in seconds")
    synth.add_argument("--no-optimize", action="store_true",
                       help="stop after the initial solution")
    synth.add_argument("--json", action="store_true",
                       help="machine-readable output")

    profile = sub.add_parser("profile", help="profile instruction latencies")
    profile.add_argument("--preset", choices=("toy", "small", "large"),
                         default="toy")
    profile.add_argument("--repeats", type=int, default=3)

    args = parser.parse_args(argv)
    if getattr(args, "no_prune", False) and getattr(args, "prune_rules", None):
        parser.error("--no-prune and --prune-rules are mutually exclusive")
    if getattr(args, "prune_rules", None):
        from repro.solver import SearchOptions

        try:
            SearchOptions.from_rules(args.prune_rules)
        except ValueError as error:
            parser.error(str(error))
    handlers = {
        "list": _cmd_list,
        "compile": _cmd_compile,
        "baseline": _cmd_baseline,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "synth": _cmd_synth,
        "profile": _cmd_profile,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
