"""The Porcupine session: pipeline, cache hits, suites, composition."""

import json

import pytest

from repro.api import Pass, Porcupine
from repro.core.cegis import SynthesisConfig

FAST = {"optimize_timeout": 2.0}


@pytest.fixture
def session():
    return Porcupine(synthesis_defaults=FAST)


def test_compile_runs_the_six_default_passes(session):
    compiled = session.compile("box_blur")
    assert [t.name for t in compiled.pass_timings] == [
        "synthesize",
        "optimize",
        "compose",
        "rewrite",
        "lower",
        "codegen",
    ]
    assert compiled.program.instruction_count() == 4
    assert "ev.rotate_rows" in compiled.seal_code


def test_second_compile_is_a_cache_hit_and_skips_synthesis(session):
    ran = []
    session.pipeline.on_pass_start(lambda name, ctx: ran.append(name))

    first = session.compile("box_blur")
    assert not first.cache_hit
    assert ran.count("synthesize") == 1

    second = session.compile("box_blur")
    assert second.cache_hit
    # the pipeline (and with it the synthesis pass) did not run again
    assert ran.count("synthesize") == 1
    assert str(second.program) == str(first.program)


def test_force_recompiles_despite_cache(session):
    session.compile("box_blur")
    forced = session.compile("box_blur", force=True)
    assert not forced.cache_hit


def test_explicit_config_overrides_session_defaults(session):
    config = SynthesisConfig(max_components=3, optimize=False)
    compiled = session.compile("box_blur", config=config)
    assert compiled.synthesis.final_cost == compiled.synthesis.initial_cost


def test_compile_suite_preserves_order_and_caches(session):
    names = ["dot_product", "hamming", "box_blur"]
    suite = session.compile_suite(names, max_workers=3)
    assert list(suite) == names
    assert all(not c.cache_hit for c in suite.values())
    again = session.compile_suite(names)
    assert all(c.cache_hit for c in again.values())


def test_composed_kernel_compiles_components_once(session):
    compiled = session.compile("sobel")
    assert compiled.is_composed
    assert set(compiled.components) == {"gx", "gy"}
    # components landed in the shared cache
    assert session.compile("gx").cache_hit
    # and the composition itself is cached
    assert session.compile("sobel").cache_hit


def test_composed_cache_invalidates_when_component_config_changes(session):
    key_before = session.compile("sobel").cache_key
    session.registry.override(
        "gx", synth_settings={"max_components": 5}
    )
    key_after = session._cache_key(
        session.definition("sobel"),
        session.spec("sobel"),
        None,
        session.config_for("sobel"),
    )
    assert key_after != key_before


def test_pipeline_is_editable(session):
    seen = {}

    def audit(ctx):
        seen["program"] = ctx.program

    session.pipeline.insert_after("optimize", Pass("audit", audit))
    compiled = session.compile("dot_product")
    assert "audit" in [t.name for t in compiled.pass_timings]
    assert seen["program"] is not None

    session.pipeline.remove("audit")
    assert "audit" not in session.pipeline.pass_names
    with pytest.raises(KeyError):
        session.pipeline.remove("audit")


def test_pass_end_hook_sees_timings(session):
    observed = []
    session.pipeline.on_pass_end(
        lambda name, ctx, seconds: observed.append((name, seconds))
    )
    session.compile("hamming")
    names = [name for name, _ in observed]
    assert names == [
        "synthesize",
        "optimize",
        "compose",
        "rewrite",
        "lower",
        "codegen",
    ]
    assert all(seconds >= 0 for _, seconds in observed)


def test_summary_is_json_serializable(session):
    compiled = session.compile("dot_product")
    payload = json.loads(json.dumps(compiled.summary()))
    assert payload["kernel"] == "dot_product"
    assert payload["instructions"] == compiled.program.instruction_count()
    assert payload["cache"] == {"hit": False, "key": compiled.cache_key}
    assert payload["synthesis"]["proof_complete"] in (True, False)


def test_run_defaults_to_interpreter_backend(session):
    report = session.run("hamming", seed=3)
    assert report.backend == "interpreter"
    assert report.matches_reference


def test_baseline_lookup(session):
    assert session.baseline("gx").instruction_count() == 12
    session.register(
        "no_baseline",
        session.spec("hamming"),
        sketch=lambda spec: None,
    )
    with pytest.raises(KeyError, match="baseline"):
        session.baseline("no_baseline")


def test_sessions_do_not_share_state():
    a = Porcupine(synthesis_defaults=FAST)
    b = Porcupine(synthesis_defaults=FAST)
    a.compile("box_blur")
    assert not b.compile("box_blur").cache_hit


def test_composed_kernels_reject_per_call_overrides(session):
    with pytest.raises(ValueError, match="composed"):
        session.compile("sobel", seed=7)
    with pytest.raises(ValueError, match="composed"):
        session.compile("harris", config=SynthesisConfig())


def test_register_definition_with_override(session):
    definition = session.definition("box_blur")
    replaced = session.register(definition, override=True)
    assert replaced is definition
    with pytest.raises(ValueError, match="already registered"):
        session.register(definition)


def test_he_backends_with_different_seeds_do_not_alias(session):
    a = session.backend("he", seed=3)
    b = session.backend("he", seed=4)
    assert a is not b
    assert session.backend("he", seed=3) is a


def test_cache_hits_share_one_parsed_program(session):
    session.compile("box_blur")
    first = session.compile("box_blur")
    second = session.compile("box_blur")
    assert first.cache_hit and second.cache_hit
    # the entry memoizes the parse; repeated hits reuse the same Program
    assert first.program is second.program
