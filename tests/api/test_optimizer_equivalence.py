"""Optimizer safety across the whole kernel suite.

Two guarantees, for every registry kernel:

* the pass-optimized program is *exactly* (symbolically) spec-equivalent
  to the unoptimized one, and
* on the real HE backend the decrypted outputs are bit-identical with
  the optimizer on versus off.

Programs come from the hand-written baselines (direct kernels) and
baseline-built compositions (sobel, harris), so the suite exercises the
optimizer on every kernel without paying for synthesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Porcupine
from repro.api.registry import KernelRegistry
from repro.quill.interpreter import evaluate
from repro.quill.rewrite import default_pass_manager
from repro.runtime.executor import HEExecutor
from repro.spec import get_spec

REGISTRY = KernelRegistry.builtin()
ALL_KERNELS = REGISTRY.names()


def unoptimized_program(name: str):
    """The shared no-synthesis reference (see KernelRegistry)."""
    return REGISTRY.baseline_program(name)


@pytest.fixture(scope="module")
def optimized():
    """name -> (unoptimized, optimized, spec) for the whole suite."""
    out = {}
    for name in ALL_KERNELS:
        spec = REGISTRY.spec(name)
        program = unoptimized_program(name)
        result = default_pass_manager().run(program, spec=spec)
        out[name] = (program, result.program, spec)
    return out


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_optimized_program_is_spec_equivalent(optimized, name):
    _, program, spec = optimized[name]
    verdict = spec.verify_program(program)
    assert verdict.equivalent, verdict.counterexample


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_optimizer_never_increases_work(optimized, name):
    before, after, _ = optimized[name]
    assert after.executable_op_count() <= before.executable_op_count()
    assert after.rotation_count() <= before.rotation_count()
    assert after.relin_count() <= before.relin_count()
    assert after.galois_key_count() <= before.galois_key_count()


_PAIR_CACHE: dict = {}


def _pair(name: str):
    if name not in _PAIR_CACHE:
        before = unoptimized_program(name)
        after = default_pass_manager().run(before, spec=None).program
        _PAIR_CACHE[name] = (before, after)
    return _PAIR_CACHE[name]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_interpreter_agrees_on_random_inputs(seed):
    """Optimized and unoptimized programs agree on every input drawn."""
    for name in ALL_KERNELS:
        spec = get_spec(name)
        before, after = _pair(name)
        rng = np.random.default_rng(seed)
        logical = spec.random_logical_inputs(rng)
        ct_env, pt_env = spec.packed_env(logical)
        assert np.array_equal(
            evaluate(before, ct_env, pt_env),
            evaluate(after, ct_env, pt_env),
        ), name


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_he_decryption_bit_identical_optimizer_on_vs_off(optimized, name):
    """Same seed, same inputs: the two programs decrypt identically."""
    before, after, spec = optimized[name]
    rng = np.random.default_rng(11)
    logical = {
        p.name: rng.integers(0, spec.backend_bound + 1, p.shape, dtype=np.int64)
        for p in spec.layout.inputs
    }
    run_off = HEExecutor(spec, seed=5).run(before, logical)
    run_on = HEExecutor(spec, seed=5).run(after, logical)
    assert run_off.matches_reference and run_on.matches_reference
    assert np.array_equal(run_on.model_output, run_off.model_output)
    assert np.array_equal(run_on.logical_output, run_off.logical_output)
    # lazy relin never loses budget relative to eager execution
    assert run_on.output_noise_budget >= run_off.output_noise_budget


def test_session_optimizer_on_vs_off_bit_identical_composed():
    """The full session path: compiled sobel with and without rewrite."""
    on = Porcupine()
    off = Porcupine(synthesis_defaults={"optimize": False})
    result_on = on.run("sobel", backend="he", seed=2)
    result_off = off.run("sobel", backend="he", seed=2)
    assert result_on.matches_reference and result_off.matches_reference
    assert np.array_equal(
        result_on.logical_output, result_off.logical_output
    )
