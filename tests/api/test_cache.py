"""Compile cache: key stability, invalidation, and disk persistence."""

import json

from repro.api import CacheEntry, CompileCache, Porcupine, compile_key
from repro.core.cegis import SynthesisConfig
from repro.core.sketches import default_sketch_for, explicit_rotation_variant
from repro.spec import get_spec

FAST = {"optimize_timeout": 2.0}


def _key(config: SynthesisConfig) -> str:
    spec = get_spec("box_blur")
    return compile_key(spec, default_sketch_for(spec), config)


def test_key_is_deterministic():
    assert _key(SynthesisConfig(seed=7)) == _key(SynthesisConfig(seed=7))


def test_key_changes_with_config():
    base = _key(SynthesisConfig())
    assert _key(SynthesisConfig(seed=1)) != base
    assert _key(SynthesisConfig(max_components=7)) != base
    assert _key(SynthesisConfig(optimize=False)) != base


def test_key_changes_with_sketch():
    spec = get_spec("box_blur")
    sketch = default_sketch_for(spec)
    config = SynthesisConfig()
    assert compile_key(spec, sketch, config) != compile_key(
        spec, explicit_rotation_variant(sketch), config
    )


def test_key_changes_with_spec():
    config = SynthesisConfig()
    gx = get_spec("gx")
    gy = get_spec("gy")
    sketch = default_sketch_for(gx)
    assert compile_key(gx, sketch, config) != compile_key(gy, sketch, config)


def test_cache_miss_then_hit_in_memory():
    cache = CompileCache()
    assert cache.get("k") is None
    cache.put("k", CacheEntry(program_text="", seal_code=""))
    assert cache.get("k") is not None
    assert cache.misses == 1 and cache.hits == 1


def test_disk_persistence_across_cache_objects(tmp_path):
    session = Porcupine(cache_dir=tmp_path, synthesis_defaults=FAST)
    first = session.compile("box_blur")
    assert not first.cache_hit
    assert len(list(tmp_path.glob("*.json"))) == 1

    fresh = Porcupine(cache_dir=tmp_path, synthesis_defaults=FAST)
    second = fresh.compile("box_blur")
    assert second.cache_hit
    assert str(second.program) == str(first.program)
    assert second.seal_code == first.seal_code
    stats = second.synthesis
    assert stats is not None
    assert stats.components == first.synthesis.components
    assert stats.final_cost == first.synthesis.final_cost


def test_config_change_invalidates_disk_entry(tmp_path):
    session = Porcupine(cache_dir=tmp_path, synthesis_defaults=FAST)
    session.compile("box_blur")
    reseeded = session.compile("box_blur", seed=99)
    assert not reseeded.cache_hit
    assert len(list(tmp_path.glob("*.json"))) == 2


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    session = Porcupine(cache_dir=tmp_path, synthesis_defaults=FAST)
    compiled = session.compile("box_blur")
    path = tmp_path / f"{compiled.cache_key}.json"
    path.write_text("{not json")
    fresh = Porcupine(cache_dir=tmp_path, synthesis_defaults=FAST)
    recompiled = fresh.compile("box_blur")
    assert not recompiled.cache_hit
    # the recompile repaired the entry on disk
    assert json.loads(path.read_text())["program"]


def test_clear_empties_memory_and_disk(tmp_path):
    session = Porcupine(cache_dir=tmp_path, synthesis_defaults=FAST)
    session.compile("box_blur")
    session.cache.clear()
    assert len(session.cache) == 0
    assert list(tmp_path.glob("*.json")) == []
    assert not session.compile("box_blur").cache_hit


def test_same_seed_reproduces_identical_program(tmp_path):
    a = Porcupine(synthesis_defaults=FAST).compile("box_blur", seed=5)
    b = Porcupine(synthesis_defaults=FAST).compile("box_blur", seed=5)
    assert a.cache_key == b.cache_key
    assert str(a.program) == str(b.program)


# ---------------------------------------------------------------------------
# Atomic on-disk writes and multi-process sharing
# ---------------------------------------------------------------------------

def _entry(tag: str) -> CacheEntry:
    return CacheEntry(program_text=f"program {tag}", seal_code=f"seal {tag}")


def test_put_leaves_no_temp_files(tmp_path):
    cache = CompileCache(tmp_path)
    cache.put("k", _entry("a"))
    assert [p.name for p in tmp_path.iterdir()] == ["k.json"]
    # the landed file is complete, valid JSON
    assert json.loads((tmp_path / "k.json").read_text())["program"]


def test_concurrent_writers_readers_never_see_torn_entries(tmp_path):
    """N caches over one directory model the serving compile workers:
    every read must return a complete entry some writer put, never a
    partial or interleaved write."""
    import threading

    keys = [f"k{i}" for i in range(4)]
    valid = {f"program w{w} r{r}" for w in range(3) for r in range(20)}
    errors = []

    def writer(w):
        cache = CompileCache(tmp_path)
        for r in range(20):
            for key in keys:
                cache.put(key, _entry(f"w{w} r{r}"))

    def reader():
        cache = CompileCache(tmp_path)
        for _ in range(50):
            for key in keys:
                cache._memory.clear()  # force the disk path every time
                entry = cache.get(key)
                if entry is not None and entry.program_text not in valid:
                    errors.append(entry.program_text)

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(3)]
    threads += [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert sorted(p.name for p in tmp_path.iterdir()) == sorted(
        f"{k}.json" for k in keys
    )


def test_get_survives_concurrent_clear(tmp_path):
    """A reader racing clear() sees a miss, not an exception."""
    import threading

    stop = threading.Event()
    errors = []

    def churn():
        cache = CompileCache(tmp_path)
        while not stop.is_set():
            cache.put("k", _entry("x"))
            cache.clear()

    def read():
        cache = CompileCache(tmp_path)
        try:
            for _ in range(300):
                cache._memory.clear()
                cache.get("k")  # hit or miss, never a crash
        except Exception as error:  # noqa: BLE001 - the assertion target
            errors.append(error)
        finally:
            stop.set()

    writer = threading.Thread(target=churn)
    reader = threading.Thread(target=read)
    writer.start()
    reader.start()
    reader.join()
    writer.join()
    assert errors == []


def test_entry_vanishing_between_lookup_and_read_is_a_miss(
    tmp_path, monkeypatch
):
    """The deterministic version of the clear() race: the entry file
    disappears exactly between the lookup deciding to read it and the
    read itself — a miss (and a recompile), never a crash."""
    from pathlib import Path

    cache = CompileCache(tmp_path)
    cache.put("k", _entry("a"))
    cache._memory.clear()  # force the disk path
    real = Path.read_text

    def vanished(self, *args, **kwargs):
        if self.name == "k.json":
            raise FileNotFoundError(self)
        return real(self, *args, **kwargs)

    monkeypatch.setattr(Path, "read_text", vanished)
    misses_before = cache.misses
    assert cache.get("k") is None
    assert cache.misses == misses_before + 1
    monkeypatch.undo()
    # the file was never actually gone: the next lookup hits normally
    entry = cache.get("k")
    assert entry is not None and entry.program_text == "program a"


def test_hit_rate_property():
    cache = CompileCache()
    assert cache.hit_rate == 0.0
    cache.get("k")
    cache.put("k", _entry("a"))
    cache.get("k")
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5


# ---------------------------------------------------------------------------
# Integrity: content digests and quarantine of tampered entries
# ---------------------------------------------------------------------------

def test_entries_carry_a_content_digest(tmp_path):
    cache = CompileCache(tmp_path)
    cache.put("k", _entry("a"))
    payload = json.loads((tmp_path / "k.json").read_text())
    assert payload["digest"]
    # a fresh cache verifies and serves the intact entry silently
    assert CompileCache(tmp_path).get("k").program_text == "program a"


def test_bit_flipped_entry_is_quarantined_not_served(tmp_path):
    import pytest

    cache = CompileCache(tmp_path)
    cache.put("k", _entry("a"))
    file = tmp_path / "k.json"
    payload = json.loads(file.read_text())
    payload["program"] = "program TAMPERED"  # digest no longer matches
    file.write_text(json.dumps(payload))
    fresh = CompileCache(tmp_path)
    with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
        assert fresh.get("k") is None  # a miss, never the tampered text
    assert fresh.quarantined == 1
    assert not file.exists()
    assert (tmp_path / "k.json.corrupt").exists()  # kept for forensics


def test_legacy_digestless_entries_still_load(tmp_path):
    cache = CompileCache(tmp_path)
    cache.put("k", _entry("a"))
    file = tmp_path / "k.json"
    payload = json.loads(file.read_text())
    del payload["digest"]  # an entry written before digests existed
    file.write_text(json.dumps(payload))
    fresh = CompileCache(tmp_path)
    assert fresh.get("k").program_text == "program a"
    assert fresh.quarantined == 0


def test_clear_removes_quarantined_files(tmp_path):
    import pytest

    cache = CompileCache(tmp_path)
    cache.put("k", _entry("a"))
    file = tmp_path / "k.json"
    file.write_text(file.read_text().replace("program a", "program x"))
    with pytest.warns(RuntimeWarning):
        assert CompileCache(tmp_path).get("k") is None
    survivor = CompileCache(tmp_path)
    survivor.clear()
    assert list(tmp_path.iterdir()) == []


def test_tampered_entry_triggers_recompile_and_repair(tmp_path):
    """Satellite regression: a corrupted compile-cache entry is
    quarantined and the kernel recompiles to an identical program —
    never executes a tampered tape."""
    import pytest

    session = Porcupine(cache_dir=tmp_path, synthesis_defaults=FAST)
    compiled = session.compile("box_blur")
    path = tmp_path / f"{compiled.cache_key}.json"
    payload = json.loads(path.read_text())
    payload["seal_code"] = payload["seal_code"] + "/* flipped */"
    path.write_text(json.dumps(payload))
    fresh = Porcupine(cache_dir=tmp_path, synthesis_defaults=FAST)
    with pytest.warns(RuntimeWarning, match="quarantined"):
        recompiled = fresh.compile("box_blur")
    assert not recompiled.cache_hit
    assert str(recompiled.program) == str(compiled.program)
    assert fresh.cache.quarantined == 1
    # the recompile repaired the entry on disk: the next session hits
    third = Porcupine(cache_dir=tmp_path, synthesis_defaults=FAST)
    assert third.compile("box_blur").cache_hit
