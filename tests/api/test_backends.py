"""Execution backends: interpreter/HE parity and pluggability."""

import numpy as np
import pytest

from repro.api import (
    BackendResult,
    Porcupine,
    backend_names,
    get_backend,
    register_backend,
)
from repro.api.backends import _BACKEND_FACTORIES

FAST = {"optimize_timeout": 2.0}


@pytest.fixture(scope="module")
def session():
    return Porcupine(synthesis_defaults=FAST)


def _inputs(spec, seed):
    rng = np.random.default_rng(seed)
    return {
        p.name: rng.integers(0, spec.backend_bound + 1, p.shape, dtype=np.int64)
        for p in spec.layout.inputs
    }


@pytest.mark.parametrize("kernel", ["dot_product", "box_blur"])
def test_interpreter_and_he_agree(session, kernel):
    spec = session.spec(kernel)
    inputs = _inputs(spec, seed=11)
    fast = session.run(kernel, inputs, backend="interpreter")
    real = session.run(kernel, inputs, backend="he")
    assert fast.matches_reference
    assert real.matches_reference
    assert np.array_equal(fast.logical_output, real.logical_output)
    assert fast.noise_budget is None
    assert real.noise_budget is not None and real.noise_budget > 0


def test_backend_names_and_unknown():
    assert {"interpreter", "he"} <= set(backend_names())
    with pytest.raises(KeyError, match="unknown backend"):
        get_backend("gpu")


def test_he_backend_reuses_executors(session):
    spec = session.spec("dot_product")
    backend = session.backend("he")
    first = backend._executor_for(spec)
    assert backend._executor_for(spec) is first


def test_custom_backend_registration(session):
    class EchoBackend:
        name = "echo"

        def execute(self, program, spec, logical_env):
            expected = np.array(
                spec.reference_output(logical_env), dtype=np.int64
            ).reshape(spec.layout.output_shape)
            return BackendResult(
                backend=self.name,
                kernel=program.name,
                logical_output=expected,
                expected_output=expected,
                matches_reference=True,
                wall_time=0.0,
            )

    register_backend("echo", EchoBackend)
    try:
        report = session.run("dot_product", backend="echo")
        assert report.backend == "echo"
        assert report.matches_reference
    finally:
        _BACKEND_FACTORIES.pop("echo")
