"""The deprecated ``repro.core.compile_kernel`` shim still works."""

import pytest

from repro.core import CompileResult, compile_kernel
from repro.core.cegis import SynthesisConfig
from repro.core.compiler import config_for
from repro.spec import get_spec

FAST = SynthesisConfig(max_components=3, optimize_timeout=2.0)


def test_shim_warns_and_returns_legacy_result():
    with pytest.warns(DeprecationWarning, match="Porcupine"):
        result = compile_kernel(get_spec("box_blur"), config=FAST)
    assert isinstance(result, CompileResult)
    assert result.spec_name == "box_blur"
    assert result.program.instruction_count() == 4
    assert "ev.rotate_rows" in result.seal_code
    assert result.synthesis.components == 2


def test_shim_rejects_multistep_kernels_like_before():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(KeyError, match="sketch"):
            compile_kernel(get_spec("sobel"))


def test_config_for_still_applies_kernel_settings():
    config = config_for(get_spec("box_blur"), seed=5)
    assert config.max_components == 3
    assert config.seed == 5
