"""Kernel registry: builtin suite, runtime registration, overrides."""

import pytest

from repro.api import KernelDefinition, KernelRegistry, Porcupine
from repro.core.multistep import SOBEL_GRAPH
from repro.core.sketch import ComponentChoice, CtHole, Sketch
from repro.quill.ir import Opcode
from repro.spec import get_spec
from repro.spec.layout import vector_layout
from repro.spec.reference import Spec


def make_double_spec(n: int = 4) -> Spec:
    """Element-wise doubling: the smallest possible custom kernel."""
    base = vector_layout([("x", "ct", n)])
    layout = vector_layout(
        [("x", "ct", n)],
        output_slots=list(range(base.origin, base.origin + n)),
        output_shape=(n,),
    )
    return Spec(
        name="double",
        layout=layout,
        reference=lambda x: [2 * v for v in x],
        description="element-wise doubling",
    )


DOUBLE_SKETCH = Sketch(
    name="double",
    choices=(ComponentChoice(Opcode.ADD_CC, CtHole(), CtHole()),),
    rotations=(),
)


def test_builtin_registry_has_the_paper_suite():
    registry = KernelRegistry.builtin()
    assert len(registry) == 11
    assert set(registry.composed_names()) == {"sobel", "harris"}
    assert "box_blur" in registry
    assert registry.get("sobel").composition is SOBEL_GRAPH
    assert registry.get("gx").synth_settings == {"max_components": 4}
    assert registry.get("gx").baseline is not None


def test_builtin_registries_are_independent():
    a = KernelRegistry.builtin()
    b = KernelRegistry.builtin()
    a.unregister("harris")
    assert "harris" not in a
    assert "harris" in b


def test_register_and_compile_custom_kernel():
    session = Porcupine()
    session.register(
        "double",
        make_double_spec(),
        sketch=DOUBLE_SKETCH,
        synth_settings={"max_components": 2},
    )
    assert "double" in session.kernels()
    compiled = session.compile("double")
    assert compiled.program.instruction_count() == 1
    report = session.run("double", backend="interpreter")
    assert report.matches_reference


def test_reregistering_requires_override():
    registry = KernelRegistry.builtin()
    definition = KernelDefinition(
        name="box_blur",
        spec=make_double_spec,
        sketch=lambda spec: DOUBLE_SKETCH,
    )
    with pytest.raises(ValueError, match="already registered"):
        registry.register(definition)
    registry.register(definition, override=True)
    assert registry.get("box_blur").spec is make_double_spec


def test_override_replaces_single_fields():
    registry = KernelRegistry.builtin()
    registry.override("box_blur", synth_settings={"max_components": 2})
    assert registry.get("box_blur").synth_settings == {"max_components": 2}
    # untouched fields survive
    assert registry.get("box_blur").spec().name == "box_blur"


def test_definition_needs_sketch_or_composition():
    registry = KernelRegistry()
    with pytest.raises(ValueError, match="sketch"):
        registry.register(
            KernelDefinition(name="broken", spec=make_double_spec)
        )


def test_unknown_kernel_lists_registered_names():
    with pytest.raises(KeyError, match="box_blur"):
        KernelRegistry.builtin().get("fft")


def test_registry_spec_matches_get_spec():
    registry = KernelRegistry.builtin()
    assert registry.spec("hamming") is get_spec("hamming")
