"""Tests for exact multivariate polynomial arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic.polynomial import Poly, poly_vector


X, Y, Z = Poly.var("x"), Poly.var("y"), Poly.var("z")


def test_constants():
    assert Poly.const(0).is_zero()
    assert Poly.const(5).constant_value() == 5
    assert Poly.zero() == 0
    assert Poly.const(3) == 3


def test_variable_construction():
    assert X.variables() == {"x"}
    assert X.degree() == 1
    assert not X.is_constant()


def test_addition_and_subtraction():
    p = X + Y
    assert p.evaluate({"x": 2, "y": 3}) == 5
    assert (p - Y) == X
    assert (X - X).is_zero()
    assert (X + 0) == X


def test_int_promotion_both_sides():
    assert (1 + X) == (X + 1)
    assert (2 * X) == (X * 2)
    assert (1 - X) == -(X - 1)


def test_multiplication():
    p = (X + Y) * (X - Y)
    assert p == X * X - Y * Y
    assert p.degree() == 2
    assert p.evaluate({"x": 5, "y": 3}) == 16


def test_multiplication_cancels_terms():
    p = (X + 1) * (X - 1) - X * X
    assert p == Poly.const(-1)


def test_power():
    p = (X + 1) ** 3
    assert p == X**3 + 3 * X * X + 3 * X + 1
    assert (X**0) == 1
    with pytest.raises(ValueError):
        X ** (-1)


def test_horner_factorization_identity():
    """The algebraic identity Porcupine discovers for polynomial regression."""
    a, b, x = Poly.var("a"), Poly.var("b"), Poly.var("x")
    assert a * x * x + b * x == (a * x + b) * x


def test_separable_filter_identity():
    """Gx separability: [1,2,1]^T (x) [1,0,-1] applied as two 1D passes."""
    px = poly_vector("p", 9)  # 3x3 patch, row-major

    def patch(r, c):
        return px[3 * r + c]

    direct = Poly.zero()
    weights = [(1, 0, 1), (0, 0, 2), (1, 0, -1), (2, 2, -2)]
    direct = (
        patch(0, 0) + 2 * patch(1, 0) + patch(2, 0)
        - patch(0, 2) - 2 * patch(1, 2) - patch(2, 2)
    )
    smoothed = [
        patch(0, c) + 2 * patch(1, c) + patch(2, c) for c in range(3)
    ]
    separable = smoothed[0] - smoothed[2]
    assert direct == separable


def test_evaluate_requires_all_variables():
    with pytest.raises(KeyError):
        (X + Y).evaluate({"x": 1})


def test_substitute():
    p = X * X + Y
    assert p.substitute({"x": Poly.const(3)}) == 9 + Y
    assert p.substitute({"y": X}) == X * X + X
    assert p.substitute({}) == p


def test_hash_consistency():
    assert hash(X + Y) == hash(Y + X)
    assert len({X + Y, Y + X, X * Y}) == 2


def test_repr_is_readable():
    assert repr(Poly.zero()) == "0"
    assert "x" in repr(X + 1)


def test_poly_vector():
    vec = poly_vector("img", 3)
    assert [str(sorted(p.variables())[0]) for p in vec] == [
        "img[0]", "img[1]", "img[2]"
    ]


# ---------------------------------------------------------------------------
# Ring axioms (hypothesis)
# ---------------------------------------------------------------------------

def _small_polys():
    consts = st.integers(-4, 4).map(Poly.const)
    vars_ = st.sampled_from([X, Y, Z])
    atoms = st.one_of(consts, vars_)

    def extend(children):
        pairs = st.tuples(children, children)
        return st.one_of(
            pairs.map(lambda ab: ab[0] + ab[1]),
            pairs.map(lambda ab: ab[0] * ab[1]),
            pairs.map(lambda ab: ab[0] - ab[1]),
        )

    return st.recursive(atoms, extend, max_leaves=6)


POLYS = _small_polys()


@settings(max_examples=80, deadline=None)
@given(POLYS, POLYS, POLYS)
def test_ring_axioms(a, b, c):
    assert a + b == b + a
    assert a * b == b * a
    assert (a + b) + c == a + (b + c)
    assert (a * b) * c == a * (b * c)
    assert a * (b + c) == a * b + a * c
    assert a + Poly.zero() == a
    assert a * Poly.const(1) == a
    assert a * Poly.zero() == Poly.zero()


@settings(max_examples=60, deadline=None)
@given(POLYS, POLYS, st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5))
def test_evaluation_is_homomorphic(a, b, x, y, z):
    env = {"x": x, "y": y, "z": z}
    assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)
    assert (a * b).evaluate(env) == a.evaluate(env) * b.evaluate(env)
    assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)
