"""Tests for symbolic program evaluation and equivalence checking."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.quill.builder import ProgramBuilder
from repro.quill.interpreter import evaluate
from repro.symbolic.polynomial import Poly
from repro.symbolic.symvec import (
    evaluate_symbolic,
    shift_symbolic,
    symbolic_vector,
    zeros_vector,
)
from repro.symbolic.verify import (
    check_equivalence,
    find_counterexample,
)

from tests.strategies import quill_programs, random_env


def test_symbolic_vector_and_zeros():
    vec = symbolic_vector("x", 3)
    assert [p.variables() for p in vec] == [{"x[0]"}, {"x[1]"}, {"x[2]"}]
    assert all(p.is_zero() for p in zeros_vector(4))


def test_shift_symbolic_matches_concrete_semantics():
    vec = symbolic_vector("x", 4)
    left = shift_symbolic(vec, 1)
    assert left[0] == Poly.var("x[1]")
    assert left[3].is_zero()
    right = shift_symbolic(vec, -2)
    assert right[0].is_zero() and right[1].is_zero()
    assert right[2] == Poly.var("x[0]")


def _dot_product_program(n=4):
    b = ProgramBuilder(vector_size=n, name="dot")
    x = b.ct_input("x")
    w = b.pt_input("w")
    prod = b.mul(x, w)
    s1 = b.add(prod, b.rotate(prod, 2))
    s2 = b.add(s1, b.rotate(s1, 1))
    return b.build(s2)


def test_symbolic_dot_product_slot_zero():
    program = _dot_product_program()
    ct_env = {"x": symbolic_vector("x", 4)}
    pt_env = {"w": symbolic_vector("w", 4)}
    out = evaluate_symbolic(program, ct_env, pt_env)
    expected = Poly.zero()
    for i in range(4):
        expected = expected + Poly.var(f"x[{i}]") * Poly.var(f"w[{i}]")
    assert out[0] == expected


@settings(max_examples=40, deadline=None)
@given(quill_programs(max_instructions=5))
def test_symbolic_agrees_with_concrete(program):
    """Plugging concrete inputs into symbolic output == concrete evaluation."""
    rng = np.random.default_rng(1)
    ct_env, pt_env = random_env(program, rng, lo=-5, hi=6)
    sym_ct = {n: symbolic_vector(n, program.vector_size) for n in program.ct_inputs}
    sym_pt = {n: symbolic_vector(n, program.vector_size) for n in program.pt_inputs}
    sym_out = evaluate_symbolic(program, sym_ct, sym_pt)
    env = {}
    for name, vec in {**ct_env, **pt_env}.items():
        for i, v in enumerate(vec):
            env[f"{name}[{i}]"] = int(v)
    concrete = evaluate(program, ct_env, pt_env)
    plugged = [p.evaluate(env) for p in sym_out]
    assert plugged == [int(v) for v in concrete]


def test_check_equivalence_accepts_identical_structures():
    p1 = _dot_product_program()
    # same computation, different reduction order
    b = ProgramBuilder(vector_size=4, name="dot2")
    x = b.ct_input("x")
    w = b.pt_input("w")
    prod = b.mul(x, w)
    s1 = b.add(b.rotate(prod, 1), prod)
    s2 = b.add(b.rotate(s1, 2), s1)
    p2 = b.build(s2)
    env_ct = {"x": symbolic_vector("x", 4)}
    env_pt = {"w": symbolic_vector("w", 4)}
    out1 = evaluate_symbolic(p1, env_ct, env_pt)
    out2 = evaluate_symbolic(p2, env_ct, env_pt)
    # equivalent on the reduction slot, not on every slot
    assert check_equivalence(out1, out2, slots=[0]).equivalent


def test_check_equivalence_detects_difference_with_witness():
    vec_a = symbolic_vector("x", 3)
    vec_b = [vec_a[0], vec_a[1] + 1, vec_a[2]]
    result = check_equivalence(vec_a, vec_b)
    assert not result.equivalent
    assert result.failing_slot == 1
    assert result.counterexample == {}  # constant difference needs no witness


def test_counterexample_satisfies_difference():
    x, y = Poly.var("x"), Poly.var("y")
    difference = x * y - 2 * x
    witness = find_counterexample(difference)
    assert difference.evaluate(witness) != 0


def test_counterexample_rejects_zero_poly():
    with pytest.raises(ValueError):
        find_counterexample(Poly.zero())


def test_check_equivalence_respects_slot_mask():
    vec_a = symbolic_vector("x", 3)
    vec_b = [vec_a[0], Poly.zero(), Poly.zero()]
    assert check_equivalence(vec_a, vec_b, slots=[0]).equivalent
    assert not check_equivalence(vec_a, vec_b, slots=[0, 1]).equivalent


def test_length_mismatch_raises():
    with pytest.raises(ValueError):
        check_equivalence(symbolic_vector("x", 2), symbolic_vector("x", 3))


def test_reference_lifting_through_numpy():
    """Plaintext reference code runs unchanged on arrays of Poly."""
    def reference(img):
        # 2x2 box blur on a 3x3 image, valid region 2x2
        out = np.empty((2, 2), dtype=object)
        for r in range(2):
            for c in range(2):
                out[r, c] = (
                    img[r, c] + img[r, c + 1]
                    + img[r + 1, c] + img[r + 1, c + 1]
                )
        return out

    img = np.array(
        [[Poly.var(f"img[{3 * r + c}]") for c in range(3)] for r in range(3)],
        dtype=object,
    )
    out = reference(img)
    expected = (
        Poly.var("img[0]") + Poly.var("img[1]")
        + Poly.var("img[3]") + Poly.var("img[4]")
    )
    assert out[0, 0] == expected
