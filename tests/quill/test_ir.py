"""Tests for the Quill IR: opcodes, instructions, program metrics."""

import pytest

from repro.quill.ir import CtInput, Instruction, Opcode, Program, PtConst, Wire


def test_opcode_properties():
    assert Opcode.ROTATE.is_rotation
    assert not Opcode.ADD_CC.is_rotation
    assert Opcode.ADD_CC.is_arithmetic
    assert not Opcode.ROTATE.is_arithmetic
    assert Opcode.MUL_CP.has_plain_operand
    assert not Opcode.MUL_CC.has_plain_operand
    assert Opcode.MUL_CC.is_multiply and Opcode.MUL_CP.is_multiply
    assert not Opcode.ADD_CC.is_multiply
    assert Opcode.ADD_CC.is_commutative and Opcode.MUL_CC.is_commutative
    assert not Opcode.SUB_CC.is_commutative


def test_instruction_arity_enforced():
    a = CtInput("a")
    with pytest.raises(ValueError):
        Instruction(Opcode.ADD_CC, (a,))
    with pytest.raises(ValueError):
        Instruction(Opcode.ROTATE, (a, a), amount=1)
    with pytest.raises(ValueError):
        Instruction(Opcode.ADD_CC, (a, a), amount=3)


def _sample_program():
    # c1 = rot img 1 ; c2 = add img c1 ; c3 = rot c2 5 ; c4 = add c2 c3
    img = CtInput("img")
    return Program(
        vector_size=25,
        ct_inputs=["img"],
        instructions=[
            Instruction(Opcode.ROTATE, (img,), 1),
            Instruction(Opcode.ADD_CC, (img, Wire(0))),
            Instruction(Opcode.ROTATE, (Wire(1),), 5),
            Instruction(Opcode.ADD_CC, (Wire(1), Wire(2))),
        ],
        output=Wire(3),
        name="box-blur-synth",
    )


def test_instruction_counts():
    program = _sample_program()
    assert program.instruction_count() == 4
    assert program.rotation_count() == 2
    assert program.arithmetic_count() == 2
    assert program.multiply_cc_count() == 0


def test_critical_depth_counts_every_instruction():
    # rot -> add -> rot -> add is a 4-deep chain (Table 2's box blur = 4).
    assert _sample_program().critical_depth() == 4


def test_critical_depth_parallel_structure():
    # Balanced tree: three rotations feeding adds has depth 3 (Table 2
    # baseline box blur): rot ; rot ; rot ; add ; add ; add
    img = CtInput("img")
    program = Program(
        vector_size=25,
        ct_inputs=["img"],
        instructions=[
            Instruction(Opcode.ROTATE, (img,), 1),
            Instruction(Opcode.ROTATE, (img,), 5),
            Instruction(Opcode.ROTATE, (img,), 6),
            Instruction(Opcode.ADD_CC, (img, Wire(0))),
            Instruction(Opcode.ADD_CC, (Wire(1), Wire(2))),
            Instruction(Opcode.ADD_CC, (Wire(3), Wire(4))),
        ],
        output=Wire(5),
    )
    assert program.instruction_count() == 6
    assert program.critical_depth() == 3


def test_wires_used():
    program = _sample_program()
    assert program.wires_used() == {0, 1, 2, 3}
    # drop the output use of wire 3
    program.output = Wire(1)
    assert 3 not in program.wires_used()


def test_constant_vector_broadcasts_scalars():
    program = Program(
        vector_size=4,
        ct_inputs=["x"],
        constants={"two": 2, "mask": (1, 0, 0, 0)},
    )
    assert program.constant_vector("two") == (2, 2, 2, 2)
    assert program.constant_vector("mask") == (1, 0, 0, 0)


def test_ref_str_forms():
    assert str(CtInput("img")) == "img"
    assert str(Wire(0)) == "c1"
    assert str(PtConst("mask")) == "%mask"
