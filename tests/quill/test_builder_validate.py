"""Tests for the program builder and the static validator."""

import pytest

from repro.quill.builder import ProgramBuilder
from repro.quill.ir import CtInput, Instruction, Opcode, Program, PtConst, Wire
from repro.quill.validate import QuillValidationError, validate_program


# ---------------------------------------------------------------------------
# Builder behaviour
# ---------------------------------------------------------------------------

def test_builder_shares_identical_rotations():
    b = ProgramBuilder(vector_size=8)
    x = b.ct_input("x")
    r1 = b.rotate(x, 3)
    r2 = b.rotate(x, 3)
    assert r1 == r2
    out = b.add(r1, r2)
    program = b.build(out)
    assert program.rotation_count() == 1


def test_builder_rotate_zero_returns_operand():
    b = ProgramBuilder(vector_size=8)
    x = b.ct_input("x")
    assert b.rotate(x, 0) == x


def test_builder_distinct_rotations_not_shared():
    b = ProgramBuilder(vector_size=8)
    x = b.ct_input("x")
    out = b.add(b.rotate(x, 1), b.rotate(x, -1))
    assert b.build(out).rotation_count() == 2


def test_builder_rejects_out_of_range_rotation():
    b = ProgramBuilder(vector_size=4)
    x = b.ct_input("x")
    with pytest.raises(ValueError):
        b.rotate(x, 4)
    with pytest.raises(ValueError):
        b.rotate(x, -4)


def test_builder_infers_plain_opcodes():
    b = ProgramBuilder(vector_size=4)
    x = b.ct_input("x")
    k = b.constant("k", 3)
    w = b.pt_input("w")
    program = b.build(b.add(b.mul(x, k), b.mul(x, w)))
    opcodes = [i.opcode for i in program.instructions]
    assert opcodes == [Opcode.MUL_CP, Opcode.MUL_CP, Opcode.ADD_CC]


def test_builder_rejects_duplicate_names():
    b = ProgramBuilder(vector_size=4)
    b.ct_input("x")
    with pytest.raises(ValueError):
        b.ct_input("x")
    b.pt_input("w")
    with pytest.raises(ValueError):
        b.pt_input("w")
    b.constant("k", 1)
    with pytest.raises(ValueError):
        b.constant("k", 2)


def test_builder_rejects_wrong_length_constant():
    b = ProgramBuilder(vector_size=4)
    with pytest.raises(ValueError):
        b.constant("mask", [1, 0])


# ---------------------------------------------------------------------------
# Validator failure modes
# ---------------------------------------------------------------------------

def _valid_program():
    x = CtInput("x")
    return Program(
        vector_size=4,
        ct_inputs=["x"],
        instructions=[Instruction(Opcode.ADD_CC, (x, x))],
        output=Wire(0),
    )


def test_validator_accepts_valid_program():
    validate_program(_valid_program())


def test_validator_rejects_forward_wire_reference():
    program = _valid_program()
    program.instructions[0] = Instruction(
        Opcode.ADD_CC, (CtInput("x"), Wire(0))
    )
    with pytest.raises(QuillValidationError):
        validate_program(program)


def test_validator_rejects_undeclared_input():
    program = _valid_program()
    program.instructions[0] = Instruction(
        Opcode.ADD_CC, (CtInput("y"), CtInput("x"))
    )
    with pytest.raises(QuillValidationError):
        validate_program(program)


def test_validator_rejects_missing_output():
    program = _valid_program()
    program.output = None
    with pytest.raises(QuillValidationError):
        validate_program(program)


def test_validator_rejects_plain_output():
    program = _valid_program()
    program.constants["k"] = 1
    program.output = PtConst("k")
    with pytest.raises(QuillValidationError):
        validate_program(program)


def test_validator_rejects_zero_rotation():
    program = _valid_program()
    program.instructions.append(
        Instruction(Opcode.ROTATE, (CtInput("x"),), 0)
    )
    program.output = Wire(1)
    with pytest.raises(QuillValidationError):
        validate_program(program)


def test_validator_rejects_out_of_range_rotation():
    program = _valid_program()
    program.instructions.append(
        Instruction(Opcode.ROTATE, (CtInput("x"),), 4)
    )
    program.output = Wire(1)
    with pytest.raises(QuillValidationError):
        validate_program(program)


def test_validator_rejects_ct_operand_in_plain_slot():
    program = _valid_program()
    program.instructions[0] = Instruction(
        Opcode.MUL_CP, (CtInput("x"), CtInput("x"))
    )
    with pytest.raises(QuillValidationError):
        validate_program(program)


def test_validator_rejects_undeclared_constant():
    program = _valid_program()
    program.instructions[0] = Instruction(
        Opcode.MUL_CP, (CtInput("x"), PtConst("nope"))
    )
    with pytest.raises(QuillValidationError):
        validate_program(program)


def test_validator_rejects_wire_style_input_name():
    program = _valid_program()
    program.ct_inputs = ["c1"]
    program.instructions[0] = Instruction(
        Opcode.ADD_CC, (CtInput("c1"), CtInput("c1"))
    )
    with pytest.raises(QuillValidationError):
        validate_program(program)


def test_validator_rejects_wrong_length_constant():
    program = _valid_program()
    program.constants["mask"] = (1, 0)
    with pytest.raises(QuillValidationError):
        validate_program(program)
