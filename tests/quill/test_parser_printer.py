"""Round-trip tests for the Quill text format."""

import pytest
from hypothesis import given, settings

from repro.quill.builder import ProgramBuilder
from repro.quill.parser import QuillParseError, parse_program
from repro.quill.printer import format_listing, format_program

from tests.strategies import explicit_relin_programs, quill_programs


def _gx_like_program():
    b = ProgramBuilder(vector_size=25, name="gx")
    img = b.ct_input("img")
    c2 = b.add(b.rotate(img, -5), img)
    c4 = b.add(b.rotate(c2, 5), c2)
    out = b.sub(b.rotate(c4, 1), b.rotate(c4, -1))
    return b.build(out)


def test_format_contains_header_and_instructions():
    text = format_program(_gx_like_program())
    assert text.splitlines()[0] == 'quill kernel "gx"'
    assert "vec 25" in text
    assert "ct img" in text
    assert "c1 = rot img -5" in text
    assert text.splitlines()[-1] == "out c7"


def test_roundtrip_gx():
    program = _gx_like_program()
    assert parse_program(format_program(program)) == program


def test_roundtrip_with_constants_and_pt_inputs():
    b = ProgramBuilder(vector_size=4, name="mixed")
    x = b.ct_input("x")
    w = b.pt_input("w")
    two = b.constant("two", 2)
    mask = b.constant("mask", [1, 0, 0, 0])
    out = b.mul(b.add(b.mul(x, w), b.mul(x, two)), mask)
    program = b.build(out)
    text = format_program(program)
    assert "pt w" in text
    assert "const two = 2" in text
    assert "const mask = [1 0 0 0]" in text
    assert parse_program(text) == program


@settings(max_examples=60, deadline=None)
@given(quill_programs())
def test_roundtrip_property(program):
    assert parse_program(format_program(program)) == program


@settings(max_examples=60, deadline=None)
@given(quill_programs(multi_output=True))
def test_roundtrip_property_multi_output(program):
    parsed = parse_program(format_program(program))
    assert parsed == program
    assert parsed.outputs == program.outputs


@settings(max_examples=60, deadline=None)
@given(explicit_relin_programs())
def test_roundtrip_property_explicit_relin(program):
    text = format_program(program)
    if program.multiply_cc_count():
        assert "relin explicit" in text
    parsed = parse_program(text)
    assert parsed == program
    assert parsed.relin_mode == "explicit"


def test_roundtrip_relin_instruction():
    b = ProgramBuilder(vector_size=4, name="fold", relin_mode="explicit")
    x = b.ct_input("x")
    program = b.build(b.relin(b.mul(x, x)))
    text = format_program(program)
    assert "c2 = relin c1" in text
    assert parse_program(text) == program


def test_format_listing_is_instructions_only():
    listing = format_listing(_gx_like_program())
    assert "quill" not in listing
    assert listing.splitlines()[0].strip() == "c1 = rot img -5"


def test_parse_rejects_missing_header():
    with pytest.raises(QuillParseError):
        parse_program("vec 4\nct x\nc1 = add-ct-ct x x\nout c1")


def test_parse_rejects_bad_destination_order():
    text = 'quill kernel "k"\nvec 4\nct x\nc2 = add-ct-ct x x\nout c2'
    with pytest.raises(QuillParseError):
        parse_program(text)


def test_parse_rejects_missing_output():
    text = 'quill kernel "k"\nvec 4\nct x\nc1 = add-ct-ct x x'
    with pytest.raises(QuillParseError):
        parse_program(text)


def test_parse_rejects_unknown_opcode():
    text = 'quill kernel "k"\nvec 4\nct x\nc1 = xor-ct-ct x x\nout c1'
    with pytest.raises(QuillParseError):
        parse_program(text)


def test_parse_rejects_invalid_program_semantics():
    # forward wire reference is caught by validation after parsing
    text = 'quill kernel "k"\nvec 4\nct x\nc1 = add-ct-ct x c2\nc2 = add-ct-ct x x\nout c2'
    with pytest.raises(QuillParseError):
        parse_program(text)


def test_parse_ignores_comments_and_blank_lines():
    text = (
        '# a comment\nquill kernel "k"\n\nvec 4\nct x\n'
        "# body\nc1 = add-ct-ct x x\nout c1\n"
    )
    program = parse_program(text)
    assert program.instruction_count() == 1
