"""Tests asserting the paper's Table 1 noise semantics and the cost model."""

import pytest

from repro.quill.builder import ProgramBuilder
from repro.quill.cost import program_cost
from repro.quill.ir import Opcode
from repro.quill.latency import LatencyModel, default_latency_model
from repro.quill.noise import multiplicative_depth, wire_depths


def _builder_with_inputs():
    b = ProgramBuilder(vector_size=4)
    x = b.ct_input("x")
    y = b.ct_input("y")
    p = b.pt_input("p")
    return b, x, y, p


# ---------------------------------------------------------------------------
# Table 1: multiplicative-depth semantics of each instruction
# ---------------------------------------------------------------------------

def test_add_cc_takes_max_of_operand_noise():
    b, x, y, p = _builder_with_inputs()
    deep = b.mul(x, y)          # depth 1
    out = b.add(deep, y)        # max(1, 0) = 1
    assert multiplicative_depth(b.build(out)) == 1


def test_sub_cc_takes_max_of_operand_noise():
    b, x, y, p = _builder_with_inputs()
    deep = b.mul(x, y)
    out = b.sub(y, deep)
    assert multiplicative_depth(b.build(out)) == 1


def test_add_sub_plain_preserve_noise():
    b, x, y, p = _builder_with_inputs()
    deep = b.mul(x, y)
    out = b.sub(b.add(deep, p), p)
    assert multiplicative_depth(b.build(out)) == 1


def test_mul_cc_adds_one_to_max():
    b, x, y, p = _builder_with_inputs()
    d1 = b.mul(x, y)            # 1
    d2 = b.mul(d1, d1)          # 2
    out = b.mul(d2, x)          # max(2, 0) + 1 = 3
    assert multiplicative_depth(b.build(out)) == 3


def test_mul_plain_adds_one():
    b, x, y, p = _builder_with_inputs()
    out = b.mul(b.mul(x, p), p)
    assert multiplicative_depth(b.build(out)) == 2


def test_rotate_preserves_noise():
    b, x, y, p = _builder_with_inputs()
    deep = b.mul(x, y)
    out = b.add(b.rotate(deep, 1), deep)
    assert multiplicative_depth(b.build(out)) == 1


def test_fresh_ciphertext_has_zero_depth():
    b, x, y, p = _builder_with_inputs()
    out = b.add(x, b.rotate(y, 2))
    assert multiplicative_depth(b.build(out)) == 0


def test_wire_depths_trace():
    b, x, y, p = _builder_with_inputs()
    r = b.rotate(x, 1)      # wire 0, depth 0
    m = b.mul(r, y)         # wire 1, depth 1
    a = b.add(m, x)         # wire 2, depth 1
    m2 = b.mul(a, m)        # wire 3, depth 2
    program = b.build(m2)
    assert wire_depths(program) == [0, 1, 1, 2]


# ---------------------------------------------------------------------------
# Latency + cost
# ---------------------------------------------------------------------------

def test_default_latency_model_ordering():
    model = default_latency_model()
    t = model.table
    assert t[Opcode.MUL_CC] > t[Opcode.ROTATE] > t[Opcode.MUL_CP]
    assert t[Opcode.MUL_CP] > t[Opcode.ADD_CC]
    assert t[Opcode.ADD_CC] == t[Opcode.SUB_CC]


def test_unknown_profile_raises():
    with pytest.raises(KeyError):
        default_latency_model("n65536")


def test_program_latency_sums_instructions():
    model = LatencyModel({op: 1.0 for op in Opcode}, "unit")
    b, x, y, p = _builder_with_inputs()
    out = b.add(b.rotate(x, 1), b.mul(y, p))
    program = b.build(out)
    assert model.program_latency(program) == 3.0


def test_cost_is_latency_times_one_plus_depth():
    model = LatencyModel({op: 10.0 for op in Opcode}, "unit")
    b, x, y, p = _builder_with_inputs()
    out = b.mul(b.mul(x, y), y)  # 2 instructions, depth 2
    program = b.build(out)
    assert program_cost(program, model) == 20.0 * (1 + 2)


def test_depth_zero_cost_equals_latency():
    model = LatencyModel({op: 7.0 for op in Opcode}, "unit")
    b, x, y, p = _builder_with_inputs()
    program = b.build(b.add(x, y))
    assert program_cost(program, model) == 7.0


def test_scaled_model():
    model = default_latency_model().scaled(2.0)
    base = default_latency_model()
    assert model.table[Opcode.ADD_CC] == 2 * base.table[Opcode.ADD_CC]
