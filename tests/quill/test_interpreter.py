"""Tests for concrete Quill evaluation, including shift semantics."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.quill.builder import ProgramBuilder
from repro.quill.interpreter import evaluate, shift_vector

from tests.strategies import quill_programs, random_env


def test_shift_vector_left():
    v = np.array([1, 2, 3, 4, 5])
    assert list(shift_vector(v, 2)) == [3, 4, 5, 0, 0]


def test_shift_vector_right():
    v = np.array([1, 2, 3, 4, 5])
    assert list(shift_vector(v, -2)) == [0, 0, 1, 2, 3]


def test_shift_vector_identity_and_overflow():
    v = np.array([1, 2, 3])
    assert list(shift_vector(v, 0)) == [1, 2, 3]
    assert list(shift_vector(v, 3)) == [0, 0, 0]
    assert list(shift_vector(v, -7)) == [0, 0, 0]


def test_arith_ops():
    b = ProgramBuilder(vector_size=4)
    x = b.ct_input("x")
    y = b.ct_input("y")
    out = b.mul(b.add(x, y), b.sub(x, y))  # (x+y)(x-y) = x^2 - y^2
    program = b.build(out)
    xv = np.array([1, 2, 3, 4])
    yv = np.array([4, 3, 2, 1])
    result = evaluate(program, {"x": xv, "y": yv})
    assert np.array_equal(result, xv**2 - yv**2)


def test_plain_operand_ops():
    b = ProgramBuilder(vector_size=3)
    x = b.ct_input("x")
    w = b.pt_input("w")
    k = b.constant("k", 2)
    out = b.add(b.mul(x, w), b.mul(x, k))
    program = b.build(out)
    xv = np.array([1, 2, 3])
    wv = np.array([5, 6, 7])
    result = evaluate(program, {"x": xv}, {"w": wv})
    assert np.array_equal(result, xv * wv + 2 * xv)


def test_vector_constant():
    b = ProgramBuilder(vector_size=3)
    x = b.ct_input("x")
    mask = b.constant("mask", [1, 0, 0])
    program = b.build(b.mul(x, mask))
    assert list(evaluate(program, {"x": np.array([7, 8, 9])})) == [7, 0, 0]


def test_rotation_inside_program():
    b = ProgramBuilder(vector_size=4)
    x = b.ct_input("x")
    program = b.build(b.add(x, b.rotate(x, 1)))
    out = evaluate(program, {"x": np.array([1, 2, 3, 4])})
    assert list(out) == [3, 5, 7, 4]  # last slot: 4 + shifted-in zero


def test_all_wires_trace():
    b = ProgramBuilder(vector_size=2)
    x = b.ct_input("x")
    r = b.rotate(x, 1)
    s = b.add(x, r)
    program = b.build(s)
    wires = evaluate(program, {"x": np.array([5, 7])}, all_wires=True)
    assert len(wires) == 2
    assert list(wires[0]) == [7, 0]
    assert list(wires[1]) == [12, 7]


def test_wrong_input_shape_raises():
    b = ProgramBuilder(vector_size=4)
    x = b.ct_input("x")
    program = b.build(b.add(x, x))
    with pytest.raises(ValueError):
        evaluate(program, {"x": np.array([1, 2])})


def test_missing_input_raises():
    b = ProgramBuilder(vector_size=2)
    x = b.ct_input("x")
    program = b.build(b.add(x, x))
    with pytest.raises(KeyError):
        evaluate(program, {})


@settings(max_examples=60, deadline=None)
@given(quill_programs())
def test_random_programs_evaluate_against_reference(program):
    """The vectorized interpreter agrees with per-slot scalar evaluation."""
    rng = np.random.default_rng(0)
    ct_env, pt_env = random_env(program, rng)
    fast = evaluate(program, ct_env, pt_env)
    slow = _scalar_reference(program, ct_env, pt_env)
    assert np.array_equal(fast, slow)


def _scalar_reference(program, ct_env, pt_env):
    """Slot-at-a-time reference interpreter (deliberately naive)."""
    from repro.quill.ir import CtInput, Opcode, PtConst, PtInput, Wire

    n = program.vector_size
    wires = []

    def fetch(ref, i):
        if isinstance(ref, Wire):
            return wires[ref.index][i]
        if isinstance(ref, CtInput):
            return int(ct_env[ref.name][i])
        if isinstance(ref, PtInput):
            return int(pt_env[ref.name][i])
        if isinstance(ref, PtConst):
            return program.constant_vector(ref.name)[i]
        raise TypeError(ref)

    for instr in program.instructions:
        row = []
        for i in range(n):
            if instr.opcode is Opcode.ROTATE:
                j = i + instr.amount
                row.append(fetch(instr.operands[0], j) if 0 <= j < n else 0)
            else:
                a = fetch(instr.operands[0], i)
                b = fetch(instr.operands[1], i)
                if instr.opcode in (Opcode.ADD_CC, Opcode.ADD_CP):
                    row.append(a + b)
                elif instr.opcode in (Opcode.SUB_CC, Opcode.SUB_CP):
                    row.append(a - b)
                else:
                    row.append(a * b)
        wires.append(row)
    return np.array(wires[program.output.index], dtype=np.int64)
