"""The dataflow-graph form: conversion, use-def chains, mutation."""

import pytest

from repro.quill.builder import ProgramBuilder
from repro.quill.graph import GraphError, GraphProgram, NodeRef
from repro.quill.ir import CtInput, Opcode, Wire
from repro.quill.printer import format_program


def small_program():
    b = ProgramBuilder(8, name="g")
    x = b.ct_input("x")
    r = b.rotate(x, 1)
    s = b.add(x, r)
    t = b.mul(s, s)
    return b.build(t)


def test_round_trip_preserves_program_text():
    program = small_program()
    graph = GraphProgram.from_program(program)
    assert format_program(graph.to_program()) == format_program(program)


def test_use_def_chains():
    graph = GraphProgram.from_program(small_program())
    nodes = list(graph.nodes())
    rot, add, mul = nodes
    assert graph.users(rot.id) == {add.id}
    assert graph.users(add.id) == {mul.id}
    assert graph.users(mul.id) == frozenset()
    assert graph.use_count(mul.id) == 1  # the program output counts
    assert graph.is_output(mul.id)


def test_replace_all_uses_rewrites_operands_and_outputs():
    graph = GraphProgram.from_program(small_program())
    rot, add, mul = list(graph.nodes())
    graph.replace_all_uses(add.id, CtInput("x"))
    assert all(
        not (isinstance(ref, NodeRef) and ref.id == add.id)
        for ref in mul.operands
    )
    graph.replace_all_uses(mul.id, NodeRef(rot.id))
    assert graph.outputs == [NodeRef(rot.id)]
    assert graph.use_count(mul.id) == 0


def test_remove_node_refuses_live_nodes():
    graph = GraphProgram.from_program(small_program())
    rot, add, mul = list(graph.nodes())
    with pytest.raises(GraphError):
        graph.remove_node(rot.id)  # still used by the add
    with pytest.raises(GraphError):
        graph.remove_node(mul.id)  # program output
    graph.replace_all_uses(mul.id, NodeRef(add.id))
    graph.remove_node(mul.id)
    assert mul.id not in graph


def test_topo_order_handles_late_inserted_producers():
    graph = GraphProgram.from_program(small_program())
    rot, add, mul = list(graph.nodes())
    # rewrite the mul to consume a node created after it
    late = graph.add_node(Opcode.ADD_CC, (NodeRef(add.id), NodeRef(add.id)))
    graph.update_node(mul.id, operands=(late, late))
    order = [n.id for n in graph.topo_order()]
    assert order.index(late.id) < order.index(mul.id)
    program = graph.to_program()  # validates wire ordering
    assert program.instruction_count() == 4


def test_structural_key_canonicalizes_commutative_operands():
    graph = GraphProgram(8)
    x = graph.ct_input("x")
    y = graph.ct_input("y")
    add_xy = graph.structural_key(Opcode.ADD_CC, (x, y))
    add_yx = graph.structural_key(Opcode.ADD_CC, (y, x))
    sub_xy = graph.structural_key(Opcode.SUB_CC, (x, y))
    sub_yx = graph.structural_key(Opcode.SUB_CC, (y, x))
    assert add_xy == add_yx
    assert sub_xy != sub_yx


def test_multi_output_round_trip():
    b = ProgramBuilder(8, name="two-outs")
    x = b.ct_input("x")
    r = b.rotate(x, 2)
    s = b.add(x, r)
    program = b.build(s, extra_outputs=(r,))
    graph = GraphProgram.from_program(program)
    assert len(graph.outputs) == 2
    back = graph.to_program()
    assert back.outputs == (Wire(1), Wire(0))
    assert "out c2\nout c1" in format_program(back)


def test_cycle_detection():
    graph = GraphProgram.from_program(small_program())
    rot, add, mul = list(graph.nodes())
    graph.update_node(rot.id, operands=(NodeRef(mul.id),))
    with pytest.raises(GraphError):
        graph.topo_order()


def test_find_reflects_in_place_rewrites():
    """The structural index never returns a node whose fields changed."""
    graph = GraphProgram.from_program(small_program())
    rot, add, mul = list(graph.nodes())
    x = CtInput("x")
    assert graph.find(Opcode.ROTATE, (x,), 1) == NodeRef(rot.id)
    graph.update_node(rot.id, amount=3)
    assert graph.find(Opcode.ROTATE, (x,), 1) is None
    assert graph.find(Opcode.ROTATE, (x,), 3) == NodeRef(rot.id)
    # find_or_add reuses the rewritten node, not a stale key
    assert graph.find_or_add(Opcode.ROTATE, (x,), 3) == NodeRef(rot.id)
    assert len(graph) == 3


def test_find_survives_removal_of_a_structural_twin():
    graph = GraphProgram(8)
    x = graph.ct_input("x")
    first = graph.add_node(Opcode.ROTATE, (x,), 1)
    second = graph.add_node(Opcode.ROTATE, (x,), 1)  # structural twin
    graph.outputs = [second]
    graph.remove_node(first.id)
    assert graph.find(Opcode.ROTATE, (x,), 1) == second
    assert graph.find_or_add(Opcode.ROTATE, (x,), 1) == second
    assert len(graph) == 1


def test_find_or_add_ignores_removed_nodes():
    graph = GraphProgram.from_program(small_program())
    rot, add, mul = list(graph.nodes())
    graph.replace_all_uses(add.id, CtInput("x"))
    graph.replace_all_uses(rot.id, CtInput("x"))
    graph.remove_node(add.id)
    graph.remove_node(rot.id)
    x = CtInput("x")
    assert graph.find(Opcode.ROTATE, (x,), 1) is None
    fresh = graph.find_or_add(Opcode.ROTATE, (x,), 1)
    assert fresh.id not in (rot.id, add.id)


def test_constant_conflict_rejected():
    graph = GraphProgram(4)
    graph.constant("k", 3)
    graph.constant("k", 3)  # same value is fine
    with pytest.raises(GraphError):
        graph.constant("k", 4)
