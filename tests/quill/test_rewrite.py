"""The verified rewrite-pass suite: each pass, the manager, the safety net."""

import numpy as np
import pytest

from repro.baselines import baseline_for
from repro.quill.builder import ProgramBuilder
from repro.quill.graph import GraphProgram
from repro.quill.interpreter import evaluate
from repro.quill.ir import Opcode, wire_part_counts
from repro.quill.rewrite import (
    CommonSubexpressionElimination,
    DeadCodeElimination,
    GaloisKeyMinimization,
    LazyRelinearization,
    PassManager,
    RewriteContext,
    RewriteVerificationError,
    RotationComposition,
    RotationHoisting,
    default_pass_manager,
    optimize_program,
)
from repro.spec import get_spec


def run_pass(rewrite, program):
    graph = GraphProgram.from_program(program)
    ctx = RewriteContext()
    changed = rewrite.run(graph, ctx)
    return graph.to_program(), changed, ctx


def interpret(program, seed=0):
    rng = np.random.default_rng(seed)
    n = program.vector_size
    ct = {name: rng.integers(-9, 10, n) for name in program.ct_inputs}
    pt = {name: rng.integers(-9, 10, n) for name in program.pt_inputs}
    return evaluate(program, ct, pt)


# ---------------------------------------------------------------------------
# CSE
# ---------------------------------------------------------------------------


def test_cse_unifies_duplicate_rotations_and_arithmetic():
    b = ProgramBuilder(8, name="dup")
    x = b.ct_input("x")
    # defeat the builder's rotation cache by emitting by hand
    r1 = b._emit(Opcode.ROTATE, (x,), 2)
    r2 = b._emit(Opcode.ROTATE, (x,), 2)
    s1 = b.add(x, r1)
    s2 = b.add(x, r2)  # identical once r2 unifies with r1
    program = b.build(b.mul(s1, s2))
    optimized, changed, _ = run_pass(
        CommonSubexpressionElimination(), program
    )
    assert changed
    assert optimized.rotation_count() == 1
    assert optimized.instruction_count() == 3  # rot, add, mul
    assert np.array_equal(interpret(program), interpret(optimized))


def test_cse_respects_commutativity():
    b = ProgramBuilder(8, name="comm")
    x, y = b.ct_input("x"), b.ct_input("y")
    a1 = b.add(x, y)
    a2 = b.add(y, x)
    program = b.build(b.mul(a1, a2))
    optimized, changed, _ = run_pass(
        CommonSubexpressionElimination(), program
    )
    assert changed and optimized.instruction_count() == 2


def test_cse_does_not_merge_subtractions_across_operand_order():
    b = ProgramBuilder(8, name="anticomm")
    x, y = b.ct_input("x"), b.ct_input("y")
    s1 = b.sub(x, y)
    s2 = b.sub(y, x)
    program = b.build(b.mul(s1, s2))
    optimized, changed, _ = run_pass(
        CommonSubexpressionElimination(), program
    )
    assert not changed
    assert optimized.instruction_count() == 3


# ---------------------------------------------------------------------------
# DCE
# ---------------------------------------------------------------------------


def test_dce_removes_dead_chains_and_declarations():
    b = ProgramBuilder(8, name="dead")
    x = b.ct_input("x")
    b.pt_input("unused_pt")
    b.constant("unused_const", 7)
    live = b.add(x, b.rotate(x, 1))
    dead = b.mul(live, live)  # never consumed
    b.rotate(dead, 3)  # chain off the dead multiply
    program = b.build(live)
    optimized, changed, ctx = run_pass(DeadCodeElimination(), program)
    assert changed
    assert optimized.instruction_count() == 2
    assert optimized.pt_inputs == []
    assert optimized.constants == {}
    assert ctx.details["dce"]["removed"] == 2
    assert np.array_equal(interpret(program), interpret(optimized))


# ---------------------------------------------------------------------------
# Rotation composition / hoisting
# ---------------------------------------------------------------------------


def test_rotation_composition_folds_same_sign_chains():
    b = ProgramBuilder(16, name="chain")
    x = b.ct_input("x")
    r1 = b.rotate(x, 2)
    r2 = b.rotate(r1, 3)
    program = b.build(b.add(x, r2))
    optimized, changed, _ = run_pass(RotationComposition(), program)
    assert changed
    # after DCE the inner rotation is gone; composition rewrote the outer
    final = optimize_program(program)
    assert final.rotation_count() == 1
    assert final.rotation_amounts() == (5,)
    assert np.array_equal(interpret(program), interpret(final))


def test_rotation_composition_skips_mixed_signs():
    b = ProgramBuilder(4, name="mixed")
    x = b.ct_input("x")
    r1 = b.rotate(x, 1)
    r2 = b.rotate(r1, -1)  # NOT the identity under zero-fill shifts
    program = b.build(b.add(x, r2))
    _, changed, _ = run_pass(RotationComposition(), program)
    assert not changed
    expected = interpret(program)
    assert np.array_equal(interpret(optimize_program(program)), expected)


def test_rotation_composition_skips_overflowing_amounts():
    b = ProgramBuilder(4, name="overflow")
    x = b.ct_input("x")
    r2 = b.rotate(b.rotate(x, 3), 2)  # 5 >= vector size
    program = b.build(b.add(x, r2))
    _, changed, _ = run_pass(RotationComposition(), program)
    assert not changed


def test_rotation_hoisting_merges_equal_shifts():
    b = ProgramBuilder(8, name="hoist")
    x, y = b.ct_input("x"), b.ct_input("y")
    program = b.build(b.add(b.rotate(x, 2), b.rotate(y, 2)))
    optimized = optimize_program(program)
    assert optimized.rotation_count() == 1
    assert optimized.instruction_count() == 2
    assert np.array_equal(interpret(program), interpret(optimized))


def test_rotation_hoisting_covers_sub_and_mul():
    for op in ("sub", "mul"):
        b = ProgramBuilder(8, name=f"hoist-{op}")
        x, y = b.ct_input("x"), b.ct_input("y")
        combined = getattr(b, op)(b.rotate(x, -3), b.rotate(y, -3))
        program = b.build(combined)
        optimized = optimize_program(program)
        assert optimized.rotation_count() == 1
        assert np.array_equal(interpret(program), interpret(optimized))


def test_rotation_hoisting_skips_multiplies_in_explicit_programs():
    """Re-optimizing an explicit-relin program must not rotate a 3-part
    product (regression: hoisting a mul under the rotation crashed
    validation because lazy-relin no-ops on already-explicit graphs)."""
    b = ProgramBuilder(8, name="explicit-hoist", relin_mode="explicit")
    x, y = b.ct_input("x"), b.ct_input("y")
    program = b.build(b.relin(b.mul(b.rotate(x, 1), b.rotate(y, 1))))
    optimized = optimize_program(program)  # must not raise
    assert np.array_equal(interpret(program), interpret(optimized))


def test_rotation_hoisting_leaves_shared_rotations_alone():
    b = ProgramBuilder(8, name="shared")
    x, y = b.ct_input("x"), b.ct_input("y")
    rx = b.rotate(x, 2)
    ry = b.rotate(y, 2)
    both = b.add(rx, ry)
    program = b.build(b.add(both, rx))  # rx has two consumers
    _, changed, _ = run_pass(RotationHoisting(), program)
    assert not changed


# ---------------------------------------------------------------------------
# Lazy relinearization
# ---------------------------------------------------------------------------


def test_lazy_relin_defers_until_output():
    b = ProgramBuilder(8, name="sum-of-squares")
    x, y = b.ct_input("x"), b.ct_input("y")
    program = b.build(b.add(b.mul(x, x), b.mul(y, y)))
    optimized, changed, ctx = run_pass(LazyRelinearization(), program)
    assert changed
    assert optimized.is_explicit_relin
    assert optimized.relin_count() == 1  # two products, one fold
    assert ctx.details["lazy-relin"] == {
        "relins_before": 2,
        "relins_after": 1,
    }
    parts = wire_part_counts(optimized)
    assert parts.count(3) == 3  # both muls and their sum stay wide
    assert np.array_equal(interpret(program), interpret(optimized))


def test_lazy_relin_forces_fold_before_rotation_and_multiply():
    b = ProgramBuilder(8, name="forced")
    x = b.ct_input("x")
    sq = b.mul(x, x)
    rot = b.rotate(sq, 1)
    program = b.build(b.mul(sq, rot))
    optimized, _, _ = run_pass(LazyRelinearization(), program)
    # sq feeds a rotation and a ct-ct multiply: exactly one shared relin,
    # plus the final product must fold before leaving the program
    assert optimized.relin_count() == 2
    ops = [i.opcode for i in optimized.instructions]
    assert ops.index(Opcode.RELIN) < ops.index(Opcode.ROTATE)


def test_lazy_relin_equalizes_mixed_width_additions():
    b = ProgramBuilder(8, name="mixed-add")
    x, y = b.ct_input("x"), b.ct_input("y")
    program = b.build(b.add(b.mul(x, x), y))  # 3-part + fresh 2-part
    optimized, _, _ = run_pass(LazyRelinearization(), program)
    parts = wire_part_counts(optimized)
    assert 3 not in (parts[i] for i in range(len(parts)) if i)  # add is 2-part
    assert optimized.relin_count() == 1


def test_lazy_relin_keeps_plaintext_ops_wide():
    b = ProgramBuilder(8, name="wide-pt")
    x = b.ct_input("x")
    k = b.constant("k", 3)
    scaled = b.mul(b.mul(x, x), k)  # plain multiply of a 3-part product
    program = b.build(scaled)
    optimized, _, _ = run_pass(LazyRelinearization(), program)
    assert optimized.relin_count() == 1  # only the output fold
    ops = [i.opcode for i in optimized.instructions]
    assert ops == [Opcode.MUL_CC, Opcode.MUL_CP, Opcode.RELIN]


def test_lazy_relin_skips_explicit_programs():
    b = ProgramBuilder(8, name="noop", relin_mode="explicit")
    x = b.ct_input("x")
    program = b.build(b.relin(b.mul(x, x)))
    graph = GraphProgram.from_program(program)
    assert LazyRelinearization().run(graph, RewriteContext()) is False


# ---------------------------------------------------------------------------
# Galois key minimization
# ---------------------------------------------------------------------------


def test_galois_analysis_records_key_set():
    program = baseline_for("box_blur")
    _, changed, ctx = run_pass(GaloisKeyMinimization(), program)
    assert not changed  # analysis only by default
    detail = ctx.details["galois-keys"]
    assert detail["keys_before"] == detail["keys_after"] == 3
    assert detail["amounts"] == [1, 5, 6]


def test_galois_minimization_shares_inner_rotations():
    """Decomposing reuses an existing (or just-created) inner rotation
    instead of duplicating it per rewritten use."""
    b = ProgramBuilder(16, name="shared-keys")
    x = b.ct_input("x")
    total = b.add(b.rotate(x, 1), b.rotate(x, 2))
    total = b.add(total, b.rotate(x, 3))
    total = b.add(total, b._emit(Opcode.ROTATE, (x,), 3))  # second rot 3
    program = b.build(total)
    assert program.rotation_count() == 4
    graph = GraphProgram.from_program(program)
    ctx = RewriteContext(options={"max_galois_keys": 2})
    assert GaloisKeyMinimization().run(graph, ctx) is True
    optimized = graph.to_program()
    # 3 = 1 + 2: both rot-3 uses reuse the existing rot-1/rot-2 node as
    # their inner stage instead of emitting fresh duplicates
    assert set(optimized.rotation_amounts()) == {1, 2}
    assert optimized.rotation_count() == 4  # rot1, rot2, two outer rots
    assert np.array_equal(interpret(program), interpret(optimized))


def test_galois_minimization_decomposes_to_budget():
    b = ProgramBuilder(16, name="keys")
    x = b.ct_input("x")
    total = b.add(b.rotate(x, 1), b.rotate(x, 2))
    total = b.add(total, b.rotate(x, 3))  # 3 = 1 + 2 is decomposable
    program = b.build(total)
    graph = GraphProgram.from_program(program)
    ctx = RewriteContext(options={"max_galois_keys": 2})
    assert GaloisKeyMinimization().run(graph, ctx) is True
    optimized = graph.to_program()
    assert optimized.galois_key_count() == 2
    assert set(optimized.rotation_amounts()) == {1, 2}
    assert np.array_equal(interpret(program), interpret(optimized))


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------


def test_manager_reverifies_each_pass_against_spec():
    spec = get_spec("sobel")
    program = baseline_for("sobel")
    result = default_pass_manager().run(program, spec=spec)
    assert result.verified
    assert result.program.relin_count() < program.relin_count()
    assert result.after["executable_ops"] < result.before["executable_ops"]
    names = [r.name for r in result.reports]
    assert names[0] == "cse" and "lazy-relin" in names
    assert any(r.verify_seconds > 0 for r in result.reports if r.changed)


def test_manager_raises_on_a_broken_rewrite():
    class BreakIt:
        name = "break-it"

        def run(self, graph, ctx):
            # maul the program: retarget the output to a rotation of it
            out = graph.outputs[0]
            graph.outputs = [graph.add_node(Opcode.ROTATE, (out,), 1)]
            return True

    spec = get_spec("box_blur")
    program = baseline_for("box_blur")
    manager = PassManager(passes=[BreakIt()])
    with pytest.raises(RewriteVerificationError, match="break-it"):
        manager.run(program, spec=spec)


def test_dead_hoistable_subtree_does_not_crash_dce():
    """Hoisting rewrites a dead consumer in place; DCE must still work.

    Regression: the hoisted inner node has a higher id than its dead
    consumer, so removal has to run in reverse topological order, not
    reverse insertion order.
    """
    b = ProgramBuilder(8, name="dead-hoist")
    x, y = b.ct_input("x"), b.ct_input("y")
    b.sub(b.rotate(x, 1), b.rotate(y, 1))  # dead, hoistable
    program = b.build(b.add(x, y))
    optimized = optimize_program(program, spec=None)
    assert optimized.instruction_count() == 1
    assert np.array_equal(interpret(program), interpret(optimized))


def test_manager_verifies_extra_outputs_against_pre_pass_values():
    class CorruptExtra:
        name = "corrupt-extra"

        def run(self, graph, ctx):
            # silently rotate the extra output: primary is untouched, so
            # only the extra-output check can catch this
            extra = graph.outputs[1]
            graph.outputs[1] = graph.add_node(Opcode.ROTATE, (extra,), 1)
            return True

    from dataclasses import replace

    from repro.quill.ir import Wire

    # baselines are @cache-shared: copy before adding an output
    blur = replace(baseline_for("box_blur"), extra_outputs=[Wire(0)])
    manager = PassManager(passes=[CorruptExtra()])
    with pytest.raises(RewriteVerificationError, match="no longer matches"):
        manager.run(blur, spec=get_spec("box_blur"))


def test_default_suite_preserves_extra_outputs():
    from dataclasses import replace

    from repro.quill.ir import Wire

    blur = replace(baseline_for("box_blur"), extra_outputs=[Wire(0)])
    result = default_pass_manager().run(blur, spec=get_spec("box_blur"))
    assert len(result.program.outputs) == 2
    # the first rotation is an extra output, so hoisting must keep it
    rng = np.random.default_rng(0)
    env = {"img": rng.integers(-5, 6, blur.vector_size)}
    before = evaluate(blur, env, all_wires=True)
    after_program = result.program
    after = evaluate(after_program, env, all_wires=True)
    assert np.array_equal(
        before[blur.extra_outputs[0].index],
        after[after_program.extra_outputs[0].index],
    )


def test_manager_summary_is_json_shaped():
    import json

    program = baseline_for("harris")
    result = default_pass_manager().run(program, spec=get_spec("harris"))
    payload = json.loads(json.dumps(result.summary()))
    assert payload["verified"] is True
    assert payload["after"]["relins"] < payload["before"]["relins"]
    assert {p["name"] for p in payload["passes"]} >= {
        "cse",
        "dce",
        "lazy-relin",
        "galois-keys",
    }
