"""Cross-round frontier reuse: incremental CEGIS is bit-identical.

The contract: ``SynthesisConfig(incremental=True)`` (the default) —
persistent search state, counterexample columns appended in place,
resumed rounds skipping proven-matchless root branches, and phase 2
inheriting phase 1's store — returns byte-identical programs to the
from-scratch baseline (``incremental=False``), while searching no more
nodes.  The seeds below are chosen so phase 1 really does go through
counterexample rounds (multi-round CEGIS), not just length increments.
"""

import numpy as np
import pytest

from repro.core.cegis import (
    SynthesisConfig,
    synthesize,
    synthesize_initial,
)
from repro.core.sketches import default_sketch_for
from repro.quill.latency import default_latency_model
from repro.quill.printer import format_program
from repro.solver.engine import SketchSearch, materialize_assignment
from repro.spec import get_spec

MODEL = default_latency_model()

# (kernel, seed) pairs whose phase 1 provably adds counterexamples
MULTI_ROUND = [("dot_product", 5), ("linear_regression", 0), ("hamming", 1)]


@pytest.mark.parametrize("name,seed", MULTI_ROUND, ids=[c[0] for c in MULTI_ROUND])
def test_incremental_bit_identical_on_multi_round_kernels(name, seed):
    spec = get_spec(name)
    sketch = default_sketch_for(spec)
    base = dict(seed=seed, optimize_timeout=20.0)
    incremental = synthesize(spec, sketch, SynthesisConfig(**base))
    scratch = synthesize(
        spec, sketch, SynthesisConfig(**base, incremental=False)
    )
    assert incremental.examples_used >= 2  # the seed really is multi-round
    assert format_program(incremental.program) == format_program(
        scratch.program
    )
    assert incremental.final_cost == scratch.final_cost
    assert incremental.proof_complete == scratch.proof_complete
    assert incremental.examples_used == scratch.examples_used
    # reuse never searches more than the from-scratch baseline
    assert incremental.nodes <= scratch.nodes


def test_incremental_reuse_counters_surface():
    spec = get_spec("dot_product")
    sketch = default_sketch_for(spec)
    result = synthesize(
        spec, sketch, SynthesisConfig(seed=5, optimize_timeout=20.0)
    )
    stats = result.search_stats
    assert stats.appended_columns >= 1  # counterexamples appended in place
    assert stats.reused_values > 0  # store entries carried across rounds
    summary = stats.summary()
    for key in (
        "pruned",
        "reused_values",
        "appended_columns",
        "ranks_skipped",
        "shift_cache_peak",
        "steals",
        "chunks",
        "bound_updates",
    ):
        assert key in summary


def test_phase1_result_carries_live_search_state():
    spec = get_spec("box_blur")
    sketch = default_sketch_for(spec)
    initial = synthesize_initial(spec, sketch, SynthesisConfig())
    assert initial.search is not None
    assert initial.search.length == initial.components
    assert len(initial.search.examples) == initial.examples_used
    scratch = synthesize_initial(
        spec, sketch, SynthesisConfig(incremental=False)
    )
    assert scratch.search is None


# -- engine-level equivalence of the incremental primitives ------------------


def _exhaust(search):
    programs = []

    def on_candidate(assignment):
        programs.append(
            format_program(
                materialize_assignment(
                    search.sketch, search.layout, assignment
                )
            )
        )
        return False, None

    outcome = search.run(on_candidate)
    assert outcome.status == "exhausted"
    return outcome, programs


def test_extend_examples_matches_fresh_search():
    spec = get_spec("dot_product")
    sketch = default_sketch_for(spec)
    rng = np.random.default_rng(3)
    examples = [spec.make_example(rng) for _ in range(3)]

    grown = SketchSearch(sketch, spec.layout, examples[:1], MODEL, 3)
    _exhaust(grown)  # a full round on one example
    grown.extend_examples(examples[1:])
    grown_outcome, grown_programs = _exhaust(grown)

    fresh = SketchSearch(sketch, spec.layout, examples, MODEL, 3)
    fresh_outcome, fresh_programs = _exhaust(fresh)

    assert grown_programs == fresh_programs
    assert grown_outcome.nodes == fresh_outcome.nodes
    assert grown_outcome.candidates == fresh_outcome.candidates
    assert grown_outcome.reused_values > 0
    assert grown_outcome.appended_columns == 2


def test_set_length_matches_fresh_search():
    spec = get_spec("box_blur")
    sketch = default_sketch_for(spec)
    rng = np.random.default_rng(1)
    examples = [spec.make_example(rng) for _ in range(2)]

    grown = SketchSearch(sketch, spec.layout, examples, MODEL, 2)
    _exhaust(grown)
    grown.set_length(3)
    grown_outcome, grown_programs = _exhaust(grown)

    fresh = SketchSearch(sketch, spec.layout, examples, MODEL, 3)
    fresh_outcome, fresh_programs = _exhaust(fresh)

    assert grown_programs == fresh_programs
    assert grown_outcome.nodes == fresh_outcome.nodes


def test_start_rank_resume_skips_matchless_prefix():
    spec = get_spec("linear_regression")
    sketch = default_sketch_for(spec)
    rng = np.random.default_rng(0)
    examples = [spec.make_example(rng) for _ in range(2)]
    search = SketchSearch(sketch, spec.layout, examples, MODEL, 3)

    first = {}

    def stop_on_first(assignment):
        first["rank"] = search.current_root_rank
        return True, None

    full = search.run(stop_on_first)
    assert full.status == "stopped"
    match_rank = first["rank"]
    assert match_rank > 0

    resumed = search.run(stop_on_first, start_rank=match_rank)
    assert resumed.status == "stopped"
    assert first["rank"] == match_rank  # same branch found again
    assert resumed.ranks_skipped == match_rank
    assert resumed.nodes < full.nodes  # the skipped prefix was real work


def test_timeout_unwinds_persistent_store():
    spec = get_spec("hamming")
    sketch = default_sketch_for(spec)
    rng = np.random.default_rng(0)
    examples = [spec.make_example(rng) for _ in range(2)]
    search = SketchSearch(sketch, spec.layout, examples, MODEL, 4)
    import time as time_module

    outcome = search.run(
        lambda a: (False, None),
        deadline=time_module.perf_counter() - 1.0,  # already expired
    )
    assert outcome.status == "timeout"
    assert len(search.store) == search.store.base_count
    # the search object stays usable for the next round
    follow_up = search.run(lambda a: (True, None))
    assert follow_up.status in ("stopped", "exhausted")
