"""Shardable rank ranges: N disjoint searches, one canonical answer.

A synthesis search splits into ``shard=(i, N)`` descriptors — disjoint
root-rank ranges run by independent serial processes against a shared
lemma store — and a final merge run (same store, no shard) replays the
recorded candidates in canonical order.  The contract: the merged
program is byte-identical to an uninterrupted serial run, for any shard
count, on kernels with real multi-round counterexample loops
(dot_product @ seed 5), and even when a shard process is power-cut
mid-search and resumed from its checkpoint.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cegis import SynthesisConfig, SynthesisError, synthesize
from repro.core.sketches import default_sketch_for
from repro.quill.printer import format_program
from repro.spec import get_spec

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _synth(kernel, seed=0, **overrides):
    spec = get_spec(kernel)
    sketch = default_sketch_for(spec)
    config = SynthesisConfig(seed=seed, optimize_timeout=10.0, **overrides)
    return synthesize(spec, sketch, config)


def _shard_and_merge(kernel, seed, shards, store_path):
    """Run every shard (non-solving ones raise), then the merge run."""
    for index in range(shards):
        try:
            _synth(
                kernel,
                seed=seed,
                lemma_path=store_path,
                shard=(index, shards),
            )
        except SynthesisError:
            pass  # this shard's rank ranges hold no solution — expected
    return _synth(kernel, seed=seed, lemma_path=store_path)


# -- byte-identity across shard counts ---------------------------------------


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_merge_is_byte_identical(tmp_path, shards):
    serial = _synth("box_blur")
    merged = _shard_and_merge(
        "box_blur", 0, shards, str(tmp_path / "lemmas.json")
    )
    assert format_program(merged.program) == format_program(serial.program)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(shards=st.integers(1, 4), seed=st.sampled_from([0, 3, 5]))
def test_multi_round_shard_merge_matches_serial(tmp_path, shards, seed):
    """dot_product @ seed 5 provably runs counterexample rounds, so the
    merge must survive per-shard example sets diverging mid-search."""
    store = str(
        tmp_path / f"lemmas_{shards}_{seed}.json"
    )
    serial = _synth("dot_product", seed=seed)
    merged = _shard_and_merge("dot_product", seed, shards, store)
    assert format_program(merged.program) == format_program(serial.program)


def test_nonsolving_shard_raises_with_merge_hint(tmp_path):
    """Some shard of a 4-way box_blur split cannot contain the solution
    (the solving root rank lives in exactly one range)."""
    errors = []
    for index in range(4):
        try:
            _synth(
                "box_blur",
                lemma_path=str(tmp_path / "l.json"),
                shard=(index, 4),
            )
        except SynthesisError as err:
            errors.append(str(err))
    assert errors, "every shard claimed to solve — ranges overlap?"
    assert any("--merge-shards" in e or "shard" in e for e in errors)


def test_invalid_shard_descriptors_are_rejected():
    for bad in ((2, 2), (-1, 2), (0, 0)):
        with pytest.raises(ValueError):
            _synth("box_blur", shard=bad)


def test_shard_forces_serial_search(tmp_path):
    """workers>1 with a shard descriptor must not spin up the parallel
    driver: shard determinism is defined over the serial rank order."""
    result = _synth(
        "box_blur",
        lemma_path=str(tmp_path / "l.json"),
        shard=(0, 1),
        workers=4,
    )
    serial = _synth("box_blur")
    assert format_program(result.program) == format_program(serial.program)
    assert result.search_stats.steals == 0
    assert result.search_stats.chunks == 0


# -- power cut mid-shard ------------------------------------------------------

_RUNNER = """
import sys
from repro.core.cegis import SynthesisConfig, SynthesisError, synthesize
from repro.core.sketches import default_sketch_for
from repro.quill.printer import format_program
from repro.spec import get_spec

name, seed, lemmas, ckpt, shard = sys.argv[1:6]
spec = get_spec(name)
config = SynthesisConfig(
    seed=int(seed),
    optimize_timeout=10.0,
    lemma_path=lemmas or None,
    checkpoint_path=ckpt or None,
    shard=tuple(int(p) for p in shard.split("/")) if shard else None,
)
try:
    result = synthesize(spec, default_sketch_for(spec), config)
except SynthesisError:
    sys.exit(0)  # a non-solving shard is a clean, empty-handed exit
sys.stdout.write(format_program(result.program))
"""


def _run_child(kernel, seed, lemmas, ckpt, shard, crash_after=None):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("PORCUPINE_CHECKPOINT_CRASH_AFTER", None)
    if crash_after is not None:
        env["PORCUPINE_CHECKPOINT_CRASH_AFTER"] = str(crash_after)
    return subprocess.run(
        [sys.executable, "-c", _RUNNER,
         kernel, str(seed), lemmas, ckpt, shard],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_shard_killed_and_resumed_merge_is_byte_identical(tmp_path):
    kernel, seed = "dot_product", 5  # multi-round CEGIS
    baseline = _run_child(kernel, seed, "", "", "")
    assert baseline.returncode == 0, baseline.stderr
    assert baseline.stdout, "serial baseline synthesized nothing"

    lemmas = str(tmp_path / "lemmas.json")
    # power-cut shard 0/2 right after its first checkpoint write
    ckpt0 = str(tmp_path / "shard0.ckpt")
    crashed = _run_child(kernel, seed, lemmas, ckpt0, "0/2", crash_after=1)
    assert crashed.returncode == 137, (
        f"expected the deterministic power cut, got rc="
        f"{crashed.returncode}: {crashed.stderr}"
    )
    assert Path(ckpt0).exists(), "crash left no checkpoint behind"
    # resume shard 0 from its checkpoint, then run shard 1 cold
    resumed = _run_child(kernel, seed, lemmas, ckpt0, "0/2")
    assert resumed.returncode == 0, resumed.stderr
    other = _run_child(kernel, seed, lemmas, str(tmp_path / "s1.ckpt"), "1/2")
    assert other.returncode == 0, other.stderr

    merged = _run_child(kernel, seed, lemmas, "", "")
    assert merged.returncode == 0, merged.stderr
    assert merged.stdout == baseline.stdout, (
        "sharded kill+resume+merge produced different bytes than serial"
    )
