"""Crash-safe synthesis checkpoints: kill, resume, byte-identical.

The headline regression (tentpole acceptance): a synthesis run killed
mid-search — via the deterministic ``PORCUPINE_CHECKPOINT_CRASH_AFTER``
power cut, which ``os._exit(137)``s the process right after a checkpoint
write with no cleanup — and resumed from its checkpoint produces a
program byte-identical to an uninterrupted run.  Exercised end-to-end in
subprocesses on two registry kernels, including a multi-round CEGIS
search (dot_product @ seed 5 provably adds counterexamples, so the rng
stream and example set must survive the round trip too).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.cegis import SynthesisConfig, synthesize
from repro.core.checkpoint import (
    CheckpointState,
    SynthesisCheckpoint,
    checkpoint_key,
    example_from_json,
    example_to_json,
    restore_rng,
    rng_state,
)
from repro.core.sketches import default_sketch_for
from repro.quill.printer import format_program
from repro.spec import get_spec
from repro.spec.reference import Example

SRC = str(Path(__file__).resolve().parents[2] / "src")

_RUNNER = """
import sys
from repro.core.cegis import SynthesisConfig, synthesize
from repro.core.sketches import default_sketch_for
from repro.quill.printer import format_program
from repro.spec import get_spec

name, seed, ckpt = sys.argv[1], int(sys.argv[2]), sys.argv[3]
spec = get_spec(name)
config = SynthesisConfig(
    seed=seed, optimize_timeout=10.0, checkpoint_path=ckpt or None
)
result = synthesize(spec, default_sketch_for(spec), config)
sys.stdout.write(format_program(result.program))
"""


def _run_child(kernel, seed, checkpoint, crash_after=None):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("PORCUPINE_CHECKPOINT_CRASH_AFTER", None)
    if crash_after is not None:
        env["PORCUPINE_CHECKPOINT_CRASH_AFTER"] = str(crash_after)
    return subprocess.run(
        [sys.executable, "-c", _RUNNER, kernel, str(seed), checkpoint],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


# -- the kill-and-resume regression (two registry kernels) -------------------


@pytest.mark.parametrize(
    "kernel,seed,crash_after",
    [
        ("box_blur", 0, 1),
        ("dot_product", 5, 1),  # multi-round: rng/examples must survive
        ("dot_product", 5, 2),
    ],
    ids=["box_blur@1", "dot_product@1", "dot_product@2"],
)
def test_kill_and_resume_is_byte_identical(
    tmp_path, kernel, seed, crash_after
):
    baseline = _run_child(kernel, seed, "")
    assert baseline.returncode == 0, baseline.stderr

    checkpoint = str(tmp_path / "run.ckpt")
    crashed = _run_child(kernel, seed, checkpoint, crash_after=crash_after)
    assert crashed.returncode == 137, (
        f"expected the deterministic power cut, got rc="
        f"{crashed.returncode}: {crashed.stderr}"
    )
    assert Path(checkpoint).exists(), "crash left no checkpoint behind"

    resumed = _run_child(kernel, seed, checkpoint)
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == baseline.stdout, (
        "resumed program differs from the uninterrupted run"
    )


def test_completed_checkpoint_short_circuits_resynthesis(tmp_path):
    spec = get_spec("box_blur")
    sketch = default_sketch_for(spec)
    path = str(tmp_path / "done.ckpt")
    config = SynthesisConfig(
        max_components=3, optimize_timeout=10.0, checkpoint_path=path
    )
    first = synthesize(spec, sketch, config)
    again = synthesize(spec, sketch, config)
    assert format_program(again.program) == format_program(first.program)
    assert again.proof_complete
    # the rerun replayed nothing: it reconstructed the result instead
    assert again.nodes == 0
    assert again.total_time == 0.0


# -- serialization round-trips ----------------------------------------------


def test_example_round_trips_through_json():
    example = Example(
        ct_env={"img": np.arange(12, dtype=np.int64).reshape(3, 4)},
        pt_env={"w": np.asarray([1, -2, 3], dtype=np.int64)},
        goal=np.asarray([[7, -9]], dtype=np.int64),
    )
    back = example_from_json(json.loads(json.dumps(example_to_json(example))))
    for env, orig in (
        (back.ct_env, example.ct_env),
        (back.pt_env, example.pt_env),
    ):
        assert set(env) == set(orig)
        for name in orig:
            assert env[name].dtype == np.int64
            assert env[name].tobytes() == orig[name].tobytes()
            assert env[name].shape == orig[name].shape
    assert back.goal.tobytes() == example.goal.tobytes()
    assert back.goal.shape == example.goal.shape


def test_rng_state_round_trips_the_stream():
    rng = np.random.default_rng(42)
    rng.integers(0, 100, size=7)  # advance past the seed state
    state = json.loads(json.dumps(rng_state(rng)))
    expected = rng.integers(0, 2**31, size=16)
    replay = np.random.default_rng(0)
    restore_rng(replay, state)
    assert (replay.integers(0, 2**31, size=16) == expected).all()


def test_checkpoint_state_round_trips(tmp_path):
    spec = get_spec("box_blur")
    sketch = default_sketch_for(spec)
    config = SynthesisConfig(max_components=3)
    rng = np.random.default_rng(3)
    state = CheckpointState(
        phase="initial",
        length=4,
        resume_rank=17,
        examples=[
            Example(
                ct_env={"x": np.asarray([1, 2], dtype=np.int64)},
                pt_env={},
                goal=np.asarray([3], dtype=np.int64),
            )
        ],
        rng=rng_state(rng),
    )
    ckpt = SynthesisCheckpoint.for_run(tmp_path / "c.ckpt", spec, sketch, config)
    ckpt.save(state)
    loaded = ckpt.load()
    assert loaded is not None
    assert loaded.phase == "initial"
    assert loaded.length == 4
    assert loaded.resume_rank == 17
    assert len(loaded.examples) == 1
    assert loaded.examples[0].goal.tolist() == [3]
    assert loaded.rng == json.loads(json.dumps(state.rng))


# -- staleness and corruption degrade to a fresh run -------------------------


def test_stale_checkpoint_is_ignored(tmp_path):
    spec = get_spec("box_blur")
    sketch = default_sketch_for(spec)
    path = tmp_path / "c.ckpt"
    old = SynthesisCheckpoint.for_run(
        path, spec, sketch, SynthesisConfig(seed=0)
    )
    old.save(CheckpointState(phase="done", best_text="quill kernel \"x\""))
    # a different config is a different search: the key must mismatch
    new = SynthesisCheckpoint.for_run(
        path, spec, sketch, SynthesisConfig(seed=1)
    )
    assert new.key != old.key
    assert new.load() is None


def test_operational_fields_do_not_change_the_key(tmp_path):
    spec = get_spec("box_blur")
    sketch = default_sketch_for(spec)
    base = checkpoint_key(spec, sketch, SynthesisConfig(seed=0))
    moved = checkpoint_key(
        spec,
        sketch,
        SynthesisConfig(seed=0, checkpoint_path="/elsewhere", workers=4),
    )
    assert moved == base


def test_missing_and_corrupt_checkpoints_load_as_none(tmp_path):
    spec = get_spec("box_blur")
    sketch = default_sketch_for(spec)
    config = SynthesisConfig()
    path = tmp_path / "c.ckpt"
    ckpt = SynthesisCheckpoint.for_run(path, spec, sketch, config)
    assert ckpt.load() is None  # missing
    path.write_text("this is not json{")
    assert ckpt.load() is None  # corrupt
    path.write_text(json.dumps([1, 2, 3]))
    assert ckpt.load() is None  # wrong shape
    ckpt.save(CheckpointState())
    assert ckpt.load() is not None
    ckpt.clear()
    assert ckpt.load() is None
    ckpt.clear()  # idempotent


def test_save_is_atomic_no_temp_residue(tmp_path):
    spec = get_spec("box_blur")
    sketch = default_sketch_for(spec)
    ckpt = SynthesisCheckpoint.for_run(
        tmp_path / "deep" / "c.ckpt", spec, sketch, SynthesisConfig()
    )
    ckpt.save(CheckpointState(phase="initial", length=3))
    files = sorted(p.name for p in (tmp_path / "deep").iterdir())
    assert files == ["c.ckpt"], f"temp residue left behind: {files}"
