"""Tests for the CEGIS synthesis engine on the fast kernels.

The slower kernels (gx, gy, roberts, l2) are exercised by the benchmark
suite; here we verify the algorithmic properties of Algorithm 1 on kernels
that synthesize in seconds.
"""

import numpy as np
import pytest

from repro.core.cegis import (
    SynthesisConfig,
    SynthesisError,
    synthesize,
)
from repro.core.compiler import compile_kernel, config_for
from repro.core.sketch import ComponentChoice, CtHole, Sketch
from repro.core.sketches import default_sketch_for
from repro.quill.ir import Opcode
from repro.quill.noise import multiplicative_depth
from repro.spec import (
    box_blur_spec,
    dot_product_spec,
    get_spec,
    hamming_spec,
    linear_regression_spec,
    polynomial_regression_spec,
)

FAST = SynthesisConfig(max_components=5, optimize_timeout=10.0)


@pytest.fixture(scope="module")
def box_blur_result():
    return synthesize(
        box_blur_spec(),
        default_sketch_for(box_blur_spec()),
        SynthesisConfig(max_components=3, optimize_timeout=10.0),
    )


def test_box_blur_finds_separable_solution(box_blur_result):
    """The headline Figure 5(a) result: 4 instructions instead of 6."""
    program = box_blur_result.program
    assert program.instruction_count() == 4
    assert program.rotation_count() == 2
    assert box_blur_result.components == 2
    assert box_blur_spec().verify_program(program).equivalent


def test_box_blur_beats_baseline_cost(box_blur_result):
    from repro.baselines import baseline_for
    from repro.quill.cost import program_cost

    baseline_cost = program_cost(baseline_for("box_blur"))
    assert box_blur_result.final_cost < baseline_cost


def test_synthesis_result_statistics(box_blur_result):
    result = box_blur_result
    assert result.spec_name == "box_blur"
    assert result.examples_used >= 1
    assert result.initial_time <= result.total_time
    assert result.final_cost <= result.initial_cost
    assert result.nodes > 0
    assert result.proof_complete  # tiny space: exhaustion is fast


def test_polynomial_regression_discovers_horner():
    """The paper's algebraic discovery: ax^2+bx = (ax+b)x saves a multiply."""
    spec = polynomial_regression_spec()
    result = synthesize(spec, default_sketch_for(spec), FAST)
    assert result.components == 4  # baseline needs 5 components
    assert result.program.multiply_cc_count() == 2  # baseline uses 3
    assert spec.verify_program(result.program).equivalent


def test_dot_product_matches_baseline_structure():
    spec = dot_product_spec()
    result = synthesize(spec, default_sketch_for(spec), FAST)
    assert result.program.instruction_count() == 7
    assert multiplicative_depth(result.program) == 1
    assert spec.verify_program(result.program).equivalent


def test_hamming_matches_baseline_structure():
    spec = hamming_spec()
    result = synthesize(spec, default_sketch_for(spec), FAST)
    assert result.program.instruction_count() == 6
    assert spec.verify_program(result.program).equivalent


def test_linear_regression_synthesis():
    spec = linear_regression_spec()
    result = synthesize(spec, default_sketch_for(spec), FAST)
    assert result.program.instruction_count() == 4
    assert spec.verify_program(result.program).equivalent


def test_minimal_component_count_is_found_first():
    # iterative deepening: box blur has no 1-component solution, so the
    # engine must have proven L=1 unsat before settling on L=2.
    spec = box_blur_spec()
    result = synthesize(
        spec,
        default_sketch_for(spec),
        SynthesisConfig(max_components=3, optimize=False),
    )
    assert result.components == 2


def test_unsatisfiable_sketch_raises():
    spec = hamming_spec()  # needs sub+mul; an add-only sketch cannot work
    sketch = Sketch(
        name="bad",
        choices=(ComponentChoice(Opcode.ADD_CC, CtHole(), CtHole()),),
        rotations=(),
    )
    with pytest.raises(SynthesisError):
        synthesize(spec, sketch, SynthesisConfig(max_components=3))


def test_compile_kernel_end_to_end():
    result = compile_kernel(box_blur_spec())
    assert result.spec_name == "box_blur"
    assert "rotate_rows" in result.seal_code
    assert result.program.instruction_count() == 4
    assert "box_blur" in str(result)


def test_config_for_applies_kernel_settings():
    config = config_for(get_spec("box_blur"))
    assert config.max_components == 3
    config = config_for(get_spec("box_blur"), max_components=7, seed=5)
    assert config.max_components == 7
    assert config.seed == 5


def test_synthesis_deterministic_for_fixed_seed():
    spec = dot_product_spec()
    sketch = default_sketch_for(spec)
    r1 = synthesize(spec, sketch, FAST)
    r2 = synthesize(spec, sketch, FAST)
    assert r1.program == r2.program
    assert r1.components == r2.components
